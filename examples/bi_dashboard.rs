//! BI dashboard scenario with dashboards and the KPI views the paper's
//! web portal exposes (§4.1): daily spend, query latency, queue times, and
//! cost per query — before and with KWO.
//!
//! Run with: `cargo run --release --example bi_dashboard`

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS};
use keebo::{generate_trace, Dashboard, KwoSetup, Orchestrator};
use workload::BiWorkload;

fn main() {
    let workload = BiWorkload {
        peak_refreshes_per_hour: 60.0,
        dashboards: 12,
        ..BiWorkload::default()
    };
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "DASHBOARDS",
        WarehouseConfig::new(WarehouseSize::Large)
            .with_auto_suspend_secs(1800)
            .with_clusters(1, 3),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&workload, 0, 10 * DAY_MS, 7) {
        sim.submit_query(wh, q);
    }

    let mut kwo = Orchestrator::new(7);
    kwo.manage(&sim, "DASHBOARDS", KwoSetup::default());
    kwo.observe_until(&mut sim, 5 * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 10 * DAY_MS);

    // The dashboard KPI table (Fig. 2's data, rendered as text).
    let records = sim.account().query_records();
    let billing = sim.account().ledger().warehouse("DASHBOARDS");
    let daily = Dashboard::daily(records, &billing, 0, 10 * DAY_MS);
    println!(
        "{:>4} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "day", "KWO?", "queries", "credits", "avg lat(s)", "p99 lat(s)", "cr/query"
    );
    for row in &daily {
        println!(
            "{:>4} {:>6} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.4}",
            row.day + 1,
            if row.day >= 5 { "yes" } else { "" },
            row.queries,
            row.spend_credits,
            row.avg_latency_ms / 1000.0,
            row.p99_latency_ms / 1000.0,
            row.cost_per_query,
        );
    }

    // Weekly rollup, as the portal's weekly aggregation view.
    println!("\nweekly rollup:");
    for w in Dashboard::weekly(&daily) {
        println!(
            "  week {}: {:.1} credits, {} queries, avg latency {:.2}s",
            w.day + 1,
            w.spend_credits,
            w.queries,
            w.avg_latency_ms / 1000.0
        );
    }
}
