//! ETL scenario: a recurring pipeline warehouse where KWO must respect an
//! SLA-like constraint (the paper's C2: "a slowdown of an ETL job might
//! cause SLA violations") while still cutting idle cost.
//!
//! Shows the overhead accounting of §7.3: telemetry fetches and actuator
//! commands cost credits too, and they must stay negligible.
//!
//! Run with: `cargo run --release --example etl_pipeline`

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS};
use keebo::{
    generate_trace, ConstraintSet, KwoSetup, Orchestrator, Rule, RuleEffect, SliderPosition,
    TimeWindow,
};
use workload::EtlWorkload;

fn main() {
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "ETL_WH",
        WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&EtlWorkload::default(), 0, 8 * DAY_MS, 3) {
        sim.submit_query(wh, q);
    }

    // The nightly load window (2:00–6:00) must never be downsized, and the
    // warehouse must never suspend during it: ETL SLAs beat savings.
    let constraints = ConstraintSet::new()
        .with_rule(Rule::new(
            "protect-nightly-load-size",
            TimeWindow::daily(2.0, 6.0),
            RuleEffect::NoDownsize,
        ))
        .with_rule(Rule::new(
            "protect-nightly-load-uptime",
            TimeWindow::daily(2.0, 6.0),
            RuleEffect::NoSuspend,
        ));

    let mut kwo = Orchestrator::new(11);
    kwo.manage(
        &sim,
        "ETL_WH",
        KwoSetup {
            // ETL tolerates some queueing; prioritize cost a notch.
            slider: SliderPosition::LowCost,
            constraints,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, 4 * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 8 * DAY_MS);

    let report = kwo.savings_report(&sim, "ETL_WH", 4 * DAY_MS, 8 * DAY_MS);
    println!(
        "optimized 4 days: {:.1} credits actual vs {:.1} estimated without Keebo ({:.0}% saved)",
        report.actual_with_keebo,
        report.estimated_without_keebo,
        report.savings_fraction * 100.0
    );

    // Overhead accounting (§7.3): KWO's own telemetry + actuation cost.
    let overhead = sim.account().ledger().overhead().total();
    println!(
        "KWO overhead: {:.3} credits ({:.2}% of actual usage) — must be negligible",
        overhead,
        100.0 * overhead / report.actual_with_keebo.max(1e-9)
    );

    // Every action KWO took, as SQL.
    let o = kwo.optimizer("ETL_WH").unwrap();
    println!("\nfirst few actions:");
    for entry in o
        .actuator()
        .log()
        .iter()
        .filter(|e| !e.sql.is_empty())
        .take(5)
    {
        println!(
            "  day {:.1} [{}] {}",
            entry.at as f64 / DAY_MS as f64,
            entry.reason,
            entry.sql.join("; ")
        );
    }
}
