//! Warehouse consolidation advisor (§1: "consolidating multiple warehouses
//! into one"): two half-idle departmental warehouses are cheaper as one.
//!
//! Run with: `cargo run --release --example consolidation`

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS};
use costmodel::WarehouseCostModel;
use keebo::consolidation::{evaluate_consolidation, ConsolidationInput};
use rand::SeedableRng;
use workload::{IdAllocator, ReportingWorkload, WorkloadGenerator};

fn main() {
    // Two teams each provisioned their own Small reporting warehouse; the
    // batches fire at different hours, so both sit mostly idle.
    let cfg = WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(600);
    let mut account = Account::new();
    let sales = account.create_warehouse("SALES_WH", cfg.clone());
    let finance = account.create_warehouse("FINANCE_WH", cfg.clone());
    let mut sim = Simulator::new(account);

    let mut ids = IdAllocator::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sales_wl = ReportingWorkload {
        batch_hour: 6,
        ..ReportingWorkload::default()
    };
    // Both report runs land in the same morning window — the classic
    // consolidation opportunity: overlapping-but-separate warehouses.
    let finance_wl = ReportingWorkload {
        batch_hour: 6,
        ..ReportingWorkload::default()
    };
    for q in sales_wl.generate(0, 7 * DAY_MS, &mut ids, &mut rng) {
        sim.submit_query(sales, q);
    }
    for q in finance_wl.generate(0, 7 * DAY_MS, &mut ids, &mut rng) {
        sim.submit_query(finance, q);
    }
    sim.run_until(7 * DAY_MS);

    // Train one cost model on the combined history (the advisor only needs
    // the learned latency/gap/cluster parameters, which are shared here).
    let all_records = sim.account().query_records().to_vec();
    let model = WarehouseCostModel::train(&all_records, 0, 7 * DAY_MS, 8, 1);

    let sales_records: Vec<_> = all_records
        .iter()
        .filter(|r| r.warehouse == "SALES_WH")
        .cloned()
        .collect();
    let finance_records: Vec<_> = all_records
        .iter()
        .filter(|r| r.warehouse == "FINANCE_WH")
        .cloned()
        .collect();

    let report = evaluate_consolidation(
        &model,
        &[
            ConsolidationInput {
                name: "SALES_WH",
                config: cfg.clone(),
                records: &sales_records,
            },
            ConsolidationInput {
                name: "FINANCE_WH",
                config: cfg.clone(),
                records: &finance_records,
            },
        ],
        // The shared warehouse gets a second cluster to absorb the peak.
        &cfg.clone().with_clusters(1, 2),
        0,
        7 * DAY_MS,
    );

    println!(
        "separate warehouses: {:>7.2} credits/week",
        report.separate_credits
    );
    println!(
        "one shared warehouse:{:>7.2} credits/week",
        report.merged_credits
    );
    println!(
        "estimated savings:   {:>7.2} credits/week ({:.0}%)",
        report.estimated_savings,
        100.0 * report.estimated_savings / report.separate_credits.max(1e-9)
    );
    println!(
        "peak merged concurrency: {} queries",
        report.peak_concurrency
    );
    println!(
        "recommendation: {}",
        if report.recommended {
            "consolidate"
        } else {
            "keep separate"
        }
    );
}
