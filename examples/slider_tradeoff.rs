//! The cost/performance slider (§4.1, §7.4): the same workload under
//! "Lowest Cost" vs "Best Performance", plus a live slider move mid-run —
//! the smart model re-calibrates without retraining (§4.3).
//!
//! Run with: `cargo run --release --example slider_tradeoff`

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS};
use keebo::{generate_trace, KwoSetup, Orchestrator, SliderPosition};
use workload::AdhocWorkload;

fn run(slider: SliderPosition, seed: u64) -> (f64, f64) {
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "ANALYTICS",
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&AdhocWorkload::default(), 0, 8 * DAY_MS, seed) {
        sim.submit_query(wh, q);
    }
    let mut kwo = Orchestrator::new(seed);
    kwo.manage(
        &sim,
        "ANALYTICS",
        KwoSetup {
            slider,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, 3 * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 8 * DAY_MS);

    let credits = sim
        .account()
        .ledger()
        .warehouse("ANALYTICS")
        .range_total(3 * 24, 8 * 24);
    let lats: Vec<f64> = sim
        .account()
        .query_records()
        .iter()
        .filter(|r| r.end >= 3 * DAY_MS)
        .map(|r| r.total_latency_ms() as f64)
        .collect();
    let avg = lats.iter().sum::<f64>() / lats.len().max(1) as f64 / 1000.0;
    (credits, avg)
}

fn main() {
    println!("same ad-hoc workload, five days optimized, two slider extremes:\n");
    for slider in [SliderPosition::LowestCost, SliderPosition::BestPerformance] {
        let (credits, avg_lat) = run(slider, 21);
        println!("  {slider:?}: {credits:.1} credits, avg latency {avg_lat:.2}s");
    }

    // Live slider move: no retraining required.
    println!("\nlive slider move mid-run (Balanced -> BestPerformance):");
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "ANALYTICS",
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&AdhocWorkload::default(), 0, 8 * DAY_MS, 21) {
        sim.submit_query(wh, q);
    }
    let mut kwo = Orchestrator::new(21);
    kwo.manage(&sim, "ANALYTICS", KwoSetup::default());
    kwo.observe_until(&mut sim, 3 * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 5 * DAY_MS);
    let mid = sim.account().accrued_credits(wh, sim.now());
    kwo.set_slider("ANALYTICS", SliderPosition::BestPerformance);
    kwo.run_until(&mut sim, 8 * DAY_MS);
    let end = sim.account().accrued_credits(wh, sim.now());
    println!(
        "  credits: {:.1} in 2 days at Balanced, then {:.1} in 3 days at BestPerformance",
        mid,
        end - mid
    );
}
