//! Quickstart: attach KWO to one warehouse and watch it save.
//!
//! Creates an oversized BI warehouse, runs a week of traffic without Keebo,
//! onboards KWO, runs another week, and prints the savings report and
//! value-based invoice.
//!
//! Run with: `cargo run --release --example quickstart`

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS};
use keebo::{generate_trace, KwoSetup, Orchestrator, ValueBasedPricing};
use workload::BiWorkload;

fn main() {
    // 1. A customer account with one oversized, long-auto-suspend BI
    //    warehouse — the typical pre-optimization posture.
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "BI_WH",
        WarehouseConfig::new(WarehouseSize::Large)
            .with_auto_suspend_secs(1800)
            .with_clusters(1, 2),
    );

    // 2. Two weeks of dashboard traffic.
    let mut sim = Simulator::new(account);
    for q in generate_trace(&BiWorkload::default(), 0, 14 * DAY_MS, 42) {
        sim.submit_query(wh, q);
    }

    // 3. Attach KWO: observe week one, onboard, optimize week two.
    let mut kwo = Orchestrator::new(42);
    kwo.manage(&sim, "BI_WH", KwoSetup::default());
    kwo.observe_until(&mut sim, 7 * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 14 * DAY_MS);

    // 4. The what-if savings report for the optimized week.
    let report = kwo.savings_report(&sim, "BI_WH", 7 * DAY_MS, 14 * DAY_MS);
    println!(
        "estimated without Keebo: {:>8.1} credits",
        report.estimated_without_keebo
    );
    println!(
        "actual with Keebo:       {:>8.1} credits",
        report.actual_with_keebo
    );
    println!(
        "estimated savings:       {:>8.1} credits ({:.0}%)",
        report.estimated_savings,
        report.savings_fraction * 100.0
    );

    // 5. Value-based pricing: the customer pays a share of realized savings.
    let invoice = ValueBasedPricing::default().invoice(&report);
    println!(
        "Keebo's charge (30% of savings): {:.1} credits; customer keeps {:.1}",
        invoice.charge_credits, invoice.customer_net_credits
    );

    let o = kwo.optimizer("BI_WH").expect("managed warehouse");
    println!(
        "actions applied: {} (see the action log for the ALTER statements)",
        o.actuator().applied_count()
    );
}
