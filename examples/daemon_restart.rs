//! Daemon restart: the control plane survives its own death.
//!
//! A KWO deployment is a long-lived daemon; hosts reboot, binaries upgrade,
//! processes get OOM-killed. This example runs the two-week BI scenario with
//! a [`FileStore`] attached, kills the orchestrator at day 7 of the
//! optimized fortnight (dropping every in-memory structure — DQN weights,
//! replay buffer, reconciler state, billing cursors), then warm-restores a
//! fresh process from the on-disk snapshot + WAL and finishes the run.
//!
//! Two properties are demonstrated:
//!
//! * **no re-onboarding** — the restored orchestrator is immediately
//!   `onboarded()`: the learned policy came back from disk, so the restart
//!   costs zero exploration episodes and zero blind ticks;
//! * **continuous savings** — the savings report spans the crash as if it
//!   never happened, because the restored baseline config and billing
//!   cursors are the pre-crash ones.
//!
//! Run with: `cargo run --release --example daemon_restart`

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS, MINUTE_MS};
use keebo::{generate_trace, FileStore, KwoSetup, Orchestrator};
use workload::BiWorkload;

const OBSERVE_MS: u64 = 7 * DAY_MS;
const CRASH_MS: u64 = 14 * DAY_MS;
const END_MS: u64 = 21 * DAY_MS;

fn main() {
    let dir = std::env::temp_dir().join(format!("kwo_daemon_restart_{}", std::process::id()));

    // 1. One oversized BI warehouse with three weeks of dashboard traffic.
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "BI_WH",
        WarehouseConfig::new(WarehouseSize::Large)
            .with_auto_suspend_secs(1800)
            .with_clusters(1, 2),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&BiWorkload::default(), 0, END_MS, 42) {
        sim.submit_query(wh, q);
    }

    // 2. Day 0-7: observe and onboard, journaling every mutation to disk.
    let store = FileStore::open(&dir).expect("open durable store");
    let mut kwo = Orchestrator::new(42);
    kwo.attach_store(Box::new(store), sim.now());
    kwo.manage(
        &sim,
        "BI_WH",
        KwoSetup {
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 2,
            refresh_episodes: 0,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);

    // 3. Day 7-14: optimize, then the daemon dies. `drop` discards the
    //    whole control plane; only the files under `dir` survive.
    kwo.run_until(&mut sim, CRASH_MS);
    let week_one = kwo
        .savings_report(&sim, "BI_WH", OBSERVE_MS, CRASH_MS)
        .estimated_savings;
    drop(kwo);
    println!("day 14: daemon killed ({week_one:.1} credits saved so far)");

    // 4. A fresh process finds the store and warm-restores: snapshot first,
    //    then WAL replay on top.
    let store = FileStore::open(&dir).expect("reopen durable store");
    let (mut kwo, stats) = Orchestrator::restore(Box::new(store), &sim).expect("warm restore");
    println!(
        "day 14: warm restore replayed {} WAL records on a {} byte snapshot ({} torn bytes)",
        stats.replayed_records, stats.snapshot_bytes, stats.wal_truncated_bytes
    );
    // Wall time goes to stderr: it is the one non-deterministic figure, and
    // keeping stdout byte-identical across runs preserves the free
    // determinism probe (`diff` two runs).
    eprintln!("(restore wall time: {:.1} ms)", stats.recovery_wall_ms);

    // No re-onboarding: the learned policy is already live.
    assert!(
        kwo.optimizer("BI_WH").expect("managed").onboarded(),
        "restored orchestrator must not need re-onboarding"
    );
    println!("day 14: onboarded() = true — zero exploration episodes after restart");

    // 5. Day 14-21: keep optimizing as if nothing happened.
    kwo.run_until(&mut sim, END_MS);
    let report = kwo.savings_report(&sim, "BI_WH", OBSERVE_MS, END_MS);
    assert!(
        report.estimated_savings > week_one,
        "savings must keep accruing across the restart"
    );
    println!(
        "day 21: continuous savings {:.1} credits ({:.0}%) across the crash — \
         week two added {:.1}",
        report.estimated_savings,
        report.savings_fraction * 100.0,
        report.estimated_savings - week_one
    );

    let _ = std::fs::remove_dir_all(&dir);
}
