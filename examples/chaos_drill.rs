//! Chaos drill: run KWO through a gauntlet of injected control-plane faults.
//!
//! Schedules ALTER failure bursts, a six-hour telemetry outage, partial
//! telemetry batches, slow resumes, and delayed command application against
//! a managed BI warehouse, then prints what the resilient control plane did
//! about it: retries, reconciliations, rollbacks, health transitions, and
//! the savings that survived.
//!
//! Run with: `cargo run --release --example chaos_drill`

use cdw_sim::{
    Account, FaultPlan, Simulator, WarehouseConfig, WarehouseSize, DAY_MS, HOUR_MS, MINUTE_MS,
};
use keebo::{generate_trace, KwoSetup, OpsKpis, Orchestrator};
use workload::BiWorkload;

fn main() {
    // 1. The fault schedule: every window opens after onboarding (day 5) so
    //    the learned policy is already live when the control plane starts
    //    misbehaving.
    let plan = FaultPlan::none()
        .with_alter_burst(6 * DAY_MS, 7 * DAY_MS, 0.9)
        .with_throttle(7 * DAY_MS, 7 * DAY_MS + 6 * HOUR_MS, 0.5)
        .with_telemetry_outage(8 * DAY_MS, 8 * DAY_MS + 6 * HOUR_MS)
        .with_partial_telemetry(9 * DAY_MS, 9 * DAY_MS + 3 * HOUR_MS, 0.5)
        .with_slow_resumes(10 * DAY_MS, 10 * DAY_MS + 6 * HOUR_MS, 120_000, 0.5)
        .with_delayed_alters(11 * DAY_MS, 11 * DAY_MS + 3 * HOUR_MS, 20 * MINUTE_MS, 0.5);

    // 2. An oversized BI warehouse with two weeks of dashboard traffic, on a
    //    simulator that realizes the plan with its own fault seed.
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "BI_WH",
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600),
    );
    let mut sim = Simulator::with_faults(account, plan, 7);
    for q in generate_trace(&BiWorkload::default(), 0, 14 * DAY_MS, 42) {
        sim.submit_query(wh, q);
    }

    // 3. Attach KWO: observe five days, onboard, optimize through day 14.
    let mut kwo = Orchestrator::new(42);
    kwo.manage(
        &sim,
        "BI_WH",
        KwoSetup {
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 3,
            refresh_episodes: 0,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, 5 * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 14 * DAY_MS);

    // 4. What the injector actually did.
    let stats = sim.fault_stats();
    println!("-- injected faults ------------------------------------------");
    println!("ALTER failures:          {:>6}", stats.alter_failures);
    println!("ALTER applications late: {:>6}", stats.alter_delays);
    println!("telemetry outages:       {:>6}", stats.telemetry_outages);
    println!("telemetry partials:      {:>6}", stats.telemetry_partials);
    println!("slow resumes:            {:>6}", stats.slow_resumes);

    // 5. How the control plane responded.
    let o = kwo.optimizer("BI_WH").expect("managed warehouse");
    let kpis = OpsKpis::collect(o, sim.now());
    println!("-- control plane --------------------------------------------");
    println!("final health:            {:?}", kpis.health);
    println!(
        "ticks healthy/degraded/frozen: {}/{}/{}",
        kpis.healthy_ticks, kpis.degraded_ticks, kpis.frozen_ticks
    );
    println!("actions applied:         {:>6}", kpis.actions_applied);
    println!("actions failed:          {:>6}", kpis.actions_failed);
    println!("in-line transient retries: {:>4}", kpis.transient_retries);
    println!("reconciliations:         {:>6}", kpis.reconciliations);
    println!("rollbacks:               {:>6}", kpis.rollbacks);
    println!(
        "fetch outages/partials:  {:>6}/{}",
        kpis.fetch_outages, kpis.fetch_partials
    );
    for t in o.health().transitions() {
        println!(
            "  day {:>5.2}: {:?} -> {:?}",
            t.at as f64 / DAY_MS as f64,
            t.from,
            t.to
        );
    }

    // 6. Savings survive the chaos.
    let report = kwo.savings_report(&sim, "BI_WH", 5 * DAY_MS, 14 * DAY_MS);
    println!("-- outcome --------------------------------------------------");
    println!(
        "estimated without Keebo: {:>8.1} credits",
        report.estimated_without_keebo
    );
    println!(
        "actual with Keebo:       {:>8.1} credits",
        report.actual_with_keebo
    );
    println!(
        "estimated savings:       {:>8.1} credits ({:.0}%)",
        report.estimated_savings,
        report.savings_fraction * 100.0
    );
    let desc = sim.account().describe(wh);
    println!(
        "final config: {:?}, auto-suspend {}s, clusters {}..{}",
        desc.config.size,
        desc.config.auto_suspend_ms / 1_000,
        desc.config.min_clusters,
        desc.config.max_clusters
    );
}
