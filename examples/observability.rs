//! Observability: metrics snapshot + decision trace for one warehouse.
//!
//! Runs the standard two-week quickstart scenario (observe week one,
//! optimize week two), then exports what the observability layer captured:
//!
//! * `OBS_metrics.prom` — Prometheus-style text snapshot of every counter,
//!   gauge, and histogram the decision path recorded (queue waits, replay
//!   latency error, tick wall time, actuation outcomes, ...);
//! * `OBS_trace.jsonl` — the per-tick decision trace: state features, the
//!   full action mask with masking reasons, the chosen action, and reward.
//!
//! The trace answers "why did BI_WH change configuration at hour H?" — the
//! example picks the first non-NoOp tick and prints exactly that story.
//!
//! Run with: `cargo run --release --example observability`

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS, MINUTE_MS};
use keebo::{generate_trace, DecisionTrace, KwoSetup, Orchestrator};
use workload::BiWorkload;

fn main() {
    // 1. One oversized BI warehouse with two weeks of dashboard traffic.
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "BI_WH",
        WarehouseConfig::new(WarehouseSize::Large)
            .with_auto_suspend_secs(1800)
            .with_clusters(1, 2),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&BiWorkload::default(), 0, 14 * DAY_MS, 42) {
        sim.submit_query(wh, q);
    }

    // 2. Attach KWO with a 30-minute control cadence (672 ticks over two
    //    weeks — comfortably inside the default trace capacity).
    let mut kwo = Orchestrator::new(42);
    kwo.manage(
        &sim,
        "BI_WH",
        KwoSetup {
            realtime_interval_ms: 30 * MINUTE_MS,
            onboarding_episodes: 2,
            refresh_episodes: 0,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, 7 * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 14 * DAY_MS);
    let report = kwo.savings_report(&sim, "BI_WH", 7 * DAY_MS, 14 * DAY_MS);
    println!(
        "estimated savings: {:.1} credits ({:.0}%)",
        report.estimated_savings,
        report.savings_fraction * 100.0
    );

    // 3. Export the metrics registry as Prometheus text.
    let snapshot = keebo::obs::global().snapshot();
    assert!(
        !snapshot.is_empty(),
        "decision path recorded no metrics — registry wiring is broken"
    );
    let prom = keebo::obs::prometheus_text(&snapshot);
    assert!(
        prom.contains("cdw_sim_query_queue_wait_ms")
            && prom.contains("keebo_tick_wall_us")
            && prom.contains("costmodel_replay_runs"),
        "expected core decision-path series in the export"
    );
    std::fs::write("OBS_metrics.prom", &prom).expect("write OBS_metrics.prom");
    println!(
        "wrote OBS_metrics.prom ({} series, {} lines)",
        snapshot.counters.len() + snapshot.gauges.len() + snapshot.histograms.len(),
        prom.lines().count()
    );

    // 4. Export the decision trace as JSONL and prove it round-trips.
    let trace = kwo.optimizer("BI_WH").expect("managed warehouse").trace();
    assert!(
        !trace.is_empty(),
        "optimized week produced no decision events"
    );
    let jsonl = trace.to_jsonl();
    let parsed = DecisionTrace::parse_jsonl(&jsonl).expect("every trace line parses back");
    assert_eq!(parsed.len(), trace.len(), "round-trip dropped events");
    std::fs::write("OBS_trace.jsonl", &jsonl).expect("write OBS_trace.jsonl");
    println!("wrote OBS_trace.jsonl ({} events)", trace.len());

    // 5. Answer the operator question: why did BI_WH act at hour H?
    let decision = parsed
        .iter()
        .find(|e| e.chosen != "NoOp")
        .unwrap_or_else(|| parsed.first().expect("trace is non-empty"));
    println!();
    println!(
        "hour {:>3}: {} chose {} ({}), health {}, size {}",
        decision.hour,
        decision.warehouse,
        decision.chosen,
        decision.reason,
        decision.health,
        decision.size
    );
    println!(
        "  observed: {:.0} queries/h, mean latency {:.0} ms, p99 {:.0} ms, \
         queue {:.0} ms, latency ratio {:.2}",
        decision.features.arrival_rate_per_hour,
        decision.features.mean_latency_ms,
        decision.features.p99_latency_ms,
        decision.features.mean_queue_ms,
        decision.features.latency_ratio
    );
    for entry in decision.mask.iter().filter(|m| !m.allowed) {
        println!("  masked: {} ({})", entry.action, entry.reasons.join(", "));
    }
    if let Some(reward) = decision.reward {
        println!("  reward credited for previous action: {reward:.3}");
    }
}
