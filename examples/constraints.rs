//! Customer constraints in action (§4.1 Fig. 3, §4.3) — including
//! external-change detection (§4.4).
//!
//! Demonstrates:
//! * a time-windowed rule ("from 9:00 to 9:30 the BI warehouse must have a
//!   minimum of 3 clusters and must not downsize" — the paper's example);
//! * that KWO's actions never violate the rule;
//! * that an external `ALTER WAREHOUSE` pauses optimization until the admin
//!   resumes it.
//!
//! Run with: `cargo run --release --example constraints`

use cdw_sim::{
    Account, ActionSource, Simulator, WarehouseCommand, WarehouseConfig, WarehouseSize, DAY_MS,
    HOUR_MS,
};
use keebo::{generate_trace, ConstraintSet, KwoSetup, Orchestrator, Rule, RuleEffect, TimeWindow};
use workload::BiWorkload;

fn main() {
    let mut account = Account::new();
    let wh = account.create_warehouse(
        "BI_WH",
        WarehouseConfig::new(WarehouseSize::Large)
            .with_auto_suspend_secs(1800)
            .with_clusters(3, 5),
    );
    let mut sim = Simulator::new(account);
    for q in generate_trace(&BiWorkload::default(), 0, 6 * DAY_MS, 21) {
        sim.submit_query(wh, q);
    }

    // The paper's example rule, verbatim: 9:00–9:30, keep >= 3 clusters and
    // never downsize.
    let constraints = ConstraintSet::new()
        .with_rule(Rule::new(
            "morning-rush-clusters",
            TimeWindow::daily(9.0, 9.5),
            RuleEffect::MinClusters(3),
        ))
        .with_rule(Rule::new(
            "morning-rush-size",
            TimeWindow::daily(9.0, 9.5),
            RuleEffect::NoDownsize,
        ));

    let mut kwo = Orchestrator::new(9);
    kwo.manage(
        &sim,
        "BI_WH",
        KwoSetup {
            constraints,
            ..KwoSetup::default()
        },
    );
    kwo.observe_until(&mut sim, 2 * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, 4 * DAY_MS);

    // Verify: no action inside the window ever reduced size or clusters.
    let o = kwo.optimizer("BI_WH").unwrap();
    let in_window_violations = o
        .actuator()
        .log()
        .iter()
        .filter(|e| {
            let hod = (e.at % DAY_MS) as f64 / HOUR_MS as f64;
            (9.0..9.5).contains(&hod)
                && e.sql.iter().any(|s| {
                    s.contains("WAREHOUSE_SIZE=MEDIUM")
                        || s.contains("WAREHOUSE_SIZE=SMALL")
                        || s.contains("MAX_CLUSTER_COUNT=1")
                        || s.contains("MAX_CLUSTER_COUNT=2")
                })
        })
        .count();
    println!("actions violating the 9:00–9:30 rule: {in_window_violations} (must be 0)");
    assert_eq!(in_window_violations, 0);

    // Now an admin resizes the warehouse externally.
    sim.alter_warehouse(
        wh,
        WarehouseCommand::SetSize(WarehouseSize::X4Large),
        ActionSource::External,
    )
    .expect("external resize");
    kwo.run_until(&mut sim, 4 * DAY_MS + 2 * HOUR_MS);
    let paused = kwo.optimizer("BI_WH").unwrap().is_paused(sim.now());
    println!("external X4Large resize detected; optimization paused: {paused}");
    assert!(paused);

    // The admin reviews and tells Keebo to continue.
    kwo.admin_resume(&sim, "BI_WH");
    println!(
        "admin resumed; paused now: {}",
        kwo.optimizer("BI_WH").unwrap().is_paused(sim.now())
    );
    kwo.run_until(&mut sim, 6 * DAY_MS);
    println!(
        "total actions applied: {}",
        kwo.optimizer("BI_WH").unwrap().actuator().applied_count()
    );
}
