//! Microbenchmarks for workload generation (trace setup cost for every
//! experiment).

use cdw_sim::DAY_MS;
use criterion::{criterion_group, criterion_main, Criterion};
use workload::{generate_trace, AdhocWorkload, BiWorkload, EtlWorkload};

fn bench_generators(c: &mut Criterion) {
    c.bench_function("gen_bi_7days", |b| {
        b.iter(|| generate_trace(&BiWorkload::default(), 0, 7 * DAY_MS, 42))
    });
    c.bench_function("gen_etl_7days", |b| {
        b.iter(|| generate_trace(&EtlWorkload::default(), 0, 7 * DAY_MS, 42))
    });
    c.bench_function("gen_adhoc_30days", |b| {
        b.iter(|| generate_trace(&AdhocWorkload::default(), 0, 30 * DAY_MS, 42))
    });
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
