//! Microbenchmarks for the smart model: inference (every `T_realtime`
//! decision) and Q-learning updates (every decision during training).

use agent::{AgentAction, DqnAgent, DqnConfig, Transition, STATE_DIM};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn warm_agent() -> DqnAgent {
    let mut rng = StdRng::seed_from_u64(1);
    let mut agent = DqnAgent::new(DqnConfig::default(), &mut rng);
    let state = vec![0.3; STATE_DIM];
    for i in 0..1_000 {
        agent.observe(Transition {
            state: state.clone(),
            action: i % AgentAction::COUNT,
            reward: -0.1,
            next_state: state.clone(),
            next_mask: [true; AgentAction::COUNT],
            terminal: i % 7 == 0,
        });
    }
    agent
}

fn bench_inference(c: &mut Criterion) {
    let agent = warm_agent();
    let state = vec![0.5; STATE_DIM];
    let mask = [true; AgentAction::COUNT];
    c.bench_function("dqn_greedy_action", |b| {
        b.iter(|| agent.greedy_action(&state, &mask))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let mut agent = warm_agent();
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("dqn_train_step_batch32", |b| {
        b.iter(|| agent.train_step(&mut rng))
    });
}

criterion_group!(benches, bench_inference, bench_train_step);
criterion_main!(benches);
