//! Microbenchmarks for the CDW simulator: event throughput is what bounds
//! every experiment's wall-clock time.

use cdw_sim::{Account, QuerySpec, Simulator, WarehouseConfig, WarehouseSize, HOUR_MS};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_query_lifecycle(c: &mut Criterion) {
    c.bench_function("sim_1k_queries_single_cluster", |b| {
        b.iter_batched(
            || {
                let mut account = Account::new();
                let wh = account.create_warehouse(
                    "WH",
                    WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(60),
                );
                let mut sim = Simulator::new(account);
                for i in 0..1_000u64 {
                    sim.submit_query(
                        wh,
                        QuerySpec::builder(i)
                            .work_ms_xs(5_000.0)
                            .arrival_ms(i * 10_000)
                            .build(),
                    );
                }
                sim
            },
            |mut sim| {
                sim.run_to_completion();
                sim
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_multicluster_scaleout(c: &mut Criterion) {
    c.bench_function("sim_burst_multicluster", |b| {
        b.iter_batched(
            || {
                let mut account = Account::new();
                let wh = account.create_warehouse(
                    "WH",
                    WarehouseConfig::new(WarehouseSize::Small)
                        .with_auto_suspend_secs(60)
                        .with_clusters(1, 10)
                        .with_max_concurrency(4),
                );
                let mut sim = Simulator::new(account);
                // 50 bursts of 40 queries.
                let mut id = 0;
                for burst in 0..50u64 {
                    for _ in 0..40 {
                        sim.submit_query(
                            wh,
                            QuerySpec::builder(id)
                                .work_ms_xs(20_000.0)
                                .arrival_ms(burst * 5 * 60_000)
                                .build(),
                        );
                        id += 1;
                    }
                }
                sim
            },
            |mut sim| {
                sim.run_until(10 * HOUR_MS);
                sim
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_query_lifecycle, bench_multicluster_scaleout);
criterion_main!(benches);
