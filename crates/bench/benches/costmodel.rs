//! Microbenchmarks for the warehouse cost model: training the parameter
//! estimators and running the what-if replay (Algorithm 1 runs these on
//! every savings estimate).

use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS};
use costmodel::{ReplayConfig, WarehouseCostModel};
use criterion::{criterion_group, criterion_main, Criterion};
use workload::{generate_trace, BiWorkload};

fn history() -> (Vec<cdw_sim::QueryRecord>, WarehouseConfig) {
    let config = WarehouseConfig::new(WarehouseSize::Small)
        .with_auto_suspend_secs(300)
        .with_clusters(1, 3);
    let mut account = Account::new();
    let wh = account.create_warehouse("WH", config.clone());
    let mut sim = Simulator::new(account);
    for q in generate_trace(&BiWorkload::default(), 0, 2 * DAY_MS, 3) {
        sim.submit_query(wh, q);
    }
    sim.run_until(2 * DAY_MS);
    (sim.account().query_records().to_vec(), config)
}

fn bench_train(c: &mut Criterion) {
    let (records, config) = history();
    c.bench_function("costmodel_train_2day_bi_history", |b| {
        b.iter(|| {
            WarehouseCostModel::train(
                &records,
                0,
                2 * DAY_MS,
                config.max_concurrency,
                config.max_clusters,
            )
        })
    });
}

fn bench_replay(c: &mut Criterion) {
    let (records, config) = history();
    let model = WarehouseCostModel::train(
        &records,
        0,
        2 * DAY_MS,
        config.max_concurrency,
        config.max_clusters,
    );
    let replay_cfg = ReplayConfig {
        original: config,
        window_start: 0,
        window_end: 2 * DAY_MS,
    };
    c.bench_function("costmodel_replay_2day_bi_history", |b| {
        b.iter(|| model.replay(&records, &replay_cfg))
    });
}

criterion_group!(benches, bench_train, bench_replay);
criterion_main!(benches);
