//! Plain-text table/series rendering and report-file output for the
//! figure/bench binaries.

/// Writes `contents` to `path`. Bench binaries are CI steps: an output
/// failure prints the error and exits non-zero instead of panicking, so the
/// step fails with a readable message rather than a backtrace.
pub fn write_report(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// Serializes `value` as pretty JSON and writes it via [`write_report`].
pub fn write_json<T: serde::Serialize>(path: &str, value: &T) {
    match serde_json::to_string_pretty(value) {
        Ok(json) => write_report(path, &json),
        Err(e) => {
            eprintln!("failed to serialize {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints a two-column bar chart row: label, bar scaled to `max`, value.
pub fn bar_row(label: &str, value: f64, max: f64, width: usize) {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    let bar: String = "#".repeat(filled.min(width));
    println!("{label:>12} | {bar:<width$} {value:8.2}");
}

/// Prints a header rule.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Renders an aligned table: first row is the header.
pub fn table(rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    for (ri, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        println!("{}", line.join("  "));
        if ri == 0 {
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            println!("{}", rule.join("  "));
        }
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.597), "59.7%");
        assert_eq!(pct(0.0), "0.0%");
    }

    // Rendering functions only print; smoke-test that they do not panic.
    #[test]
    fn rendering_does_not_panic() {
        header("t");
        bar_row("a", 5.0, 10.0, 20);
        bar_row("b", 0.0, 0.0, 20);
        table(&[vec!["h1".into(), "h2".into()], vec!["1".into(), "2".into()]]);
        table(&[]);
    }
}
