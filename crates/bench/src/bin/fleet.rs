//! Fleet-scale control-plane benchmark.
//!
//! Builds an N-tenant × M-warehouse fleet with mixed archetypes, drives it
//! through observe → onboard → optimize at several worker-thread counts,
//! and reports throughput (warehouses simulated per second), speedup vs a
//! single thread, and the fleet savings rollup. The same fleet must produce
//! *bit-identical* aggregates at every thread count — the run aborts if the
//! report digests disagree.
//!
//! Usage: `fleet [--smoke]` — `--smoke` runs a tiny 2×2 fleet over 2 days
//! (the CI configuration); the default is 4 tenants × 4 warehouses over
//! 3 days.

use bench::report::{header, pct, table};
use cdw_sim::{WarehouseConfig, WarehouseSize, DAY_MS, MINUTE_MS};
use keebo::{
    derive_stream_seed, FleetController, FleetReport, KwoSetup, TenantSpec, WarehouseSpec,
};
use serde::Serialize;
use std::time::Instant;
use workload::{fleet_mix, generate_trace};

const SEED: u64 = 42;

#[derive(Serialize)]
struct RunRow {
    threads: usize,
    wall_secs: f64,
    warehouses_per_sec: f64,
    speedup_vs_1: f64,
    digest: String,
}

#[derive(Serialize)]
struct FleetShape {
    tenants: usize,
    warehouses_per_tenant: usize,
    warehouses: usize,
    observe_days: u64,
    total_days: u64,
    seed: u64,
    smoke: bool,
}

#[derive(Serialize)]
struct BenchOutput {
    fleet: FleetShape,
    runs: Vec<RunRow>,
    aggregates_bit_identical: bool,
    estimated_without_keebo: f64,
    actual_with_keebo: f64,
    fleet_savings_credits: f64,
    savings_fraction: f64,
    invoice: keebo::Invoice,
    ops: keebo::OpsKpis,
}

fn bench_setup() -> KwoSetup {
    KwoSetup {
        realtime_interval_ms: 30 * MINUTE_MS,
        onboarding_episodes: 2,
        refresh_episodes: 0,
        train_interval_ms: 2 * DAY_MS,
        ..KwoSetup::default()
    }
}

fn build_fleet(tenants: usize, per_tenant: usize, total_days: u64, light: bool) -> FleetController {
    let mut fleet = FleetController::new(SEED);
    let members = fleet_mix(tenants, per_tenant, light);
    let mut current: Option<TenantSpec> = None;
    for m in members {
        let spec = WarehouseSpec {
            name: m.warehouse.clone(),
            config: WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600),
            setup: bench_setup(),
            queries: generate_trace(
                m.generator.as_ref(),
                0,
                total_days * DAY_MS,
                derive_stream_seed(SEED, &m.warehouse),
            ),
        };
        match current.take() {
            Some(t) if t.name == m.tenant => current = Some(t.add_warehouse(spec)),
            Some(t) => {
                fleet.add_tenant(t);
                current = Some(TenantSpec::new(&m.tenant).add_warehouse(spec));
            }
            None => current = Some(TenantSpec::new(&m.tenant).add_warehouse(spec)),
        }
    }
    if let Some(t) = current {
        fleet.add_tenant(t);
    }
    fleet
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (tenants, per_tenant, observe_days, total_days) =
        if smoke { (2, 2, 1, 2) } else { (4, 4, 1, 3) };
    let fleet = build_fleet(tenants, per_tenant, total_days, true);
    let warehouses = fleet.warehouse_count();
    header(&format!(
        "fleet bench: {tenants} tenants x {per_tenant} warehouses, \
         {total_days} days ({observe_days} observed), seed {SEED}"
    ));

    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let mut runs: Vec<RunRow> = Vec::new();
    let mut reports: Vec<FleetReport> = Vec::new();
    for &threads in thread_counts {
        let start = Instant::now();
        let report = fleet.run(observe_days * DAY_MS, total_days * DAY_MS, threads);
        let wall = start.elapsed().as_secs_f64();
        runs.push(RunRow {
            threads,
            wall_secs: wall,
            warehouses_per_sec: warehouses as f64 / wall,
            speedup_vs_1: runs.first().map_or(1.0, |r| r.wall_secs / wall),
            digest: format!("{:016x}", report.digest()),
        });
        reports.push(report);
    }

    let identical = reports.iter().all(|r| r.digest() == reports[0].digest());
    assert!(
        identical,
        "fleet aggregates diverged across thread counts: {:?}",
        runs.iter().map(|r| &r.digest).collect::<Vec<_>>()
    );

    let rep = &reports[0];
    let savings_fraction = if rep.estimated_without_keebo > 0.0 {
        rep.estimated_savings / rep.estimated_without_keebo
    } else {
        0.0
    };

    let mut rows = vec![vec![
        "threads".to_string(),
        "wall_s".to_string(),
        "wh/s".to_string(),
        "speedup".to_string(),
        "digest".to_string(),
    ]];
    for r in &runs {
        rows.push(vec![
            r.threads.to_string(),
            format!("{:.2}", r.wall_secs),
            format!("{:.2}", r.warehouses_per_sec),
            format!("{:.2}x", r.speedup_vs_1),
            r.digest.clone(),
        ]);
    }
    table(&rows);
    println!();
    println!(
        "fleet savings: {:.1} of {:.1} credits ({}), keebo charge {:.1}, health {:?}",
        rep.estimated_savings,
        rep.estimated_without_keebo,
        pct(savings_fraction),
        rep.invoice.charge_credits,
        rep.ops.health,
    );

    let out = BenchOutput {
        fleet: FleetShape {
            tenants,
            warehouses_per_tenant: per_tenant,
            warehouses,
            observe_days,
            total_days,
            seed: SEED,
            smoke,
        },
        runs,
        aggregates_bit_identical: identical,
        estimated_without_keebo: rep.estimated_without_keebo,
        actual_with_keebo: rep.actual_with_keebo,
        fleet_savings_credits: rep.estimated_savings,
        savings_fraction,
        invoice: rep.invoice.clone(),
        ops: rep.ops.clone(),
    };
    bench::report::write_json("BENCH_fleet.json", &out);

    // Export the observability counters/histograms accumulated across all
    // runs (queue waits, tick wall times, actuation outcomes, shard walls).
    let metrics = keebo::obs::prometheus_text(&keebo::obs::global().snapshot());
    bench::report::write_report("BENCH_fleet_metrics.prom", &metrics);
    println!("exported {} metric lines", metrics.lines().count());
}
