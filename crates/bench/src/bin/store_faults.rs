//! Store backend family benchmark: crash drills under injected faults.
//!
//! Drives the shared `keebo::drill` harness across the whole store family —
//! [`keebo::MemStore`], [`keebo::FileStore`], [`keebo::RemoteKvStore`] under
//! seeded fault plans — cycling backends, scenarios, and compaction
//! policies cell by cell. Every cell kills the control plane at a seeded
//! tick, restores from the surviving store, and compares the finished run
//! bit-for-bit against an uninterrupted baseline. Any divergence exits
//! non-zero; a diverging file-backed cell keeps its WAL directory on disk
//! (`STORE_wal/cell<N>/`) for CI artifact upload.
//!
//! Writes `BENCH_store.json` with recovery-latency and replay-length
//! statistics per backend.
//!
//! Usage: `store_faults [--smoke] [--seed N] [--cells N]` — `--smoke` is
//! the bounded CI configuration (9 cells); the default campaign is 30.

use bench::report::{header, write_json};
use keebo::drill::{run_cell, run_uninterrupted, DrillBackend, DrillCell, SCENARIOS};
use keebo::{SnapshotPolicy, StoreFaultPlan};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct StoreFaultsOutput {
    smoke: bool,
    start_seed: u64,
    cells: usize,
    mem_cells: usize,
    file_cells: usize,
    remote_cells: usize,
    digest_matches: usize,
    wall_secs: f64,
    recovery_ms_mean: f64,
    recovery_ms_max: f64,
    replayed_records_mean: f64,
    replayed_records_max: u64,
    snapshot_bytes_mean: f64,
    snapshot_bytes_max: u64,
    remote_recovery_ms_mean: f64,
}

fn arg_value(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Mild fault plans for the remote cells: rates stay far inside the
/// orchestrator's retry budgets so a drilled store never detaches (a detach
/// would legitimately break bit-identity).
fn remote_plan(k: u64) -> StoreFaultPlan {
    match k % 3 {
        0 => StoreFaultPlan {
            seed: 0xBEEF ^ k,
            latency_us: 400,
            ..StoreFaultPlan::none()
        },
        1 => StoreFaultPlan {
            seed: 0xBEEF ^ k,
            append_error_ppm: 30_000,
            latency_us: 900,
            ..StoreFaultPlan::none()
        },
        _ => StoreFaultPlan {
            seed: 0xBEEF ^ k,
            append_error_ppm: 20_000,
            snapshot_error_ppm: 200_000,
            read_timeout_ppm: 60_000,
            latency_us: 1500,
        },
    }
}

/// The tight compaction policy half the cells run (odd indices); even
/// cells run the default 48-tick cadence.
fn tight_policy() -> SnapshotPolicy {
    SnapshotPolicy {
        interval_ticks: 7,
        max_wal_bytes: 0,
        max_wal_records: 12,
        retain_snapshots: 2,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let start_seed = arg_value("--seed").unwrap_or(0);
    let cells = arg_value("--cells").unwrap_or(if smoke { 9 } else { 30 }) as usize;
    header(&format!(
        "store-faults campaign: {cells} crash-drill cells from seed {start_seed}{}",
        if smoke { " [smoke]" } else { "" }
    ));

    let wal_root = PathBuf::from("STORE_wal");
    let start = Instant::now();

    let mut digest_matches = 0usize;
    let mut backend_counts = [0usize; 3];
    let mut recovery_ms = Vec::with_capacity(cells);
    let mut remote_recovery_ms = Vec::new();
    let mut replayed = Vec::with_capacity(cells);
    let mut snapshot_bytes = Vec::with_capacity(cells);
    let mut failed = false;

    for i in 0..cells {
        let seed = start_seed + i as u64 * 7 + 11;
        let scenario = i % SCENARIOS;
        let dir = wal_root.join(format!("cell{i}"));
        let backend = match i % 3 {
            0 => DrillBackend::Mem,
            1 => {
                std::fs::remove_dir_all(&dir).ok();
                DrillBackend::File(dir.clone())
            }
            _ => DrillBackend::Remote(remote_plan(seed)),
        };
        backend_counts[i % 3] += 1;
        let cell = DrillCell {
            scenario,
            seed,
            crash_seed: seed.wrapping_mul(1_000) + i as u64,
            backend,
            policy: (i % 2 == 1).then(tight_policy),
            torn: false,
        };

        let baseline = run_uninterrupted(scenario, seed);
        let out = match run_cell(&cell) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("cell {i} (seed {seed}): drill failed: {e}");
                failed = true;
                continue;
            }
        };
        recovery_ms.push(out.stats.recovery_wall_ms);
        if matches!(cell.backend, DrillBackend::Remote(_)) {
            remote_recovery_ms.push(out.stats.recovery_wall_ms);
        }
        replayed.push(out.stats.replayed_records);
        snapshot_bytes.push(out.stats.snapshot_bytes);

        if out.fingerprint == baseline {
            digest_matches += 1;
            if matches!(cell.backend, DrillBackend::File(_)) {
                std::fs::remove_dir_all(&dir).ok();
            }
        } else {
            eprintln!(
                "cell {i} (seed {seed}, scenario {scenario}, crash tick {}): digest mismatch \
                 (baseline log {} / credits {:#x}, recovered log {} / credits {:#x}){}",
                out.crash_tick,
                baseline.0.len(),
                baseline.1,
                out.fingerprint.0.len(),
                out.fingerprint.1,
                if matches!(cell.backend, DrillBackend::File(_)) {
                    format!("; WAL kept at {}", dir.display())
                } else {
                    String::new()
                }
            );
            failed = true;
        }
    }

    let wall = start.elapsed().as_secs_f64();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let out = StoreFaultsOutput {
        smoke,
        start_seed,
        cells,
        mem_cells: backend_counts[0],
        file_cells: backend_counts[1],
        remote_cells: backend_counts[2],
        digest_matches,
        wall_secs: wall,
        recovery_ms_mean: mean(&recovery_ms),
        recovery_ms_max: recovery_ms.iter().copied().fold(0.0, f64::max),
        replayed_records_mean: mean(&replayed.iter().map(|&r| r as f64).collect::<Vec<_>>()),
        replayed_records_max: replayed.iter().copied().max().unwrap_or(0),
        snapshot_bytes_mean: mean(&snapshot_bytes.iter().map(|&b| b as f64).collect::<Vec<_>>()),
        snapshot_bytes_max: snapshot_bytes.iter().copied().max().unwrap_or(0),
        remote_recovery_ms_mean: mean(&remote_recovery_ms),
    };
    println!(
        "{}/{} digests matched ({} mem / {} file / {} remote) in {:.2}s; \
         recovery mean {:.2}ms max {:.2}ms (remote mean {:.2}ms); \
         replayed mean {:.1} max {}; snapshot mean {:.0}B max {}B",
        out.digest_matches,
        out.cells,
        out.mem_cells,
        out.file_cells,
        out.remote_cells,
        wall,
        out.recovery_ms_mean,
        out.recovery_ms_max,
        out.remote_recovery_ms_mean,
        out.replayed_records_mean,
        out.replayed_records_max,
        out.snapshot_bytes_mean,
        out.snapshot_bytes_max,
    );
    write_json("BENCH_store.json", &out);

    if failed {
        eprintln!("store-faults campaign FAILED; any offending WAL dirs kept under STORE_wal/");
        std::process::exit(1);
    }
    std::fs::remove_dir_all(&wal_root).ok();
    println!("all drills bit-identical across the backend family");
}
