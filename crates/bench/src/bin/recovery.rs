//! Crash-recovery benchmark for the durable control plane.
//!
//! For each seeded pair, runs a control loop against a file-backed
//! [`keebo::FileStore`], kills it at a [`keebo::CrashPlan`]-chosen tick
//! (optionally tearing the WAL tail mid-frame), restores from the surviving
//! directory, and finishes the run. The recovered run's decision log and
//! billed credits are compared bit-for-bit against an uninterrupted run of
//! the same scenario; any divergence keeps the offending WAL directory on
//! disk (`RECOVERY_wal/pair<N>/`) for CI artifact upload and exits
//! non-zero.
//!
//! Writes `BENCH_recovery.json` with recovery wall time, replayed-record,
//! and snapshot-size statistics.
//!
//! Usage: `recovery [--smoke] [--seed N] [--pairs N]` — `--smoke` is the
//! bounded CI configuration (6 pairs); the default campaign is 24.

use bench::report::{header, write_json};
use cdw_sim::{
    Account, FaultPlan, Simulator, WarehouseConfig, WarehouseId, WarehouseSize, DAY_MS, MINUTE_MS,
};
use keebo::{generate_trace, CrashPlan, FileStore, KwoSetup, Orchestrator, StateStore};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;
use workload::BiWorkload;

const WAREHOUSE: &str = "WH";
const TICK_MS: u64 = 30 * MINUTE_MS;
const OBSERVE_MS: u64 = DAY_MS;
const END_MS: u64 = 2 * DAY_MS;

#[derive(Serialize)]
struct RecoveryOutput {
    smoke: bool,
    start_seed: u64,
    pairs: usize,
    digest_matches: usize,
    torn_tail_pairs: usize,
    wall_secs: f64,
    recovery_ms_mean: f64,
    recovery_ms_max: f64,
    replayed_records_mean: f64,
    replayed_records_max: u64,
    snapshot_bytes_mean: f64,
    snapshot_bytes_max: u64,
    wal_bytes_truncated_total: u64,
}

fn arg_value(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn setup() -> KwoSetup {
    KwoSetup {
        realtime_interval_ms: TICK_MS,
        onboarding_episodes: 2,
        refresh_episodes: 0,
        train_interval_ms: 2 * DAY_MS,
        ..KwoSetup::default()
    }
}

fn build_sim(seed: u64) -> (Simulator, WarehouseId) {
    let mut account = Account::new();
    let wh = account.create_warehouse(
        WAREHOUSE,
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800),
    );
    let mut sim = Simulator::with_faults(account, FaultPlan::none(), seed ^ 0xFA11);
    let queries = generate_trace(
        &BiWorkload {
            dashboards: 2,
            queries_per_refresh: 2,
            peak_refreshes_per_hour: 4.0,
            ..BiWorkload::default()
        },
        0,
        END_MS,
        seed,
    );
    for q in queries {
        sim.submit_query(wh, q);
    }
    (sim, wh)
}

/// Everything the recovered run must reproduce exactly.
fn fingerprint(kwo: &Orchestrator, sim: &Simulator, wh: WarehouseId) -> (usize, u64) {
    let log_len = kwo
        .optimizer(WAREHOUSE)
        .map_or(0, |o| o.actuator().log().len());
    (
        log_len,
        sim.account().accrued_credits(wh, sim.now()).to_bits(),
    )
}

fn run_uninterrupted(seed: u64) -> (usize, u64) {
    let (mut sim, wh) = build_sim(seed);
    let mut kwo = Orchestrator::new(seed);
    kwo.manage(&sim, WAREHOUSE, setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, END_MS);
    fingerprint(&kwo, &sim, wh)
}

fn open_store(dir: &Path) -> FileStore {
    match FileStore::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to open store at {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let start_seed = arg_value("--seed").unwrap_or(0);
    let pairs = arg_value("--pairs").unwrap_or(if smoke { 6 } else { 24 }) as usize;
    header(&format!(
        "recovery campaign: {pairs} crash/restore pairs from seed {start_seed}{}",
        if smoke { " [smoke]" } else { "" }
    ));

    let wal_root = PathBuf::from("RECOVERY_wal");
    let optimize_ticks = (END_MS - OBSERVE_MS) / TICK_MS;
    let start = Instant::now();

    let mut digest_matches = 0usize;
    let mut torn_tail_pairs = 0usize;
    let mut recovery_ms = Vec::with_capacity(pairs);
    let mut replayed = Vec::with_capacity(pairs);
    let mut snapshot_bytes = Vec::with_capacity(pairs);
    let mut truncated_total = 0u64;
    let mut failed = false;

    for k in 0..pairs {
        let seed = start_seed + k as u64;
        let baseline = run_uninterrupted(seed);
        let plan = CrashPlan::from_seed(seed, optimize_ticks);
        let crash_t = OBSERVE_MS + plan.crash_tick * TICK_MS;

        let dir = wal_root.join(format!("pair{k}"));
        std::fs::remove_dir_all(&dir).ok();
        let (mut sim, wh) = build_sim(seed);
        let mut kwo = Orchestrator::new(seed);
        kwo.attach_store(Box::new(open_store(&dir)), sim.now());
        kwo.set_snapshot_interval_ticks(13);
        kwo.manage(&sim, WAREHOUSE, setup());
        kwo.observe_until(&mut sim, OBSERVE_MS);
        kwo.onboard(&mut sim);
        kwo.run_until(&mut sim, crash_t);
        drop(kwo);

        // A quarter of the plans kill mid-write: tear the WAL inside the
        // final frame. Recovery loses at most that record and must report
        // the truncation rather than fail.
        let mut torn = false;
        if plan.torn_tail {
            let wal_path = dir.join("wal.log");
            if let Ok(meta) = std::fs::metadata(&wal_path) {
                if meta.len() > 0 {
                    let mut store = open_store(&dir);
                    if store.truncate_wal_to(plan.torn_offset(meta.len())).is_ok() {
                        torn = true;
                        torn_tail_pairs += 1;
                    }
                }
            }
        }

        let store: Box<dyn StateStore> = Box::new(open_store(&dir));
        let (mut kwo, stats) = match Orchestrator::restore(store, &sim) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("pair {k} (seed {seed}): restore failed: {e}");
                failed = true;
                continue;
            }
        };
        kwo.run_until(&mut sim, END_MS);
        let recovered = fingerprint(&kwo, &sim, wh);

        recovery_ms.push(stats.recovery_wall_ms);
        replayed.push(stats.replayed_records);
        snapshot_bytes.push(stats.snapshot_bytes);
        truncated_total += stats.wal_truncated_bytes;

        // A torn tail may legitimately drop the final pre-crash record, so
        // bit-identity is only asserted for clean kills.
        if torn || recovered == baseline {
            digest_matches += 1;
            std::fs::remove_dir_all(&dir).ok();
        } else {
            eprintln!(
                "pair {k} (seed {seed}, crash tick {}): digest mismatch \
                 (baseline log {} / credits {:#x}, recovered log {} / credits {:#x}); \
                 WAL kept at {}",
                plan.crash_tick,
                baseline.0,
                baseline.1,
                recovered.0,
                recovered.1,
                dir.display()
            );
            failed = true;
        }
    }

    let wall = start.elapsed().as_secs_f64();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let out = RecoveryOutput {
        smoke,
        start_seed,
        pairs,
        digest_matches,
        torn_tail_pairs,
        wall_secs: wall,
        recovery_ms_mean: mean(&recovery_ms),
        recovery_ms_max: recovery_ms.iter().copied().fold(0.0, f64::max),
        replayed_records_mean: mean(&replayed.iter().map(|&r| r as f64).collect::<Vec<_>>()),
        replayed_records_max: replayed.iter().copied().max().unwrap_or(0),
        snapshot_bytes_mean: mean(&snapshot_bytes.iter().map(|&b| b as f64).collect::<Vec<_>>()),
        snapshot_bytes_max: snapshot_bytes.iter().copied().max().unwrap_or(0),
        wal_bytes_truncated_total: truncated_total,
    };
    println!(
        "{}/{} digests matched ({} torn-tail pairs) in {:.2}s; \
         recovery mean {:.2}ms max {:.2}ms; replayed mean {:.1} max {}; \
         snapshot mean {:.0}B max {}B",
        out.digest_matches,
        out.pairs,
        out.torn_tail_pairs,
        wall,
        out.recovery_ms_mean,
        out.recovery_ms_max,
        out.replayed_records_mean,
        out.replayed_records_max,
        out.snapshot_bytes_mean,
        out.snapshot_bytes_max,
    );
    write_json("BENCH_recovery.json", &out);

    if failed {
        eprintln!("recovery campaign FAILED; offending WAL dirs kept under RECOVERY_wal/");
        std::process::exit(1);
    }
    std::fs::remove_dir_all(&wal_root).ok();
    println!("all recoveries bit-identical");
}
