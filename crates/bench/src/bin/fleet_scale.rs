//! 1k-tenant fleet throughput benchmark.
//!
//! The paper's deployment optimizes fleets across many customer accounts
//! ("millions of queries"); KEA-style centralized tuning only pays off when
//! the harness can cheaply drive thousands of clusters. This bench is the
//! scale probe for that claim: it builds a 1000-tenant × 4-warehouse
//! mixed-archetype fleet (4000 warehouses), drives it on a persistent
//! [`WorkerPool`] at 1/2/4/8 worker threads, and writes a
//! `BENCH_fleet_scale.json` trajectory — warehouses/sec per thread count,
//! shard build vs drive seconds kept apart, and the report digest at every
//! point — for later PRs to ratchet against.
//!
//! Invariants enforced here, not just reported:
//!
//! * the fleet digest is bit-identical at every thread count (the run
//!   aborts otherwise);
//! * on genuinely multi-core hardware (≥4 CPUs, non-smoke), 4 threads must
//!   clear 2× the single-thread throughput.
//!
//! Usage: `fleet_scale [--smoke]` — `--smoke` shrinks to an 8×2 fleet at
//! 1/2 threads (the CI configuration); the default is the full 1k-tenant
//! fleet over 2 simulated days (1 observed).

use bench::report::{header, pct, table};
use cdw_sim::{WarehouseConfig, WarehouseSize, DAY_MS, MINUTE_MS};
use keebo::{
    derive_stream_seed, FleetController, FleetReport, KwoSetup, TenantSpec, WarehouseSpec,
    WorkerPool,
};
use serde::Serialize;
use std::time::Instant;
use workload::{fleet_mix, generate_trace};

const SEED: u64 = 1009;

#[derive(Serialize)]
struct RunRow {
    threads: usize,
    wall_secs: f64,
    /// Cumulative worker seconds building shards (trace submission etc.).
    build_secs: f64,
    /// Cumulative worker seconds driving shards (simulate + optimize).
    drive_secs: f64,
    /// Wall seconds attributed to the drive phase: `wall_secs` scaled by
    /// the drive share of cumulative worker time. Build and drive interleave
    /// per shard on the same workers, so this proportional split is the
    /// wall-clock attribution of the PR 7 build/drive accounting.
    drive_wall_secs: f64,
    /// Drive-phase throughput: `warehouses / drive_wall_secs`. The PR 7
    /// split exists precisely so trace/shard *construction* is not billed
    /// to the engine; the original column divided by total wall (build
    /// included) and understated the engine accordingly.
    warehouses_per_sec: f64,
    speedup_vs_1: f64,
    digest: String,
}

#[derive(Serialize)]
struct FleetShape {
    tenants: usize,
    warehouses_per_tenant: usize,
    warehouses: usize,
    observe_days: u64,
    total_days: u64,
    seed: u64,
    smoke: bool,
    host_cpus: usize,
}

#[derive(Serialize)]
struct BenchOutput {
    fleet: FleetShape,
    runs: Vec<RunRow>,
    aggregates_bit_identical: bool,
    estimated_without_keebo: f64,
    actual_with_keebo: f64,
    fleet_savings_credits: f64,
    savings_fraction: f64,
    invoice: keebo::Invoice,
    ops: keebo::OpsKpis,
}

fn bench_setup() -> KwoSetup {
    KwoSetup {
        realtime_interval_ms: 30 * MINUTE_MS,
        onboarding_episodes: 2,
        refresh_episodes: 0,
        train_interval_ms: 2 * DAY_MS,
        ..KwoSetup::default()
    }
}

fn build_fleet(tenants: usize, per_tenant: usize, total_days: u64) -> FleetController {
    let mut fleet = FleetController::new(SEED);
    let members = fleet_mix(tenants, per_tenant, true);
    let mut current: Option<TenantSpec> = None;
    for m in members {
        let spec = WarehouseSpec {
            name: m.warehouse.clone(),
            config: WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600),
            setup: bench_setup(),
            queries: generate_trace(
                m.generator.as_ref(),
                0,
                total_days * DAY_MS,
                derive_stream_seed(SEED, &m.warehouse),
            )
            .into(),
        };
        match current.take() {
            Some(t) if t.name == m.tenant => current = Some(t.add_warehouse(spec)),
            Some(t) => {
                fleet.add_tenant(t);
                current = Some(TenantSpec::new(&m.tenant).add_warehouse(spec));
            }
            None => current = Some(TenantSpec::new(&m.tenant).add_warehouse(spec)),
        }
    }
    if let Some(t) = current {
        fleet.add_tenant(t);
    }
    fleet
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (tenants, per_tenant, observe_days, total_days) =
        if smoke { (8, 2, 1, 2) } else { (1000, 4, 1, 2) };
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let build_start = Instant::now();
    let fleet = build_fleet(tenants, per_tenant, total_days);
    let warehouses = fleet.warehouse_count();
    header(&format!(
        "fleet_scale bench: {tenants} tenants x {per_tenant} warehouses, \
         {total_days} days ({observe_days} observed), seed {SEED}, \
         {host_cpus} host cpus (specs built in {:.1}s)",
        build_start.elapsed().as_secs_f64()
    ));

    // One persistent pool, sized for the widest run, reused across every
    // thread count: pool reuse must be digest-invisible.
    let pool = WorkerPool::new(*thread_counts.iter().max().unwrap());
    let mut runs: Vec<RunRow> = Vec::new();
    let mut reports: Vec<FleetReport> = Vec::new();
    for &threads in thread_counts {
        let start = Instant::now();
        let (report, stats) =
            fleet.run_on_timed(&pool, observe_days * DAY_MS, total_days * DAY_MS, threads);
        let wall = start.elapsed().as_secs_f64();
        // Attribute wall time to the drive phase by the worker-time split;
        // wh/s is a drive-only throughput (see RunRow docs).
        let worker_total = stats.build_secs + stats.drive_secs;
        let drive_wall = if worker_total > 0.0 {
            wall * stats.drive_secs / worker_total
        } else {
            wall
        };
        runs.push(RunRow {
            threads,
            wall_secs: wall,
            build_secs: stats.build_secs,
            drive_secs: stats.drive_secs,
            drive_wall_secs: drive_wall,
            warehouses_per_sec: warehouses as f64 / drive_wall,
            speedup_vs_1: runs.first().map_or(1.0, |r| r.wall_secs / wall),
            digest: format!("{:016x}", report.digest()),
        });
        let row = runs.last().unwrap();
        println!(
            "  {} threads: {:.1}s wall (build {:.1}s, drive {:.1}s worker-time), \
             {:.1} wh/s over {:.1}s drive wall",
            threads,
            row.wall_secs,
            row.build_secs,
            row.drive_secs,
            row.warehouses_per_sec,
            row.drive_wall_secs
        );
        reports.push(report);
    }

    let identical = reports.iter().all(|r| r.digest() == reports[0].digest());
    assert!(
        identical,
        "fleet aggregates diverged across thread counts: {:?}",
        runs.iter().map(|r| &r.digest).collect::<Vec<_>>()
    );

    // The scale-out acceptance bar: 4 threads must at least double the
    // single-thread throughput — but only where the hardware can possibly
    // deliver it (a 1-core container cannot, and smoke runs are too small
    // for stable ratios).
    if !smoke && host_cpus >= 4 {
        let one = runs.iter().find(|r| r.threads == 1).unwrap();
        let four = runs.iter().find(|r| r.threads == 4).unwrap();
        assert!(
            four.warehouses_per_sec >= 2.0 * one.warehouses_per_sec,
            "4-thread throughput {:.1} wh/s < 2x single-thread {:.1} wh/s",
            four.warehouses_per_sec,
            one.warehouses_per_sec
        );
    }

    let rep = &reports[0];
    let savings_fraction = if rep.estimated_without_keebo > 0.0 {
        rep.estimated_savings / rep.estimated_without_keebo
    } else {
        0.0
    };

    let mut rows = vec![vec![
        "threads".to_string(),
        "wall_s".to_string(),
        "build_s".to_string(),
        "drive_s".to_string(),
        "drive_wall_s".to_string(),
        "wh/s(drive)".to_string(),
        "speedup".to_string(),
        "digest".to_string(),
    ]];
    for r in &runs {
        rows.push(vec![
            r.threads.to_string(),
            format!("{:.2}", r.wall_secs),
            format!("{:.2}", r.build_secs),
            format!("{:.2}", r.drive_secs),
            format!("{:.2}", r.drive_wall_secs),
            format!("{:.2}", r.warehouses_per_sec),
            format!("{:.2}x", r.speedup_vs_1),
            r.digest.clone(),
        ]);
    }
    table(&rows);
    println!();
    println!(
        "fleet savings: {:.1} of {:.1} credits ({}), keebo charge {:.1}, health {:?}",
        rep.estimated_savings,
        rep.estimated_without_keebo,
        pct(savings_fraction),
        rep.invoice.charge_credits,
        rep.ops.health,
    );

    let out = BenchOutput {
        fleet: FleetShape {
            tenants,
            warehouses_per_tenant: per_tenant,
            warehouses,
            observe_days,
            total_days,
            seed: SEED,
            smoke,
            host_cpus,
        },
        runs,
        aggregates_bit_identical: identical,
        estimated_without_keebo: rep.estimated_without_keebo,
        actual_with_keebo: rep.actual_with_keebo,
        fleet_savings_credits: rep.estimated_savings,
        savings_fraction,
        invoice: rep.invoice.clone(),
        ops: rep.ops.clone(),
    };
    bench::report::write_json("BENCH_fleet_scale.json", &out);

    let metrics = keebo::obs::prometheus_text(&keebo::obs::global().snapshot());
    bench::report::write_report("BENCH_fleet_scale_metrics.prom", &metrics);
    println!("exported {} metric lines", metrics.lines().count());
}
