//! Figure 5 — "Warehouse cost model is accurate" (§7.2).
//!
//! For four warehouses with different workloads, estimate the cost of a
//! two-day evaluation window *without running its queries* (per-template
//! execution estimates from a five-day training period feed the replay
//! engine), then actually run the window and compare against the billed
//! credits. The paper reports relative errors of 0.67%, 4.09%, 20.9%, and
//! 3.12%, with the outlier being a low-spend, rarely-used warehouse where
//! tiny absolute deviations dominate the ratio — the same pattern this
//! harness reproduces.
//!
//! Usage: `cargo run --release -p bench --bin fig5 -- [--seed N]`

use bench::estimator::TemplateExecEstimator;
use bench::report::{header, pct, table};
use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, DAY_MS};
use costmodel::{ReplayConfig, WarehouseCostModel};
use workload::{
    generate_trace, AdhocWorkload, BiWorkload, EtlWorkload, MixedWorkload, ReportingWorkload,
    WorkloadGenerator,
};

const TRAIN_DAYS: u64 = 5;
const EVAL_DAYS: u64 = 2;

fn main() {
    let seed: u64 = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(7);

    header("Figure 5 — estimated vs actual warehouse cost");
    let cases: Vec<(String, Box<dyn WorkloadGenerator>, WarehouseConfig)> = vec![
        (
            "Warehouse1".into(),
            Box::new(EtlWorkload::default()),
            WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600),
        ),
        (
            "Warehouse2".into(),
            Box::new(BiWorkload::default()),
            WarehouseConfig::new(WarehouseSize::Small)
                .with_auto_suspend_secs(300)
                .with_clusters(1, 3),
        ),
        (
            // The low-spend, rarely-used warehouse: provisioned but mostly
            // idle, so relative error is structurally large.
            "Warehouse3".into(),
            Box::new(AdhocWorkload {
                mean_rate_per_hour: 0.15,
                daily_swing_sigma: 1.0,
                ..AdhocWorkload::default()
            }),
            WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(300),
        ),
        (
            "Warehouse4".into(),
            Box::new(
                MixedWorkload::new("mixed")
                    .with(EtlWorkload {
                        pipelines: 2,
                        ..EtlWorkload::default()
                    })
                    .with(ReportingWorkload::default()),
            ),
            WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(600),
        ),
    ];

    let mut rows = vec![vec![
        "warehouse".into(),
        "actual".into(),
        "estimated".into(),
        "rel. error".into(),
    ]];
    for (name, workload, config) in cases {
        let (actual, estimated) = evaluate(workload.as_ref(), &config, seed);
        let err = (estimated - actual).abs() / actual.max(1e-9);
        rows.push(vec![
            name,
            format!("{actual:.2}"),
            format!("{estimated:.2}"),
            pct(err),
        ]);
    }
    table(&rows);
    println!("\n(paper: 0.67%, 4.09%, 20.9%, 3.12% — the low-spend warehouse is the outlier)");
}

/// Returns (actual credits, estimated credits) for the evaluation window.
fn evaluate(workload: &dyn WorkloadGenerator, config: &WarehouseConfig, seed: u64) -> (f64, f64) {
    let total_days = TRAIN_DAYS + EVAL_DAYS;
    let trace = generate_trace(workload, 0, total_days * DAY_MS, seed);

    // Ground truth: actually run everything.
    let mut account = Account::new();
    let wh = account.create_warehouse("WH", config.clone());
    let mut sim = Simulator::new(account);
    for q in &trace {
        sim.submit_query(wh, q.clone());
    }
    sim.run_until(total_days * DAY_MS);
    let billing = sim.account().ledger().warehouse("WH");
    let actual = billing.range_total(TRAIN_DAYS * 24, total_days * 24)
        + sim.account().warehouse(wh).open_session_credits(sim.now());

    // Estimate: train on the first five days, predict the last two without
    // executing them.
    let history: Vec<_> = sim
        .account()
        .query_records()
        .iter()
        .filter(|r| r.arrival < TRAIN_DAYS * DAY_MS)
        .cloned()
        .collect();
    let model = WarehouseCostModel::train(
        &history,
        0,
        TRAIN_DAYS * DAY_MS,
        config.max_concurrency,
        config.max_clusters,
    );
    let exec_est = TemplateExecEstimator::train(&history, &model.latency, config.size);
    let eval_specs: Vec<_> = trace
        .iter()
        .filter(|q| q.arrival >= TRAIN_DAYS * DAY_MS)
        .cloned()
        .collect();
    let predicted = exec_est.predict_records(&eval_specs, config, &model.latency, "WH");
    let outcome = model.replay(
        &predicted,
        &ReplayConfig {
            original: config.clone(),
            window_start: TRAIN_DAYS * DAY_MS,
            window_end: total_days * DAY_MS,
        },
    );
    (actual, outcome.estimated_credits)
}
