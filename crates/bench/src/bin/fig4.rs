//! Figure 4 — "Keebo offers significant savings" (§7.1).
//!
//! Reproduces both subfigures: daily credit usage (bars) and daily p99
//! latency (line) for 14 simulated days, with KWO enabled from day 8
//! (index 7). Variant `a` is the unpredictable ad-hoc warehouse (paper:
//! −59.7%, 10.4 → 4.2 credits/day); variant `b` is the predictable ETL
//! warehouse (paper: −13.2%, 26.9 → 23.4 credits/day, with p99 *lower*
//! under KWO thanks to steadier, warmer warehouses).
//!
//! Usage: `cargo run --release -p bench --bin fig4 -- [--variant a|b] [--seed N]`

use bench::report::{bar_row, header, pct, table};
use bench::{daily_credits, daily_p99_latency, mean, run_with_kwo};
use cdw_sim::{WarehouseConfig, WarehouseSize};
use keebo::{KwoSetup, SliderPosition};
use workload::{AdhocWorkload, EtlWorkload, WorkloadGenerator};

const OBSERVE_DAYS: u64 = 7;
const TOTAL_DAYS: u64 = 14;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let variant = flag(&args, "--variant").unwrap_or_else(|| "both".into());
    let seed: u64 = flag(&args, "--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(42);

    if variant == "a" || variant == "both" {
        run_variant_a(seed);
    }
    if variant == "b" || variant == "both" {
        run_variant_b(seed);
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Fig. 4a: less predictable workload, fluctuating daily usage.
fn run_variant_a(seed: u64) {
    header("Figure 4a — unpredictable warehouse (ad-hoc analytics)");
    // An oversized warehouse with a long auto-suspend: the typical
    // pre-optimization posture for a warehouse serving analysts.
    let original = WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800);
    let workload = AdhocWorkload::default();
    report(&workload, original, seed, SliderPosition::Balanced);
}

/// Fig. 4b: predictable ETL workload, near-constant daily usage. The
/// warehouse is densely utilized (pipelines fire every 30 minutes), so the
/// headroom KWO can reclaim is structurally small — the paper's predictable
/// warehouse saves 13.2% vs the unpredictable one's 59.7%.
fn run_variant_b(seed: u64) {
    header("Figure 4b — predictable warehouse (recurring ETL)");
    let original = WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600);
    let workload = EtlWorkload {
        pipelines: 6,
        period_ms: 30 * cdw_sim::MINUTE_MS,
        queries_per_run: 8,
        median_work_ms: 90_000.0,
    };
    report(&workload, original, seed, SliderPosition::Balanced);
}

fn report(
    workload: &dyn WorkloadGenerator,
    original: WarehouseConfig,
    seed: u64,
    slider: SliderPosition,
) {
    let setup = KwoSetup {
        slider,
        ..KwoSetup::default()
    };
    let run = run_with_kwo(workload, original, setup, OBSERVE_DAYS, TOTAL_DAYS, seed);

    let credits = daily_credits(&run.sim, &run.warehouse, run.wh, TOTAL_DAYS);
    let p99 = daily_p99_latency(run.sim.account().query_records(), TOTAL_DAYS);
    let max = credits.iter().cloned().fold(0.0, f64::max);

    println!("daily credits (days 1-7 = before Keebo, days 8-14 = with Keebo):");
    for (d, (&c, &l)) in credits.iter().zip(&p99).enumerate() {
        let tag = if (d as u64) < OBSERVE_DAYS {
            "pre "
        } else {
            "KWO "
        };
        bar_row(&format!("{tag}day {:2}", d + 1), c, max, 40);
        println!("{:>12} |   p99 latency {:>8.1} s", "", l / 1000.0);
    }

    let before = mean(&credits[..OBSERVE_DAYS as usize]);
    let after = mean(&credits[OBSERVE_DAYS as usize..]);
    let p99_before = mean(&p99[..OBSERVE_DAYS as usize]);
    let p99_after = mean(&p99[OBSERVE_DAYS as usize..]);
    println!();
    table(&[
        vec![
            "metric".into(),
            "before".into(),
            "with KWO".into(),
            "change".into(),
        ],
        vec![
            "credits/day".into(),
            format!("{before:.1}"),
            format!("{after:.1}"),
            pct((before - after) / before.max(1e-9)),
        ],
        vec![
            "p99 latency (s)".into(),
            format!("{:.1}", p99_before / 1000.0),
            format!("{:.1}", p99_after / 1000.0),
            pct((p99_before - p99_after) / p99_before.max(1e-9)),
        ],
    ]);
    let o = run.kwo.optimizer(&run.warehouse).unwrap();
    println!(
        "actions applied: {}   (failures: {})",
        o.actuator().applied_count(),
        o.actuator().failure_count()
    );
}
