//! Onboarding convergence — the paper's §1/§9 claim:
//!
//! "On average, customers reach 50%, 70%, and 95% of their eventual savings
//! after only 20, 43, and 83 hours of onboarding."
//!
//! This binary tracks the savings *rate* (fraction of the without-Keebo
//! estimate saved) in 12-hour buckets after onboarding and reports when the
//! cumulative savings rate crosses 50/70/95% of its eventual plateau. The
//! models keep learning online (more telemetry, more transitions), so the
//! curve ramps rather than jumping — the shape, not the exact hour marks,
//! is the reproduction target.
//!
//! Usage: `cargo run --release -p bench --bin convergence -- [--seed N]`

use bench::report::{header, pct, table};
use cdw_sim::{WarehouseConfig, WarehouseSize, HOUR_MS};
use keebo::{KwoSetup, SliderPosition};
use workload::AdhocWorkload;

const OBSERVE_HOURS: u64 = 6;
const OPTIMIZE_DAYS: u64 = 7;
const BUCKET_HOURS: u64 = 4;

fn main() {
    let seed: u64 = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(5);

    header("Onboarding convergence — savings vs hours since onboarding");
    let original = WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(1800);
    let setup = KwoSetup {
        slider: SliderPosition::Balanced,
        // Modest initial training so there is headroom to converge into.
        onboarding_episodes: 2,
        refresh_episodes: 2,
        train_interval_ms: 12 * HOUR_MS,
        ..KwoSetup::default()
    };
    let run = bench::run_with_kwo_hours(
        &AdhocWorkload::default(),
        original,
        setup,
        OBSERVE_HOURS,
        OBSERVE_HOURS + OPTIMIZE_DAYS * 24,
        seed,
    );
    let o = run.kwo.optimizer(&run.warehouse).unwrap();

    let total_buckets = OPTIMIZE_DAYS * 24 / BUCKET_HOURS;
    let mut rows = vec![vec![
        "hours since onboarding".into(),
        "savings rate".into(),
        "cumulative savings rate".into(),
    ]];
    let mut cumulative: Vec<f64> = Vec::new();
    let mut cum_saved = 0.0;
    let mut cum_without = 0.0;
    let mut rates = Vec::new();
    for b in 0..total_buckets {
        let start = OBSERVE_HOURS * HOUR_MS + b * BUCKET_HOURS * HOUR_MS;
        let end = start + BUCKET_HOURS * HOUR_MS;
        let report = o.savings_report(&run.sim, start, end);
        let rate = report.savings_fraction.max(0.0);
        cum_saved += report.estimated_savings.max(0.0);
        cum_without += report.estimated_without_keebo;
        let cum_rate = cum_saved / cum_without.max(1e-9);
        cumulative.push(cum_rate);
        rates.push(rate);
        rows.push(vec![
            format!("{}", (b + 1) * BUCKET_HOURS),
            pct(rate),
            pct(cum_rate),
        ]);
    }
    table(&rows);

    // "Eventual" savings = plateau over the final quarter of the run.
    let tail = &rates[rates.len() - (rates.len() / 4).max(1)..];
    let eventual: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
    println!("\neventual (plateau) savings rate: {}", pct(eventual));
    for target in [0.5, 0.7, 0.95] {
        let hours = rates
            .iter()
            .position(|&r| r >= target * eventual)
            .map(|b| (b + 1) as u64 * BUCKET_HOURS);
        match hours {
            Some(h) => println!(
                "reached {} of eventual savings after ~{h} hours",
                pct(target)
            ),
            None => println!("never reached {} of eventual savings", pct(target)),
        }
    }
    println!("(paper: 50% after 20 h, 70% after 43 h, 95% after 83 h — shape, not absolutes)");
}
