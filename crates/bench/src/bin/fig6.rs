//! Figure 6 — "Keebo incurs almost no overheads" (§7.3).
//!
//! Hourly series over two optimized days of an ETL warehouse: (1) actual
//! credit usage, (2) KWO's own overhead (telemetry fetches + actuator
//! commands), and (3) estimated savings from the cost model's what-if
//! replay. The paper's observations to reproduce: overhead is negligibly
//! small next to regular processing, savings dwarf overhead, and
//! actual + savings (the expected without-Keebo spend) is nearly constant
//! hour over hour for this static ETL workload.
//!
//! Usage: `cargo run --release -p bench --bin fig6 -- [--seed N]`

use bench::report::{header, table};
use bench::run_with_kwo;
use cdw_sim::{WarehouseConfig, WarehouseSize, DAY_MS, HOUR_MS};
use keebo::KwoSetup;
use workload::EtlWorkload;

const OBSERVE_DAYS: u64 = 2;
const TOTAL_DAYS: u64 = 4;

fn main() {
    let seed: u64 = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(11);

    header("Figure 6 — hourly usage, KWO overhead, and estimated savings (ETL warehouse)");
    let original = WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(600);
    let run = run_with_kwo(
        &EtlWorkload::default(),
        original,
        KwoSetup::default(),
        OBSERVE_DAYS,
        TOTAL_DAYS,
        seed,
    );

    let o = run.kwo.optimizer(&run.warehouse).unwrap();
    let report = o.savings_report(&run.sim, OBSERVE_DAYS * DAY_MS, TOTAL_DAYS * DAY_MS);
    let actual_hourly = run.sim.account().ledger().warehouse(&run.warehouse);
    let overhead_hourly = run.sim.account().ledger().overhead();

    let mut rows = vec![vec![
        "hour".into(),
        "actual".into(),
        "overhead".into(),
        "est. savings".into(),
        "actual+savings".into(),
    ]];
    let first_hour = OBSERVE_DAYS * 24;
    let last_hour = TOTAL_DAYS * 24;
    let mut total_actual = 0.0;
    let mut total_overhead = 0.0;
    let mut total_savings = 0.0;
    for h in first_hour..last_hour {
        let actual = actual_hourly.hour(h)
            + if h == last_hour - 1 {
                run.sim
                    .account()
                    .warehouse(run.wh)
                    .open_session_credits(run.sim.now())
            } else {
                0.0
            };
        let overhead = overhead_hourly.hour(h);
        let without = report.replay.hourly.hour(h);
        let savings = (without - actual).max(0.0);
        total_actual += actual;
        total_overhead += overhead;
        total_savings += savings;
        // Print every 4th hour to keep the table readable; totals cover all.
        if (h - first_hour).is_multiple_of(4) {
            rows.push(vec![
                format!("{h}"),
                format!("{actual:.3}"),
                format!("{overhead:.4}"),
                format!("{savings:.3}"),
                format!("{:.3}", actual + savings),
            ]);
        }
    }
    rows.push(vec![
        "TOTAL".into(),
        format!("{total_actual:.2}"),
        format!("{total_overhead:.3}"),
        format!("{total_savings:.2}"),
        format!("{:.2}", total_actual + total_savings),
    ]);
    table(&rows);

    println!(
        "\noverhead / actual usage: {:.3}%  (paper: 'negligibly small')",
        100.0 * total_overhead / total_actual.max(1e-9)
    );
    println!(
        "estimated savings / overhead: {:.0}x  (savings must dwarf overhead)",
        total_savings / total_overhead.max(1e-9)
    );
    // Flatness of the expected without-Keebo spend across full hours.
    let mut series = Vec::new();
    for h in first_hour..last_hour {
        let actual = actual_hourly.hour(h);
        let without = report.replay.hourly.hour(h);
        series.push(actual.max(without));
    }
    let interior = &series[1..series.len().saturating_sub(1)];
    let mean: f64 = interior.iter().sum::<f64>() / interior.len().max(1) as f64;
    let cv = (interior.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
        / interior.len().max(1) as f64)
        .sqrt()
        / mean.max(1e-9);
    println!(
        "hour-to-hour CV of expected without-Keebo spend: {:.2} (static ETL => low)",
        cv
    );
    let _ = HOUR_MS; // (kept for symmetry with other binaries' imports)
}
