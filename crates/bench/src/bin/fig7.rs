//! Figure 7 — "Keebo offers intuitive configuration sliders" (§7.4).
//!
//! Runs the *same* BI-style workload under all five slider positions and
//! reports total warehouse cost (bars) and average query latency (line).
//! The paper's claim to reproduce is the Pareto trade-off: moving the
//! slider from "Best Performance" toward "Lowest Cost" monotonically trades
//! latency for credits.
//!
//! Usage: `cargo run --release -p bench --bin fig7 -- [--seed N]`

use bench::report::{bar_row, header, table};
use bench::{mean, run_with_kwo};
use cdw_sim::{WarehouseConfig, WarehouseSize, DAY_MS};
use keebo::{KwoSetup, SliderPosition};
use workload::BiWorkload;

const OBSERVE_DAYS: u64 = 3;
const TOTAL_DAYS: u64 = 8;

fn main() {
    let seed: u64 = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(21);

    header("Figure 7 — cost vs latency across the five slider positions");
    let mut results: Vec<(SliderPosition, f64, f64)> = Vec::new();
    for slider in SliderPosition::ALL {
        let original = WarehouseConfig::new(WarehouseSize::Large)
            .with_auto_suspend_secs(1800)
            .with_clusters(1, 2);
        let setup = KwoSetup {
            slider,
            ..KwoSetup::default()
        };
        let run = run_with_kwo(
            &BiWorkload::default(),
            original,
            setup,
            OBSERVE_DAYS,
            TOTAL_DAYS,
            seed,
        );
        // Evaluate only the optimized window.
        let eval_start = OBSERVE_DAYS * DAY_MS;
        let credits = run
            .sim
            .account()
            .ledger()
            .warehouse(&run.warehouse)
            .range_total(OBSERVE_DAYS * 24, TOTAL_DAYS * 24)
            + run
                .sim
                .account()
                .warehouse(run.wh)
                .open_session_credits(run.sim.now());
        let latencies: Vec<f64> = run
            .sim
            .account()
            .query_records()
            .iter()
            .filter(|r| r.end >= eval_start)
            .map(|r| r.total_latency_ms() as f64)
            .collect();
        results.push((slider, credits, mean(&latencies) / 1000.0));
    }

    let max_credits = results.iter().map(|r| r.1).fold(0.0, f64::max);
    for (slider, credits, _) in &results {
        bar_row(
            &format!("slider {}", slider.value()),
            *credits,
            max_credits,
            40,
        );
    }
    println!();
    let mut rows = vec![vec![
        "slider".into(),
        "position".into(),
        "cost (credits)".into(),
        "avg latency (s)".into(),
    ]];
    for (slider, credits, lat) in &results {
        rows.push(vec![
            slider.value().to_string(),
            format!("{slider:?}"),
            format!("{credits:.1}"),
            format!("{lat:.2}"),
        ]);
    }
    table(&rows);
    println!(
        "\n(paper: cost rises and latency falls as the slider moves toward Best Performance;\n KWO is Pareto-efficient at each position)"
    );
}
