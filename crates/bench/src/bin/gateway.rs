//! Serving-gateway admission/dispatch benchmark.
//!
//! Drives a mixed open-loop + closed-loop client population through
//! `keebo::gateway` at several worker counts and reports what a serving
//! front door is judged on: admission wall latency (p50/p99/p999), shed
//! rate by reason, and per-priority dispatch throughput — plus the repo's
//! non-negotiable: the fleet digest, the admission-decision digest, and
//! the response digest must be bit-identical at every thread count (the
//! run aborts otherwise).
//!
//! Writes `BENCH_gateway.json` and a Prometheus snapshot. Usage:
//! `gateway [--smoke]` — `--smoke` shrinks to 4 tenants / 8 ticks at 1/2
//! threads (the CI configuration).

use bench::report::{header, table};
use cdw_sim::{QuerySpec, WarehouseConfig, WarehouseSize, DAY_MS, HOUR_MS, MINUTE_MS};
use keebo::{
    derive_stream_seed, Gateway, GatewayConfig, GatewayStats, KwoSetup, Priority, Request,
    RequestKind, Rule, RuleEffect, SliderPosition, TenantSpec, WarehouseSpec, WorkerPool,
};
use serde::Serialize;
use std::time::Instant;
use telemetry::percentile;
use workload::loadgen::{ClosedLoopDriver, LoadEvent, LoadOp, LoadPriority};
use workload::{generate_trace, open_loop_plan, BiWorkload, EtlWorkload};

const SEED: u64 = 2027;

#[derive(Serialize)]
struct RunRow {
    threads: usize,
    wall_secs: f64,
    submitted: u64,
    admitted: u64,
    shed_rate_limited: u64,
    shed_quota_exhausted: u64,
    shed_queue_full: u64,
    shed_unknown_tenant: u64,
    /// Fraction of submitted requests shed (any reason).
    shed_rate: f64,
    admit_p50_us: f64,
    admit_p99_us: f64,
    admit_p999_us: f64,
    dispatched_interactive: u64,
    dispatched_batch: u64,
    /// Deterministic queue-wait percentiles, in whole control ticks.
    wait_p99_interactive_ticks: f64,
    wait_p99_batch_ticks: f64,
    fleet_digest: String,
    decisions_digest: String,
    responses_digest: String,
}

#[derive(Serialize)]
struct BenchOutput {
    tenants: usize,
    warehouses: usize,
    ticks: u64,
    tick_ms: u64,
    seed: u64,
    smoke: bool,
    host_cpus: usize,
    open_loop_events: usize,
    closed_loop_clients: usize,
    runs: Vec<RunRow>,
    digests_bit_identical: bool,
}

fn fast_setup() -> KwoSetup {
    KwoSetup {
        realtime_interval_ms: 30 * MINUTE_MS,
        onboarding_episodes: 2,
        refresh_episodes: 0,
        train_interval_ms: 2 * DAY_MS,
        ..KwoSetup::default()
    }
}

fn build_tenants(tenants: usize, per_tenant: usize, days: u64) -> Vec<TenantSpec> {
    (0..tenants)
        .map(|t| {
            let mut spec = TenantSpec::new(format!("tenant-{t}"));
            for w in 0..per_tenant {
                let name = format!("T{t}_WH{w}");
                let wh_seed = derive_stream_seed(SEED, &name);
                let queries = match (t + w) % 2 {
                    0 => generate_trace(
                        &EtlWorkload {
                            pipelines: 2,
                            queries_per_run: 2,
                            period_ms: 2 * HOUR_MS,
                            ..EtlWorkload::default()
                        },
                        0,
                        days * DAY_MS,
                        wh_seed,
                    ),
                    _ => generate_trace(
                        &BiWorkload {
                            dashboards: 2,
                            queries_per_refresh: 2,
                            peak_refreshes_per_hour: 4.0,
                            ..BiWorkload::default()
                        },
                        0,
                        days * DAY_MS,
                        wh_seed,
                    ),
                };
                spec = spec.add_warehouse(WarehouseSpec {
                    name,
                    config: WarehouseConfig::new(WarehouseSize::Medium)
                        .with_auto_suspend_secs(1800),
                    setup: fast_setup(),
                    queries: queries.into(),
                });
            }
            spec
        })
        .collect()
}

fn to_request(e: &LoadEvent) -> Request {
    let priority = match e.priority {
        LoadPriority::Interactive => Priority::Interactive,
        LoadPriority::Batch => Priority::Batch,
    };
    let kind = match &e.op {
        LoadOp::SubmitQuery { work_ms } => RequestKind::SubmitQuery {
            warehouse: e.warehouse.clone(),
            spec: QuerySpec::builder(0).work_ms_xs(*work_ms).build(),
        },
        LoadOp::SetSlider { position } => RequestKind::SetSlider {
            warehouse: e.warehouse.clone(),
            slider: match position {
                0 => SliderPosition::LowestCost,
                1 => SliderPosition::LowCost,
                2 => SliderPosition::Balanced,
                3 => SliderPosition::GoodPerformance,
                _ => SliderPosition::BestPerformance,
            },
        },
        LoadOp::EditConstraint => RequestKind::EditConstraint {
            warehouse: e.warehouse.clone(),
            rule: Rule::new(
                "bench-no-suspend",
                keebo::TimeWindow::daily(8.0, 18.0),
                RuleEffect::NoSuspend,
            ),
        },
        LoadOp::TraceQuery => RequestKind::TraceQuery {
            warehouse: e.warehouse.clone(),
        },
    };
    Request {
        tenant: e.tenant.clone(),
        priority,
        kind,
    }
}

struct RunResult {
    fleet_digest: u64,
    stats: GatewayStats,
    wall_secs: f64,
    submitted: u64,
}

/// One full gateway run at the given parallelism: identical load on every
/// call (open-loop plan replayed; closed-loop clients re-seeded and fed
/// the gateway's own outcomes, which are themselves deterministic).
fn run_once(
    pool: &WorkerPool,
    parallelism: usize,
    tenants: Vec<TenantSpec>,
    config: &GatewayConfig,
    plan: &[LoadEvent],
    names: &[(String, Vec<String>)],
    clients_per_tenant: usize,
    ticks: u64,
) -> RunResult {
    let mut gw = Gateway::new(SEED, config.clone(), tenants);
    gw.start(pool, parallelism, DAY_MS);
    let mut clients = ClosedLoopDriver::new(SEED, names, clients_per_tenant, 1, 2);
    let start = Instant::now();
    let mut submitted = 0u64;
    let mut next = 0usize;
    for tick in 0..ticks {
        while next < plan.len() && plan[next].tick == tick {
            gw.submit(to_request(&plan[next]));
            submitted += 1;
            next += 1;
        }
        for e in clients.requests_for_tick(tick) {
            let client = e.client.unwrap_or_default();
            let admitted = gw.submit(to_request(&e)).is_admitted();
            clients.on_outcome(client, admitted, tick);
            submitted += 1;
        }
        gw.tick(pool, parallelism);
    }
    let (report, stats) = gw.finish(pool, parallelism);
    RunResult {
        fleet_digest: report.digest(),
        stats,
        wall_secs: start.elapsed().as_secs_f64(),
        submitted,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (tenants_n, per_tenant, ticks) = if smoke { (4, 2, 8) } else { (32, 2, 48) };
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let clients_per_tenant = 4;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let days = 2;

    let config = GatewayConfig {
        tick_ms: 30 * MINUTE_MS,
        bucket_capacity: 6.0,
        refill_per_tick: 3.0,
        quota: 10_000,
        // Admission outpaces dispatch (~3 admits vs 2 slots per tick), so
        // the bounded queues actually fill: the run exercises queue waits
        // and queue-full sheds, not just the token bucket.
        queue_capacity: 8,
        batch_per_tenant: 2,
        reserved_batch_slots: 1,
    };
    let names: Vec<(String, Vec<String>)> = (0..tenants_n)
        .map(|t| {
            (
                format!("tenant-{t}"),
                (0..per_tenant).map(|w| format!("T{t}_WH{w}")).collect(),
            )
        })
        .collect();
    let plan = open_loop_plan(SEED, &names, ticks, 3.0, 0.4);
    header(&format!(
        "gateway bench: {tenants_n} tenants x {per_tenant} warehouses, {ticks} ticks of \
         {} min, {} open-loop events + {} closed-loop clients, seed {SEED}, {host_cpus} host cpus",
        config.tick_ms / MINUTE_MS,
        plan.len(),
        tenants_n * clients_per_tenant,
    ));

    let pool = WorkerPool::new(*thread_counts.iter().max().unwrap());
    let mut runs: Vec<RunRow> = Vec::new();
    let mut digests: Vec<(u64, u64, u64)> = Vec::new();
    for &threads in thread_counts {
        let r = run_once(
            &pool,
            threads,
            build_tenants(tenants_n, per_tenant, days),
            &config,
            &plan,
            &names,
            clients_per_tenant,
            ticks,
        );
        let s = &r.stats;
        let shed_total = s.shed.total();
        runs.push(RunRow {
            threads,
            wall_secs: r.wall_secs,
            submitted: r.submitted,
            admitted: s.admitted,
            shed_rate_limited: s.shed.rate_limited,
            shed_quota_exhausted: s.shed.quota_exhausted,
            shed_queue_full: s.shed.queue_full,
            shed_unknown_tenant: s.shed.unknown_tenant,
            shed_rate: shed_total as f64 / r.submitted.max(1) as f64,
            admit_p50_us: percentile(&s.admit_wall_us, 50.0),
            admit_p99_us: percentile(&s.admit_wall_us, 99.0),
            admit_p999_us: percentile(&s.admit_wall_us, 99.9),
            dispatched_interactive: s.dispatched_interactive,
            dispatched_batch: s.dispatched_batch,
            wait_p99_interactive_ticks: percentile(&s.wait_ticks_interactive, 99.0),
            wait_p99_batch_ticks: percentile(&s.wait_ticks_batch, 99.0),
            fleet_digest: format!("{:016x}", r.fleet_digest),
            decisions_digest: format!("{:016x}", s.decisions_digest),
            responses_digest: format!("{:016x}", s.responses_digest),
        });
        digests.push((r.fleet_digest, s.decisions_digest, s.responses_digest));
        let row = runs.last().unwrap();
        println!(
            "  {} threads: {:.2}s wall, {}/{} admitted ({:.0}% shed), \
             admit p50/p99/p999 {:.2}/{:.2}/{:.2} us",
            threads,
            row.wall_secs,
            row.admitted,
            row.submitted,
            row.shed_rate * 100.0,
            row.admit_p50_us,
            row.admit_p99_us,
            row.admit_p999_us,
        );
    }

    let identical = digests.iter().all(|d| *d == digests[0]);
    assert!(
        identical,
        "gateway diverged across thread counts: {:?}",
        runs.iter()
            .map(|r| (&r.fleet_digest, &r.decisions_digest, &r.responses_digest))
            .collect::<Vec<_>>()
    );
    let first = &runs[0];
    assert!(first.admitted > 0, "bench admitted nothing");
    assert!(
        first.dispatched_interactive > 0 && first.dispatched_batch > 0,
        "both priority classes must see traffic"
    );

    let mut rows = vec![vec![
        "threads".to_string(),
        "wall_s".to_string(),
        "admitted".to_string(),
        "shed%".to_string(),
        "p50_us".to_string(),
        "p99_us".to_string(),
        "p999_us".to_string(),
        "fleet_digest".to_string(),
    ]];
    for r in &runs {
        rows.push(vec![
            r.threads.to_string(),
            format!("{:.2}", r.wall_secs),
            r.admitted.to_string(),
            format!("{:.1}", r.shed_rate * 100.0),
            format!("{:.2}", r.admit_p50_us),
            format!("{:.2}", r.admit_p99_us),
            format!("{:.2}", r.admit_p999_us),
            r.fleet_digest.clone(),
        ]);
    }
    table(&rows);

    let out = BenchOutput {
        tenants: tenants_n,
        warehouses: tenants_n * per_tenant,
        ticks,
        tick_ms: config.tick_ms,
        seed: SEED,
        smoke,
        host_cpus,
        open_loop_events: plan.len(),
        closed_loop_clients: tenants_n * clients_per_tenant,
        runs,
        digests_bit_identical: identical,
    };
    bench::report::write_json("BENCH_gateway.json", &out);

    let metrics = keebo::obs::prometheus_text(&keebo::obs::global().snapshot());
    bench::report::write_report("BENCH_gateway_metrics.prom", &metrics);
    println!("exported {} metric lines", metrics.lines().count());
}
