//! Structured-fuzz campaign driver for the simulator verification subsystem.
//!
//! Runs seed-driven randomized ALTER/query/advance schedules through the
//! public `cdw-sim` API with per-event invariant checks and the
//! differential billing oracle (see the `verify` crate). Any failure is
//! shrunk to a minimal genome and written to `FUZZ_repro.json` so CI can
//! upload it as an artifact; the process then exits non-zero.
//!
//! Usage: `fuzz [--smoke] [--seed N] [--cases N]` — `--smoke` runs the
//! bounded CI configuration (256 cases); the default campaign is 2048
//! cases. `--seed` sets the first seed (default 0); seeds are consumed
//! sequentially so any failure is reproducible from its reported seed
//! alone.

use bench::report::header;
use serde::Serialize;
use std::time::Instant;
use verify::{run_campaign, CampaignReport, FuzzConfig};

#[derive(Serialize)]
struct FuzzOutput {
    smoke: bool,
    start_seed: u64,
    cases: usize,
    wall_secs: f64,
    cases_per_sec: f64,
    ops_applied: usize,
    events_processed: u64,
    completed_queries: usize,
    failure_count: usize,
    oracle_checks: u64,
    oracle_divergences: u64,
    invariant_violations: u64,
}

fn arg_value(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn counter(snapshot: &keebo::MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let start_seed = arg_value("--seed").unwrap_or(0);
    let cases = arg_value("--cases").unwrap_or(if smoke { 256 } else { 2048 }) as usize;
    let cfg = FuzzConfig::default();
    header(&format!(
        "fuzz campaign: {cases} cases from seed {start_seed} \
         ({} bytes/case, up to {} ops){}",
        cfg.bytes_per_case,
        cfg.max_ops,
        if smoke { " [smoke]" } else { "" }
    ));

    let start = Instant::now();
    let report: CampaignReport = run_campaign(start_seed, cases, &cfg);
    let wall = start.elapsed().as_secs_f64();

    let snapshot = keebo::obs::global().snapshot();
    let out = FuzzOutput {
        smoke,
        start_seed,
        cases: report.cases,
        wall_secs: wall,
        cases_per_sec: report.cases as f64 / wall.max(1e-9),
        ops_applied: report.ops_applied,
        events_processed: report.events_processed,
        completed_queries: report.completed_queries,
        failure_count: report.failure_count,
        oracle_checks: counter(&snapshot, "verify.oracle.checks"),
        oracle_divergences: counter(&snapshot, "verify.oracle.divergence"),
        invariant_violations: counter(&snapshot, "verify.invariant.violation"),
    };
    println!(
        "{} cases in {:.2}s ({:.0}/s): {} ops, {} events, {} queries, {} failures",
        out.cases,
        wall,
        out.cases_per_sec,
        out.ops_applied,
        out.events_processed,
        out.completed_queries,
        out.failure_count
    );
    bench::report::write_json("BENCH_fuzz.json", &out);

    if report.failure_count > 0 {
        // Persist every shrunk repro (seed, kind, minimized genome hex,
        // decoded case) so a CI artifact is enough to replay the failure
        // locally with `verify::fuzz_one(seed, &FuzzConfig::default())`.
        bench::report::write_json("FUZZ_repro.json", &report.failures);
        for f in &report.failures {
            eprintln!(
                "FAIL seed {} [{}]: {} (genome {} -> {} bytes)",
                f.seed, f.kind, f.message, f.original_len, f.shrunk_len
            );
        }
        eprintln!(
            "wrote FUZZ_repro.json with {} shrunk repro(s)",
            report.failure_count
        );
        std::process::exit(1);
    }
    println!("no invariant violations, no oracle divergences, no panics");
}
