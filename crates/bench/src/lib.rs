//! Shared experiment harness.
//!
//! Every figure binary follows the same recipe: build a workload with the
//! statistical shape the paper describes, run it through the simulator with
//! and without KWO, and print the same rows/series the paper plots. The
//! helpers here keep those binaries small and make the setups reusable from
//! integration tests.

use cdw_sim::{
    Account, QueryRecord, SimTime, Simulator, WarehouseConfig, WarehouseId, DAY_MS, HOUR_MS,
};
use keebo::{KwoSetup, Orchestrator};
use workload::{generate_trace, WorkloadGenerator};

pub mod estimator;
pub mod report;

/// A finished experiment run: the simulator (holding telemetry and billing)
/// plus the orchestrator (holding models and action logs).
pub struct KwoRun {
    pub sim: Simulator,
    pub kwo: Orchestrator,
    pub warehouse: String,
    pub wh: WarehouseId,
    /// When KWO was onboarded (actions start after this).
    pub onboard_at: SimTime,
}

/// Runs `workload` on a fresh warehouse with `original` config: days
/// `[0, observe_days)` without Keebo (observation mode), then onboarding,
/// then optimization until `total_days`.
pub fn run_with_kwo(
    workload: &dyn WorkloadGenerator,
    original: WarehouseConfig,
    setup: KwoSetup,
    observe_days: u64,
    total_days: u64,
    seed: u64,
) -> KwoRun {
    let warehouse = workload.name().to_uppercase() + "_WH";
    let mut account = Account::new();
    let wh = account.create_warehouse(&warehouse, original);
    let mut sim = Simulator::new(account);
    for q in generate_trace(workload, 0, total_days * DAY_MS, seed) {
        sim.submit_query(wh, q);
    }
    let mut kwo = Orchestrator::new(seed ^ 0x4B45_4542); // "KEEB"
    kwo.manage(&sim, &warehouse, setup);
    kwo.observe_until(&mut sim, observe_days * DAY_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, total_days * DAY_MS);
    KwoRun {
        sim,
        kwo,
        warehouse,
        wh,
        onboard_at: observe_days * DAY_MS,
    }
}

/// Hour-granular variant of [`run_with_kwo`] for onboarding experiments.
pub fn run_with_kwo_hours(
    workload: &dyn WorkloadGenerator,
    original: WarehouseConfig,
    setup: KwoSetup,
    observe_hours: u64,
    total_hours: u64,
    seed: u64,
) -> KwoRun {
    let warehouse = workload.name().to_uppercase() + "_WH";
    let mut account = Account::new();
    let wh = account.create_warehouse(&warehouse, original);
    let mut sim = Simulator::new(account);
    for q in generate_trace(workload, 0, total_hours * HOUR_MS, seed) {
        sim.submit_query(wh, q);
    }
    let mut kwo = Orchestrator::new(seed ^ 0x4B45_4542);
    kwo.manage(&sim, &warehouse, setup);
    kwo.observe_until(&mut sim, observe_hours * HOUR_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, total_hours * HOUR_MS);
    KwoRun {
        sim,
        kwo,
        warehouse,
        wh,
        onboard_at: observe_hours * HOUR_MS,
    }
}

/// Runs `workload` with a static configuration and no optimizer; returns
/// the simulator after `total_days`.
pub fn run_static(
    workload: &dyn WorkloadGenerator,
    original: WarehouseConfig,
    total_days: u64,
    seed: u64,
) -> (Simulator, WarehouseId, String) {
    let warehouse = workload.name().to_uppercase() + "_WH";
    let mut account = Account::new();
    let wh = account.create_warehouse(&warehouse, original);
    let mut sim = Simulator::new(account);
    for q in generate_trace(workload, 0, total_days * DAY_MS, seed) {
        sim.submit_query(wh, q);
    }
    sim.run_until(total_days * DAY_MS);
    (sim, wh, warehouse)
}

/// Daily billed credits for a warehouse over `[0, days)`, including credits
/// still accrued in an open session on the final day.
pub fn daily_credits(sim: &Simulator, warehouse: &str, wh: WarehouseId, days: u64) -> Vec<f64> {
    let hourly = sim.account().ledger().warehouse(warehouse);
    let mut by_day: Vec<f64> = (0..days)
        .map(|d| hourly.range_total(d * 24, (d + 1) * 24))
        .collect();
    // Open-session residue lands on the last day so totals stay honest.
    let open = sim.account().warehouse(wh).open_session_credits(sim.now());
    if let Some(last) = by_day.last_mut() {
        *last += open;
    }
    by_day
}

/// Daily p99 end-to-end latencies (ms) over `[0, days)`; days with no
/// completions report 0.
pub fn daily_p99_latency(records: &[QueryRecord], days: u64) -> Vec<f64> {
    (0..days)
        .map(|d| {
            let lats: Vec<f64> = records
                .iter()
                .filter(|r| r.end / DAY_MS == d)
                .map(|r| r.total_latency_ms() as f64)
                .collect();
            telemetry::percentile(&lats, 99.0)
        })
        .collect()
}

/// Mean of a slice (0 for empty).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
