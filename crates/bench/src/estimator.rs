//! Per-template execution-time estimation for the Fig. 5 experiment.
//!
//! Fig. 5 asks the cost model to "estimate the actual costs ... *without
//! running any queries*". The replay engine consumes query records with
//! observed execution times; for an unexecuted workload those must
//! themselves be estimated from history. This estimator fills in each
//! query's expected execution time from the per-template mean observed
//! during the training period (with a global fallback), which is exactly
//! the "identical or at least similar queries" lookup of §5.2.

use cdw_sim::{QueryRecord, QuerySpec, SimTime, WarehouseConfig, WarehouseSize};
use costmodel::LatencyScaler;
use std::collections::BTreeMap;

/// Mean observed execution time per template, normalized to one reference
/// size using the latency scaler.
#[derive(Debug, Clone)]
pub struct TemplateExecEstimator {
    reference: WarehouseSize,
    per_template_ms: BTreeMap<u64, f64>,
    global_ms: f64,
}

impl TemplateExecEstimator {
    /// Trains from history, normalizing every observation to `reference`
    /// size via `scaler`.
    pub fn train(
        records: &[QueryRecord],
        scaler: &LatencyScaler,
        reference: WarehouseSize,
    ) -> Self {
        let mut sums: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
        let mut total = 0.0;
        let mut count = 0usize;
        for r in records {
            let exec = r.execution_ms();
            if exec == 0 {
                continue;
            }
            let at_ref = scaler.scale_execution_ms(r.template_hash, exec as f64, r.size, reference);
            let e = sums.entry(r.template_hash).or_insert((0.0, 0));
            e.0 += at_ref;
            e.1 += 1;
            total += at_ref;
            count += 1;
        }
        Self {
            reference,
            per_template_ms: sums
                .into_iter()
                .map(|(k, (s, n))| (k, s / n as f64))
                .collect(),
            global_ms: if count > 0 {
                total / count as f64
            } else {
                10_000.0
            },
        }
    }

    /// Expected execution time (ms) of `template` at `size`.
    pub fn estimate_ms(&self, template: u64, size: WarehouseSize, scaler: &LatencyScaler) -> f64 {
        let at_ref = self
            .per_template_ms
            .get(&template)
            .copied()
            .unwrap_or(self.global_ms);
        scaler.scale_execution_ms(template, at_ref, self.reference, size)
    }

    /// Builds *predicted* query records for an unexecuted workload: arrivals
    /// and templates from the specs, execution times from history. These
    /// feed the replay engine to produce the Fig. 5 estimate.
    pub fn predict_records(
        &self,
        specs: &[QuerySpec],
        config: &WarehouseConfig,
        scaler: &LatencyScaler,
        warehouse: &str,
    ) -> Vec<QueryRecord> {
        specs
            .iter()
            .map(|s| {
                let exec = self
                    .estimate_ms(s.template_hash, config.size, scaler)
                    .round()
                    .max(1.0) as SimTime;
                QueryRecord {
                    query_id: s.id,
                    warehouse: warehouse.to_string(),
                    size: config.size,
                    cluster_count: 1,
                    text_hash: s.text_hash,
                    template_hash: s.template_hash,
                    arrival: s.arrival,
                    start: s.arrival,
                    end: s.arrival + exec,
                    bytes_scanned: s.bytes_scanned,
                    cache_warm_fraction: 0.5,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(template: u64, size: WarehouseSize, exec: SimTime) -> QueryRecord {
        QueryRecord {
            query_id: 0,
            warehouse: "WH".into(),
            size,
            cluster_count: 1,
            text_hash: 0,
            template_hash: template,
            arrival: 0,
            start: 0,
            end: exec,
            bytes_scanned: 0,
            cache_warm_fraction: 1.0,
        }
    }

    #[test]
    fn estimates_template_mean_at_reference_size() {
        let recs = vec![
            rec(1, WarehouseSize::XSmall, 10_000),
            rec(1, WarehouseSize::XSmall, 14_000),
        ];
        let scaler = LatencyScaler::default();
        let est = TemplateExecEstimator::train(&recs, &scaler, WarehouseSize::XSmall);
        let e = est.estimate_ms(1, WarehouseSize::XSmall, &scaler);
        assert!((e - 12_000.0).abs() < 1.0);
    }

    #[test]
    fn scales_across_sizes_with_default_slope() {
        let recs = vec![rec(1, WarehouseSize::XSmall, 16_000)];
        let scaler = LatencyScaler::default();
        let est = TemplateExecEstimator::train(&recs, &scaler, WarehouseSize::XSmall);
        let at_medium = est.estimate_ms(1, WarehouseSize::Medium, &scaler);
        assert!((at_medium - 4_000.0).abs() < 1.0);
    }

    #[test]
    fn unknown_template_uses_global_mean() {
        let recs = vec![
            rec(1, WarehouseSize::XSmall, 10_000),
            rec(2, WarehouseSize::XSmall, 30_000),
        ];
        let scaler = LatencyScaler::default();
        let est = TemplateExecEstimator::train(&recs, &scaler, WarehouseSize::XSmall);
        let e = est.estimate_ms(999, WarehouseSize::XSmall, &scaler);
        assert!((e - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn predicted_records_preserve_arrivals() {
        let scaler = LatencyScaler::default();
        let est = TemplateExecEstimator::train(
            &[rec(1, WarehouseSize::XSmall, 5_000)],
            &scaler,
            WarehouseSize::XSmall,
        );
        let specs = vec![QuerySpec::builder(7)
            .template_hash(1)
            .arrival_ms(42_000)
            .build()];
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall);
        let out = est.predict_records(&specs, &cfg, &scaler, "WH");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].arrival, 42_000);
        assert_eq!(out[0].end - out[0].start, 5_000);
    }
}
