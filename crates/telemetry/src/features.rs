//! Windowed feature extraction over query history.
//!
//! The smart models (§6) and the cost model's parameter estimators (§5.2)
//! both consume aggregate views of telemetry: arrival rates, latency
//! percentiles, queueing, concurrency. This module computes those aggregates
//! over fixed windows ("mini-windows" in the paper's cluster-predictor
//! description).

use cdw_sim::{QueryRecord, SimTime};
use serde::{Deserialize, Serialize};

/// Aggregate features of one time window for one warehouse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowFeatures {
    pub window_start: SimTime,
    pub window_ms: SimTime,
    /// Queries arriving in the window.
    pub arrivals: usize,
    /// Arrivals per hour.
    pub arrival_rate_per_hour: f64,
    /// Mean end-to-end latency (ms) of queries completing in the window.
    pub mean_latency_ms: f64,
    /// 99th-percentile end-to-end latency (ms).
    pub p99_latency_ms: f64,
    /// Mean queue wait (ms).
    pub mean_queue_ms: f64,
    /// Total bytes scanned.
    pub bytes_scanned: u64,
    /// Mean cluster count observed at query start.
    pub mean_cluster_count: f64,
    /// Average number of concurrently executing queries (demand pressure).
    pub mean_concurrency: f64,
}

impl WindowFeatures {
    /// An empty window (no queries).
    pub fn empty(window_start: SimTime, window_ms: SimTime) -> Self {
        Self {
            window_start,
            window_ms,
            arrivals: 0,
            arrival_rate_per_hour: 0.0,
            mean_latency_ms: 0.0,
            p99_latency_ms: 0.0,
            mean_queue_ms: 0.0,
            bytes_scanned: 0,
            mean_cluster_count: 0.0,
            mean_concurrency: 0.0,
        }
    }

    /// Computes features for `[window_start, window_start + window_ms)` from
    /// records overlapping the window. `records` may be a superset; only
    /// relevant rows are used (arrivals for rate; completions for latency).
    pub fn compute(records: &[&QueryRecord], window_start: SimTime, window_ms: SimTime) -> Self {
        assert!(window_ms > 0, "window must have positive length");
        let window_end = window_start + window_ms;
        let arrived: Vec<&&QueryRecord> = records
            .iter()
            .filter(|r| (window_start..window_end).contains(&r.arrival))
            .collect();
        let completed: Vec<&&QueryRecord> = records
            .iter()
            .filter(|r| (window_start..window_end).contains(&r.end))
            .collect();

        let mut out = Self::empty(window_start, window_ms);
        out.arrivals = arrived.len();
        out.arrival_rate_per_hour = arrived.len() as f64 * 3_600_000.0 / window_ms as f64;
        out.bytes_scanned = arrived.iter().map(|r| r.bytes_scanned).sum();

        if !completed.is_empty() {
            let lats: Vec<f64> = completed
                .iter()
                .map(|r| r.total_latency_ms() as f64)
                .collect();
            out.mean_latency_ms = lats.iter().sum::<f64>() / lats.len() as f64;
            out.p99_latency_ms = percentile(&lats, 99.0);
            out.mean_queue_ms = completed.iter().map(|r| r.queued_ms() as f64).sum::<f64>()
                / completed.len() as f64;
            out.mean_cluster_count = completed
                .iter()
                .map(|r| r.cluster_count as f64)
                .sum::<f64>()
                / completed.len() as f64;
        }

        // Mean concurrency: total busy time overlapping the window divided
        // by the window length.
        let busy_ms: u64 = records
            .iter()
            .filter(|r| r.start < window_end && r.end > window_start)
            .map(|r| r.end.min(window_end) - r.start.max(window_start))
            .sum();
        out.mean_concurrency = busy_ms as f64 / window_ms as f64;
        out
    }

    /// Splits `[start, end)` into consecutive windows and computes features
    /// for each.
    pub fn series(
        records: &[QueryRecord],
        start: SimTime,
        end: SimTime,
        window_ms: SimTime,
    ) -> Vec<WindowFeatures> {
        assert!(window_ms > 0 && end >= start);
        let refs: Vec<&QueryRecord> = records.iter().collect();
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            out.push(Self::compute(&refs, t, window_ms));
            t += window_ms;
        }
        out
    }
}

/// Nearest-rank percentile (p in [0, 100]) of unsorted data. Returns 0.0 on
/// empty input.
///
/// Sorting uses [`f64::total_cmp`], so NaNs (which a degenerate window can
/// produce) order after every finite value instead of panicking; low/mid
/// percentiles of NaN-containing data stay finite.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::WarehouseSize;

    fn rec(id: u64, arrival: SimTime, start: SimTime, end: SimTime) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: "WH".into(),
            size: WarehouseSize::Small,
            cluster_count: 2,
            text_hash: id,
            template_hash: 0,
            arrival,
            start,
            end,
            bytes_scanned: 100,
            cache_warm_fraction: 0.5,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_of_single_value() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
    }

    #[test]
    fn percentile_empty_is_zero_for_any_p() {
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 100.0), 0.0);
    }

    #[test]
    fn percentile_tolerates_nan_input() {
        // NaNs order after every finite value under total_cmp: low and mid
        // percentiles stay finite, only the top ranks see the NaN.
        let v = [1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert!(percentile(&v, 100.0).is_nan());
        assert!(percentile(&[f64::NAN], 50.0).is_nan());
    }

    #[test]
    fn percentile_boundaries_pick_extremes() {
        let v = [5.0, -3.0, 9.0, 1.0];
        assert_eq!(percentile(&v, 0.0), -3.0);
        assert_eq!(percentile(&v, 100.0), 9.0);
    }

    #[test]
    fn window_counts_arrivals_and_rates() {
        let recs: Vec<QueryRecord> = (0..6)
            .map(|i| rec(i, i * 10_000, i * 10_000, i * 10_000 + 5_000))
            .collect();
        let refs: Vec<&QueryRecord> = recs.iter().collect();
        let f = WindowFeatures::compute(&refs, 0, 60_000);
        assert_eq!(f.arrivals, 6);
        assert!((f.arrival_rate_per_hour - 360.0).abs() < 1e-9);
        assert_eq!(f.bytes_scanned, 600);
    }

    #[test]
    fn latency_stats_use_completions() {
        let recs = [
            rec(1, 0, 1_000, 11_000), // latency 11 s, queued 1 s
            rec(2, 0, 3_000, 23_000), // latency 23 s, queued 3 s
        ];
        let refs: Vec<&QueryRecord> = recs.iter().collect();
        let f = WindowFeatures::compute(&refs, 0, 60_000);
        assert!((f.mean_latency_ms - 17_000.0).abs() < 1e-9);
        assert!((f.mean_queue_ms - 2_000.0).abs() < 1e-9);
        assert_eq!(f.p99_latency_ms, 23_000.0);
        assert_eq!(f.mean_cluster_count, 2.0);
    }

    #[test]
    fn concurrency_integrates_overlap() {
        // Two queries each busy for half the window: mean concurrency 1.0.
        let recs = [rec(1, 0, 0, 30_000), rec(2, 0, 30_000, 60_000)];
        let refs: Vec<&QueryRecord> = recs.iter().collect();
        let f = WindowFeatures::compute(&refs, 0, 60_000);
        assert!((f.mean_concurrency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrency_clips_to_window() {
        // A query spanning far beyond the window contributes only its overlap.
        let recs = [rec(1, 0, 0, 600_000)];
        let refs: Vec<&QueryRecord> = recs.iter().collect();
        let f = WindowFeatures::compute(&refs, 0, 60_000);
        assert!((f.mean_concurrency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn series_tiles_the_range() {
        let recs: Vec<QueryRecord> = (0..10)
            .map(|i| rec(i, i * 60_000, i * 60_000, i * 60_000 + 1_000))
            .collect();
        let series = WindowFeatures::series(&recs, 0, 600_000, 60_000);
        assert_eq!(series.len(), 10);
        assert!(series.iter().all(|w| w.arrivals == 1));
    }

    #[test]
    fn empty_window_is_all_zero() {
        let f = WindowFeatures::compute(&[], 0, 60_000);
        assert_eq!(f, WindowFeatures::empty(0, 60_000));
    }
}
