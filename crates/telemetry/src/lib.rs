//! The telemetry metadata pipeline.
//!
//! KWO trains exclusively on *performance telemetry metadata* — query
//! history and billing history — and, per the paper's security criterion
//! (C6), never sees query text or customer data: "even query texts and
//! usernames ... must be securely hashed". This crate is that boundary:
//!
//! * [`hashing`] — query-text and template hashing (the only representation
//!   that crosses into the learning stack);
//! * [`store`] — time-indexed stores for query and billing history, the
//!   simulator-side equivalent of Snowflake's ACCOUNT_USAGE views;
//! * [`fetcher`] — the periodic metadata pull of Algorithm 1 line 14, which
//!   itself costs a small number of credits (the overhead measured in the
//!   paper's Fig. 6);
//! * [`features`] — windowed aggregate features consumed by the smart
//!   models and the cost model's parameter estimators.

pub mod features;
pub mod fetcher;
pub mod hashing;
pub mod store;

pub use features::{percentile, WindowFeatures};
pub use fetcher::{FetchError, FetchStats, TelemetryFetcher};
pub use hashing::{hash_query_template, hash_query_text, strip_literals};
pub use store::TelemetryStore;
