//! Time-indexed telemetry stores: the query history and billing history the
//! data-learning platform trains on (§6.1).

use cdw_sim::{HourlyCredits, QueryRecord, SimTime, WarehouseEventRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulated telemetry for one account, indexed for the access patterns
/// the learning stack needs: per-warehouse, time-windowed scans.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TelemetryStore {
    /// Query history per warehouse, kept sorted by completion time.
    queries: BTreeMap<String, Vec<QueryRecord>>,
    /// Billing history per warehouse (hourly credits).
    billing: BTreeMap<String, HourlyCredits>,
    /// Warehouse lifecycle events per warehouse, sorted by time.
    events: BTreeMap<String, Vec<WarehouseEventRecord>>,
    /// Completion time of the newest query record ingested.
    high_watermark: SimTime,
    /// Time of the last successful fetch into this store, if any. Drives
    /// staleness-aware degradation in the control plane.
    last_fetch_at: Option<SimTime>,
}

impl TelemetryStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests query records (idempotence is the fetcher's responsibility;
    /// the store trusts its input ordering only loosely and re-sorts).
    pub fn ingest_queries(&mut self, records: impl IntoIterator<Item = QueryRecord>) {
        let mut touched: Vec<String> = Vec::new();
        for r in records {
            self.high_watermark = self.high_watermark.max(r.end);
            if !touched.contains(&r.warehouse) {
                touched.push(r.warehouse.clone());
            }
            self.queries.entry(r.warehouse.clone()).or_default().push(r);
        }
        for wh in touched {
            if let Some(v) = self.queries.get_mut(&wh) {
                v.sort_by_key(|r| (r.end, r.query_id));
            }
        }
    }

    /// Ingests warehouse events.
    pub fn ingest_events(&mut self, records: impl IntoIterator<Item = WarehouseEventRecord>) {
        for r in records {
            self.events.entry(r.warehouse.clone()).or_default().push(r);
        }
        for v in self.events.values_mut() {
            v.sort_by_key(|r| r.at);
        }
    }

    /// Replaces the billing history of a warehouse (billing is cumulative,
    /// so each fetch supplies the authoritative snapshot).
    pub fn set_billing(&mut self, warehouse: &str, credits: HourlyCredits) {
        self.billing.insert(warehouse.to_string(), credits);
    }

    /// Completion time of the newest ingested record.
    pub fn high_watermark(&self) -> SimTime {
        self.high_watermark
    }

    /// Records a successful fetch at `now` (called by the fetcher).
    pub fn note_fetch_success(&mut self, now: SimTime) {
        self.last_fetch_at = Some(self.last_fetch_at.map_or(now, |t| t.max(now)));
    }

    /// Time of the last successful fetch, if any.
    pub fn last_fetch_at(&self) -> Option<SimTime> {
        self.last_fetch_at
    }

    /// Age of the store's data at `now`: elapsed time since the last
    /// successful fetch. A store that has never been fetched into is
    /// maximally stale (`now`).
    pub fn staleness_ms(&self, now: SimTime) -> SimTime {
        match self.last_fetch_at {
            Some(t) => now.saturating_sub(t),
            None => now,
        }
    }

    /// All query records for a warehouse, completion-ordered.
    pub fn queries(&self, warehouse: &str) -> &[QueryRecord] {
        self.queries
            .get(warehouse)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Query records completing within `[start, end)`.
    pub fn queries_in(&self, warehouse: &str, start: SimTime, end: SimTime) -> &[QueryRecord] {
        let all = self.queries(warehouse);
        let lo = all.partition_point(|r| r.end < start);
        let hi = all.partition_point(|r| r.end < end);
        &all[lo..hi]
    }

    /// Query records *arriving* within `[start, end)` (needed by the cost
    /// model's replay, which reasons about arrivals). Linear scan — arrival
    /// order differs from the stored completion order only within overlap
    /// windows, so this filters rather than re-indexing.
    pub fn queries_arriving_in(
        &self,
        warehouse: &str,
        start: SimTime,
        end: SimTime,
    ) -> Vec<&QueryRecord> {
        self.queries(warehouse)
            .iter()
            .filter(|r| (start..end).contains(&r.arrival))
            .collect()
    }

    /// Billing history of a warehouse.
    pub fn billing(&self, warehouse: &str) -> Option<&HourlyCredits> {
        self.billing.get(warehouse)
    }

    /// Warehouse events in `[start, end)`.
    pub fn events_in(
        &self,
        warehouse: &str,
        start: SimTime,
        end: SimTime,
    ) -> Vec<&WarehouseEventRecord> {
        self.events
            .get(warehouse)
            .map(|v| v.iter().filter(|e| (start..end).contains(&e.at)).collect())
            .unwrap_or_default()
    }

    /// Names of warehouses with any telemetry.
    pub fn warehouses(&self) -> impl Iterator<Item = &str> {
        self.queries.keys().map(String::as_str)
    }

    /// Total stored query records (diagnostics).
    pub fn total_queries(&self) -> usize {
        self.queries.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::WarehouseSize;

    fn rec(id: u64, wh: &str, arrival: SimTime, end: SimTime) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: wh.into(),
            size: WarehouseSize::Small,
            cluster_count: 1,
            text_hash: id,
            template_hash: 0,
            arrival,
            start: arrival,
            end,
            bytes_scanned: 0,
            cache_warm_fraction: 0.0,
        }
    }

    #[test]
    fn ingest_sorts_by_completion() {
        let mut s = TelemetryStore::new();
        s.ingest_queries(vec![rec(2, "A", 0, 500), rec(1, "A", 0, 100)]);
        let q = s.queries("A");
        assert_eq!(q[0].query_id, 1);
        assert_eq!(q[1].query_id, 2);
        assert_eq!(s.high_watermark(), 500);
    }

    #[test]
    fn windowed_scan_uses_completion_time() {
        let mut s = TelemetryStore::new();
        s.ingest_queries((0..10).map(|i| rec(i, "A", i * 10, i * 100)));
        let w = s.queries_in("A", 200, 500);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|r| (200..500).contains(&r.end)));
    }

    #[test]
    fn arrival_scan_uses_arrival_time() {
        let mut s = TelemetryStore::new();
        s.ingest_queries((0..10).map(|i| rec(i, "A", i * 10, 1_000 - i * 10)));
        let w = s.queries_arriving_in("A", 30, 60);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn warehouses_are_isolated() {
        let mut s = TelemetryStore::new();
        s.ingest_queries(vec![rec(1, "A", 0, 10), rec(2, "B", 0, 20)]);
        assert_eq!(s.queries("A").len(), 1);
        assert_eq!(s.queries("B").len(), 1);
        assert_eq!(s.queries("C").len(), 0);
        assert_eq!(s.total_queries(), 2);
    }

    #[test]
    fn billing_snapshot_replaces() {
        let mut s = TelemetryStore::new();
        let mut h = HourlyCredits::new();
        h.add(0, 1.0);
        s.set_billing("A", h.clone());
        h.add(0, 1.0);
        s.set_billing("A", h);
        assert_eq!(s.billing("A").unwrap().total(), 2.0);
    }

    #[test]
    fn incremental_ingest_maintains_order() {
        let mut s = TelemetryStore::new();
        s.ingest_queries(vec![rec(1, "A", 0, 100)]);
        s.ingest_queries(vec![rec(2, "A", 0, 50)]);
        let ends: Vec<SimTime> = s.queries("A").iter().map(|r| r.end).collect();
        assert_eq!(ends, vec![50, 100]);
    }
}
