//! Time-indexed telemetry stores: the query history and billing history the
//! data-learning platform trains on (§6.1).

use cdw_sim::{HourlyCredits, QueryRecord, SimTime, WarehouseEventRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulated telemetry for one account, indexed for the access patterns
/// the learning stack needs: per-warehouse, time-windowed scans.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TelemetryStore {
    /// Query history per warehouse, kept sorted by completion time.
    queries: BTreeMap<String, Vec<QueryRecord>>,
    /// Billing history per warehouse (hourly credits).
    billing: BTreeMap<String, HourlyCredits>,
    /// Warehouse lifecycle events per warehouse, sorted by time.
    events: BTreeMap<String, Vec<WarehouseEventRecord>>,
    /// Completion time of the newest query record ingested.
    high_watermark: SimTime,
    /// Time of the last successful fetch into this store, if any. Drives
    /// staleness-aware degradation in the control plane.
    last_fetch_at: Option<SimTime>,
}

impl TelemetryStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests query records (idempotence is the fetcher's responsibility;
    /// the store trusts its input ordering only loosely and re-sorts).
    ///
    /// The hot path is the fetcher's: records arrive completion-ordered per
    /// warehouse, so appends stay sorted and nothing is re-sorted or
    /// cloned. Only a warehouse whose append actually broke the order pays
    /// a sort.
    pub fn ingest_queries(&mut self, records: impl IntoIterator<Item = QueryRecord>) {
        let mut dirty: Vec<String> = Vec::new();
        for r in records {
            self.high_watermark = self.high_watermark.max(r.end);
            if let Some(v) = self.queries.get_mut(&r.warehouse) {
                let breaks_order = v
                    .last()
                    .is_some_and(|last| (last.end, last.query_id) > (r.end, r.query_id));
                if breaks_order && !dirty.contains(&r.warehouse) {
                    dirty.push(r.warehouse.clone());
                }
                v.push(r);
            } else {
                self.queries.insert(r.warehouse.clone(), vec![r]);
            }
        }
        for wh in dirty {
            if let Some(v) = self.queries.get_mut(&wh) {
                v.sort_by_key(|r| (r.end, r.query_id));
            }
        }
    }

    /// Ingests warehouse events. Same sorted-append fast path as
    /// [`TelemetryStore::ingest_queries`]: only a warehouse whose vector
    /// actually went out of time order is re-sorted.
    pub fn ingest_events(&mut self, records: impl IntoIterator<Item = WarehouseEventRecord>) {
        let mut dirty: Vec<String> = Vec::new();
        for r in records {
            if let Some(v) = self.events.get_mut(&r.warehouse) {
                if v.last().is_some_and(|last| last.at > r.at) && !dirty.contains(&r.warehouse) {
                    dirty.push(r.warehouse.clone());
                }
                v.push(r);
            } else {
                self.events.insert(r.warehouse.clone(), vec![r]);
            }
        }
        for wh in dirty {
            if let Some(v) = self.events.get_mut(&wh) {
                v.sort_by_key(|r| r.at);
            }
        }
    }

    /// Replaces the billing history of a warehouse (billing is cumulative,
    /// so each fetch supplies the authoritative snapshot).
    pub fn set_billing(&mut self, warehouse: &str, credits: HourlyCredits) {
        self.billing.insert(warehouse.to_string(), credits);
    }

    /// Borrowing variant of [`TelemetryStore::set_billing`] for batch
    /// refreshes straight off the ledger: skips the clone entirely when the
    /// snapshot is unchanged since the last fetch (the common case for
    /// suspended warehouses) and reuses the existing key otherwise.
    pub fn update_billing(&mut self, warehouse: &str, credits: &HourlyCredits) {
        match self.billing.get_mut(warehouse) {
            Some(cur) => {
                if cur != credits {
                    cur.clone_from(credits);
                }
            }
            None => {
                self.billing.insert(warehouse.to_string(), credits.clone());
            }
        }
    }

    /// Completion time of the newest ingested record.
    pub fn high_watermark(&self) -> SimTime {
        self.high_watermark
    }

    /// Records a successful fetch at `now` (called by the fetcher).
    pub fn note_fetch_success(&mut self, now: SimTime) {
        self.last_fetch_at = Some(self.last_fetch_at.map_or(now, |t| t.max(now)));
    }

    /// Time of the last successful fetch, if any.
    pub fn last_fetch_at(&self) -> Option<SimTime> {
        self.last_fetch_at
    }

    /// Age of the store's data at `now`: elapsed time since the last
    /// successful fetch. A store that has never been fetched into is
    /// maximally stale (`now`).
    pub fn staleness_ms(&self, now: SimTime) -> SimTime {
        match self.last_fetch_at {
            Some(t) => now.saturating_sub(t),
            None => now,
        }
    }

    /// All query records for a warehouse, completion-ordered.
    pub fn queries(&self, warehouse: &str) -> &[QueryRecord] {
        self.queries
            .get(warehouse)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Query records completing within `[start, end)`.
    pub fn queries_in(&self, warehouse: &str, start: SimTime, end: SimTime) -> &[QueryRecord] {
        let all = self.queries(warehouse);
        let lo = all.partition_point(|r| r.end < start);
        let hi = all.partition_point(|r| r.end < end);
        &all[lo..hi]
    }

    /// Query records *arriving* within `[start, end)` (needed by the cost
    /// model's replay, which reasons about arrivals). Linear scan — arrival
    /// order differs from the stored completion order only within overlap
    /// windows, so this filters rather than re-indexing.
    pub fn queries_arriving_in(
        &self,
        warehouse: &str,
        start: SimTime,
        end: SimTime,
    ) -> Vec<&QueryRecord> {
        self.queries(warehouse)
            .iter()
            .filter(|r| (start..end).contains(&r.arrival))
            .collect()
    }

    /// Billing history of a warehouse.
    pub fn billing(&self, warehouse: &str) -> Option<&HourlyCredits> {
        self.billing.get(warehouse)
    }

    /// Warehouse events in `[start, end)`.
    pub fn events_in(
        &self,
        warehouse: &str,
        start: SimTime,
        end: SimTime,
    ) -> Vec<&WarehouseEventRecord> {
        self.events
            .get(warehouse)
            .map(|v| v.iter().filter(|e| (start..end).contains(&e.at)).collect())
            .unwrap_or_default()
    }

    /// Names of warehouses with any telemetry.
    pub fn warehouses(&self) -> impl Iterator<Item = &str> {
        self.queries.keys().map(String::as_str)
    }

    /// Total stored query records (diagnostics).
    pub fn total_queries(&self) -> usize {
        self.queries.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::WarehouseSize;

    fn rec(id: u64, wh: &str, arrival: SimTime, end: SimTime) -> QueryRecord {
        QueryRecord {
            query_id: id,
            warehouse: wh.into(),
            size: WarehouseSize::Small,
            cluster_count: 1,
            text_hash: id,
            template_hash: 0,
            arrival,
            start: arrival,
            end,
            bytes_scanned: 0,
            cache_warm_fraction: 0.0,
        }
    }

    #[test]
    fn ingest_sorts_by_completion() {
        let mut s = TelemetryStore::new();
        s.ingest_queries(vec![rec(2, "A", 0, 500), rec(1, "A", 0, 100)]);
        let q = s.queries("A");
        assert_eq!(q[0].query_id, 1);
        assert_eq!(q[1].query_id, 2);
        assert_eq!(s.high_watermark(), 500);
    }

    #[test]
    fn windowed_scan_uses_completion_time() {
        let mut s = TelemetryStore::new();
        s.ingest_queries((0..10).map(|i| rec(i, "A", i * 10, i * 100)));
        let w = s.queries_in("A", 200, 500);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|r| (200..500).contains(&r.end)));
    }

    #[test]
    fn arrival_scan_uses_arrival_time() {
        let mut s = TelemetryStore::new();
        s.ingest_queries((0..10).map(|i| rec(i, "A", i * 10, 1_000 - i * 10)));
        let w = s.queries_arriving_in("A", 30, 60);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn warehouses_are_isolated() {
        let mut s = TelemetryStore::new();
        s.ingest_queries(vec![rec(1, "A", 0, 10), rec(2, "B", 0, 20)]);
        assert_eq!(s.queries("A").len(), 1);
        assert_eq!(s.queries("B").len(), 1);
        assert_eq!(s.queries("C").len(), 0);
        assert_eq!(s.total_queries(), 2);
    }

    #[test]
    fn billing_snapshot_replaces() {
        let mut s = TelemetryStore::new();
        let mut h = HourlyCredits::new();
        h.add(0, 1.0);
        s.set_billing("A", h.clone());
        h.add(0, 1.0);
        s.set_billing("A", h);
        assert_eq!(s.billing("A").unwrap().total(), 2.0);
    }

    #[test]
    fn update_billing_matches_set_billing_semantics() {
        let mut a = TelemetryStore::new();
        let mut b = TelemetryStore::new();
        let mut h = HourlyCredits::new();
        h.add(0, 1.0);
        a.set_billing("A", h.clone());
        b.update_billing("A", &h);
        assert_eq!(a.billing("A"), b.billing("A"));
        // Unchanged snapshot: update is a no-op but stays authoritative.
        b.update_billing("A", &h);
        assert_eq!(b.billing("A").unwrap().total(), 1.0);
        // Changed snapshot replaces, exactly like set_billing.
        h.add(3 * cdw_sim::HOUR_MS, 2.0);
        a.set_billing("A", h.clone());
        b.update_billing("A", &h);
        assert_eq!(a.billing("A"), b.billing("A"));
        assert_eq!(b.billing("A").unwrap().total(), 3.0);
    }

    #[test]
    fn out_of_order_event_ingest_is_resorted() {
        use cdw_sim::{ActionSource, WarehouseEventKind};
        let ev = |at: SimTime| WarehouseEventRecord {
            warehouse: "A".into(),
            at,
            kind: WarehouseEventKind::Resumed,
            source: ActionSource::External,
            size: WarehouseSize::Small,
            running_clusters: 1,
            auto_suspend_ms: 0,
            min_clusters: 1,
            max_clusters: 1,
            scaling_policy: Default::default(),
        };
        let mut s = TelemetryStore::new();
        s.ingest_events(vec![ev(300), ev(100), ev(200)]);
        s.ingest_events(vec![ev(150)]);
        let ats: Vec<SimTime> = s.events_in("A", 0, 1_000).iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![100, 150, 200, 300]);
    }

    #[test]
    fn incremental_ingest_maintains_order() {
        let mut s = TelemetryStore::new();
        s.ingest_queries(vec![rec(1, "A", 0, 100)]);
        s.ingest_queries(vec![rec(2, "A", 0, 50)]);
        let ends: Vec<SimTime> = s.queries("A").iter().map(|r| r.end).collect();
        assert_eq!(ends, vec![50, 100]);
    }
}
