//! Periodic telemetry fetching with overhead accounting.
//!
//! Algorithm 1 (line 14) reads telemetry every `T` hours. In production that
//! read is itself a set of metadata queries against the customer's CDW, so
//! it costs credits; §7.3 stresses that Keebo engineered this overhead to be
//! "negligibly small" by piggybacking on running warehouses and batching
//! queries. The fetcher models both the pull and its cost: every fetch
//! charges a small, per-record-batched overhead to the account's overhead
//! ledger — which is exactly the red series of Fig. 6.

use crate::store::TelemetryStore;
use cdw_sim::{Account, SimTime, TelemetryFault};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cumulative fetcher statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FetchStats {
    pub fetches: u64,
    pub records_fetched: u64,
    pub overhead_credits: f64,
    /// Fetch attempts that failed outright (telemetry outage).
    pub failed_fetches: u64,
    /// Fetches that succeeded but delivered only part of the new records.
    pub partial_fetches: u64,
}

/// A telemetry fetch attempt that produced no usable data. The cursors are
/// unmoved, so the next attempt re-reads from the same position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchError {
    /// The metadata queries timed out or the service was unreachable.
    Outage,
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::Outage => write!(f, "telemetry fetch failed: service outage"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Pulls telemetry from an [`Account`] into a [`TelemetryStore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryFetcher {
    /// Index of the next unconsumed query record in the account stream.
    query_cursor: usize,
    /// Index of the next unconsumed event record.
    event_cursor: usize,
    /// Fixed credit cost per fetch round-trip (metadata queries batched
    /// into one, per §7.3).
    pub base_cost_per_fetch: f64,
    /// Marginal credit cost per 1000 records transferred.
    pub cost_per_1k_records: f64,
    stats: FetchStats,
}

impl Default for TelemetryFetcher {
    fn default() -> Self {
        Self {
            query_cursor: 0,
            event_cursor: 0,
            // Chosen so that a typical hourly fetch costs ~0.003 credits —
            // two orders of magnitude below typical hourly usage, matching
            // Fig. 6's "negligibly small" overhead.
            base_cost_per_fetch: 0.002,
            cost_per_1k_records: 0.001,
            stats: FetchStats::default(),
        }
    }
}

impl TelemetryFetcher {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current `(query, event)` stream cursors: indexes of the next
    /// unconsumed records in the account's append-only telemetry streams.
    /// Used by crash recovery to re-ingest exactly the delivered ranges.
    pub fn cursors(&self) -> (usize, usize) {
        (self.query_cursor, self.event_cursor)
    }

    /// Fetches new records from the account into the store, charging
    /// overhead credits at `now`. Returns the number of new query records
    /// ingested.
    ///
    /// `fault` is what the control plane did to this attempt (callers probe
    /// it via `Simulator::poll_telemetry_fault`; pass
    /// [`TelemetryFault::None`] when fetching outside a simulator):
    ///
    /// * `Outage` — the metadata queries failed. The base round-trip cost is
    ///   still charged (the queries ran and timed out), the cursors stay
    ///   put, and the store keeps its previous staleness.
    /// * `Partial { keep_fraction }` — only a prefix of the new records
    ///   arrives; the cursors advance past exactly what was delivered, so
    ///   the remainder comes on a later fetch. The store still counts this
    ///   as a successful (fresh) fetch — data is delayed, not lost.
    pub fn fetch(
        &mut self,
        account: &mut Account,
        store: &mut TelemetryStore,
        now: SimTime,
        fault: TelemetryFault,
    ) -> Result<usize, FetchError> {
        if let TelemetryFault::Outage = fault {
            account.charge_overhead(now, self.base_cost_per_fetch);
            keebo_obs::global().counter("telemetry.fetch.outages").inc();
            self.stats.failed_fetches += 1;
            self.stats.overhead_credits += self.base_cost_per_fetch;
            return Err(FetchError::Outage);
        }

        let queries = &account.query_records()[self.query_cursor..];
        let events = &account.event_records()[self.event_cursor..];
        let mut n_queries = queries.len();
        let mut n_events = events.len();
        if let TelemetryFault::Partial { keep_fraction } = fault {
            let f = keep_fraction.clamp(0.0, 1.0);
            n_queries = (n_queries as f64 * f).floor() as usize;
            n_events = (n_events as f64 * f).floor() as usize;
            keebo_obs::global()
                .counter("telemetry.fetch.partials")
                .inc();
            self.stats.partial_fetches += 1;
        }

        store.ingest_queries(queries[..n_queries].iter().cloned());
        store.ingest_events(events[..n_events].iter().cloned());
        self.query_cursor += n_queries;
        self.event_cursor += n_events;

        // Billing snapshots are authoritative per fetch. Walk the ledger
        // by reference: no name list, no per-warehouse history clone unless
        // the snapshot actually changed since the last fetch.
        for (name, credits) in account.ledger().iter_warehouses() {
            store.update_billing(name, credits);
        }

        let records = (n_queries + n_events) as u64;
        let cost = self.base_cost_per_fetch + self.cost_per_1k_records * records as f64 / 1000.0;
        account.charge_overhead(now, cost);

        self.stats.fetches += 1;
        self.stats.records_fetched += records;
        self.stats.overhead_credits += cost;
        store.note_fetch_success(now);
        Ok(n_queries)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FetchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{
        ActionSource, QuerySpec, Simulator, WarehouseCommand, WarehouseConfig, WarehouseSize,
        HOUR_MS,
    };

    fn sim_with_queries(n: u64) -> Simulator {
        let mut acc = Account::new();
        let id = acc.create_warehouse(
            "WH",
            WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(60),
        );
        let mut sim = Simulator::new(acc);
        for i in 0..n {
            sim.submit_query(
                id,
                QuerySpec::builder(i)
                    .work_ms_xs(5_000.0)
                    .arrival_ms(i * 10_000)
                    .build(),
            );
        }
        sim.run_until(HOUR_MS);
        sim
    }

    #[test]
    fn fetch_moves_all_records_once() {
        let mut sim = sim_with_queries(5);
        let mut store = TelemetryStore::new();
        let mut fetcher = TelemetryFetcher::new();
        let n = fetcher
            .fetch(sim.account_mut(), &mut store, HOUR_MS, TelemetryFault::None)
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(store.total_queries(), 5);
        // Second fetch with nothing new.
        let n2 = fetcher
            .fetch(sim.account_mut(), &mut store, HOUR_MS, TelemetryFault::None)
            .unwrap();
        assert_eq!(n2, 0);
        assert_eq!(store.total_queries(), 5, "no duplicates");
    }

    #[test]
    fn fetch_charges_overhead() {
        let mut sim = sim_with_queries(3);
        let mut store = TelemetryStore::new();
        let mut fetcher = TelemetryFetcher::new();
        fetcher
            .fetch(sim.account_mut(), &mut store, HOUR_MS, TelemetryFault::None)
            .unwrap();
        let overhead = sim.account().ledger().overhead().total();
        assert!(overhead > 0.0);
        assert!(
            overhead < 0.01,
            "overhead {overhead} should be negligible (Fig. 6)"
        );
        assert_eq!(fetcher.stats().overhead_credits, overhead);
        assert_eq!(fetcher.stats().fetches, 1);
    }

    #[test]
    fn incremental_fetch_picks_up_new_work() {
        let mut sim = sim_with_queries(2);
        let mut store = TelemetryStore::new();
        let mut fetcher = TelemetryFetcher::new();
        fetcher
            .fetch(sim.account_mut(), &mut store, HOUR_MS, TelemetryFault::None)
            .unwrap();
        // More work arrives.
        let wh = sim.account().warehouse_id("WH").unwrap();
        sim.submit_query(
            wh,
            QuerySpec::builder(100)
                .work_ms_xs(1_000.0)
                .arrival_ms(HOUR_MS + 1)
                .build(),
        );
        sim.run_until(2 * HOUR_MS);
        let n = fetcher
            .fetch(
                sim.account_mut(),
                &mut store,
                2 * HOUR_MS,
                TelemetryFault::None,
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(store.total_queries(), 3);
    }

    #[test]
    fn billing_snapshot_lands_in_store() {
        let mut sim = sim_with_queries(2);
        let mut store = TelemetryStore::new();
        let mut fetcher = TelemetryFetcher::new();
        fetcher
            .fetch(sim.account_mut(), &mut store, HOUR_MS, TelemetryFault::None)
            .unwrap();
        let billed = store.billing("WH").map(|h| h.total()).unwrap_or(0.0);
        assert!(billed > 0.0, "billing history present");
    }

    #[test]
    fn events_flow_through() {
        let mut sim = sim_with_queries(1);
        let wh = sim.account().warehouse_id("WH").unwrap();
        sim.alter_warehouse(
            wh,
            WarehouseCommand::SetSize(WarehouseSize::Small),
            ActionSource::External,
        )
        .unwrap();
        let mut store = TelemetryStore::new();
        let mut fetcher = TelemetryFetcher::new();
        fetcher
            .fetch(sim.account_mut(), &mut store, HOUR_MS, TelemetryFault::None)
            .unwrap();
        let events = store.events_in("WH", 0, 2 * HOUR_MS);
        assert!(
            events.iter().any(|e| e.source == ActionSource::External),
            "external resize event visible to monitoring"
        );
    }

    #[test]
    fn outage_leaves_cursors_unmoved_but_charges_base_cost() {
        let mut sim = sim_with_queries(4);
        let mut store = TelemetryStore::new();
        let mut fetcher = TelemetryFetcher::new();
        let err = fetcher
            .fetch(
                sim.account_mut(),
                &mut store,
                HOUR_MS,
                TelemetryFault::Outage,
            )
            .unwrap_err();
        assert_eq!(err, FetchError::Outage);
        assert_eq!(store.total_queries(), 0);
        assert_eq!(store.last_fetch_at(), None);
        assert_eq!(fetcher.stats().failed_fetches, 1);
        let overhead = sim.account().ledger().overhead().total();
        assert!(overhead > 0.0, "attempt still billed");
        // Retry succeeds and picks up everything.
        let n = fetcher
            .fetch(
                sim.account_mut(),
                &mut store,
                2 * HOUR_MS,
                TelemetryFault::None,
            )
            .unwrap();
        assert_eq!(n, 4);
        assert_eq!(store.last_fetch_at(), Some(2 * HOUR_MS));
    }

    #[test]
    fn partial_fetch_delivers_prefix_and_rest_later() {
        let mut sim = sim_with_queries(10);
        let mut store = TelemetryStore::new();
        let mut fetcher = TelemetryFetcher::new();
        let n = fetcher
            .fetch(
                sim.account_mut(),
                &mut store,
                HOUR_MS,
                TelemetryFault::Partial { keep_fraction: 0.5 },
            )
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(store.total_queries(), 5);
        assert_eq!(fetcher.stats().partial_fetches, 1);
        // Undelivered records arrive on the next clean fetch, no duplicates.
        let n2 = fetcher
            .fetch(
                sim.account_mut(),
                &mut store,
                2 * HOUR_MS,
                TelemetryFault::None,
            )
            .unwrap();
        assert_eq!(n2, 5);
        assert_eq!(store.total_queries(), 10);
    }

    #[test]
    fn staleness_grows_across_outages_and_resets_on_success() {
        let mut sim = sim_with_queries(2);
        let mut store = TelemetryStore::new();
        let mut fetcher = TelemetryFetcher::new();
        fetcher
            .fetch(sim.account_mut(), &mut store, HOUR_MS, TelemetryFault::None)
            .unwrap();
        assert_eq!(store.staleness_ms(HOUR_MS), 0);
        for k in 1..=3 {
            let at = HOUR_MS + k * HOUR_MS;
            assert!(fetcher
                .fetch(sim.account_mut(), &mut store, at, TelemetryFault::Outage)
                .is_err());
            assert_eq!(store.staleness_ms(at), k * HOUR_MS);
        }
        fetcher
            .fetch(
                sim.account_mut(),
                &mut store,
                5 * HOUR_MS,
                TelemetryFault::None,
            )
            .unwrap();
        assert_eq!(store.staleness_ms(5 * HOUR_MS), 0);
    }
}
