//! Query-text hashing (the C6 security boundary).
//!
//! The paper (§5.2 fn. 4): "we use the hash value of the query text and the
//! hash value of the query template (i.e., query text stripped of all
//! constants) to find identical and similar queries". This module provides
//! both: FNV-1a over the raw text, and FNV-1a over a normalized template in
//! which string and numeric literals are replaced by placeholders.

/// FNV-1a 64-bit hash of the full query text.
pub fn hash_query_text(text: &str) -> u64 {
    fnv1a(text.as_bytes())
}

/// FNV-1a 64-bit hash of the query template ([`strip_literals`] applied
/// first), so queries differing only in constants collide.
pub fn hash_query_template(text: &str) -> u64 {
    fnv1a(strip_literals(text).as_bytes())
}

/// Replaces literals with placeholders: single-quoted strings become `'?'`,
/// numeric literals become `?`. Whitespace runs collapse and keywords are
/// uppercased so formatting differences do not split templates.
pub fn strip_literals(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    let mut last_was_space = false;
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // Consume until the closing quote (handling '' escapes).
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                out.push_str("'?'");
                last_was_space = false;
            }
            '0'..='9' => {
                // Only treat as a literal when not part of an identifier.
                let prev_ident = out
                    .chars()
                    .last()
                    .is_some_and(|p| p.is_ascii_alphanumeric() || p == '_');
                if prev_ident {
                    out.push(c);
                } else {
                    while let Some(&n) = chars.peek() {
                        if n.is_ascii_digit() || n == '.' || n == 'e' || n == 'E' {
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push('?');
                }
                last_was_space = false;
            }
            c if c.is_whitespace() => {
                if !last_was_space && !out.is_empty() {
                    out.push(' ');
                    last_was_space = true;
                }
            }
            c => {
                out.push(c.to_ascii_uppercase());
                last_was_space = false;
            }
        }
    }
    out.trim_end().to_string()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_hashes_identically() {
        assert_eq!(hash_query_text("SELECT 1"), hash_query_text("SELECT 1"));
        assert_ne!(hash_query_text("SELECT 1"), hash_query_text("SELECT 2"));
    }

    #[test]
    fn templates_collapse_numeric_literals() {
        let a = "SELECT * FROM orders WHERE amount > 100";
        let b = "SELECT * FROM orders WHERE amount > 250";
        assert_ne!(hash_query_text(a), hash_query_text(b));
        assert_eq!(hash_query_template(a), hash_query_template(b));
    }

    #[test]
    fn templates_collapse_string_literals() {
        let a = "SELECT * FROM users WHERE region = 'emea'";
        let b = "SELECT * FROM users WHERE region = 'apac'";
        assert_eq!(hash_query_template(a), hash_query_template(b));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_literal() {
        let a = "SELECT 'it''s' FROM t WHERE x = 5";
        let s = strip_literals(a);
        assert_eq!(s, "SELECT '?' FROM T WHERE X = ?");
    }

    #[test]
    fn identifiers_with_digits_survive() {
        let s = strip_literals("SELECT col2 FROM t2 WHERE x = 2");
        assert_eq!(s, "SELECT COL2 FROM T2 WHERE X = ?");
    }

    #[test]
    fn whitespace_and_case_are_normalized() {
        let a = "select   *\nfrom T";
        let b = "SELECT * FROM t";
        assert_eq!(hash_query_template(a), hash_query_template(b));
    }

    #[test]
    fn different_shapes_stay_distinct() {
        let a = "SELECT a FROM t WHERE x = 1";
        let b = "SELECT b FROM t WHERE x = 1";
        assert_ne!(hash_query_template(a), hash_query_template(b));
    }

    #[test]
    fn decimal_and_scientific_literals_collapse() {
        let a = strip_literals("SELECT * FROM t WHERE x > 1.5e10");
        assert_eq!(a, "SELECT * FROM T WHERE X > ?");
    }

    #[test]
    fn fnv_matches_known_vector() {
        // Standard FNV-1a test vector: empty input yields the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        // "a" -> known value.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
