//! Table-driven boundary tests for the four customer-constraint
//! categories (§4.1) the masking layer enforces:
//!
//! - **C1 — size bounds**: `MinSize`, `MaxSize`, `NoDownsize`
//! - **C2 — suspension**: `NoSuspend`, `MinAutoSuspendMs`
//! - **C3 — cluster bounds**: `MinClusters`, `MaxClusters`
//! - **C4 — time windows**: half-open `[start, end)` hour ranges, midnight
//!   wrap, and weekday filters gating all of the above
//!
//! Every row exercises a rule exactly at a boundary value (the floor size
//! itself, the window edge millisecond, the ladder step landing on the
//! auto-suspend floor, ...) where off-by-one regressions live. The final
//! test pins the mask-never-empty guarantee across a grid of adversarial
//! rule sets.

use agent::{AgentAction, ConstraintSet, Rule, RuleEffect, TimeWindow};
use cdw_sim::{WarehouseConfig, WarehouseSize, HOUR_MS};

struct Case {
    name: &'static str,
    effect: RuleEffect,
    window: TimeWindow,
    config: WarehouseConfig,
    action: AgentAction,
    at: u64,
    allowed: bool,
}

fn cfg(size: WarehouseSize) -> WarehouseConfig {
    WarehouseConfig::new(size)
        .with_auto_suspend_secs(300)
        .with_clusters(1, 3)
}

fn run(cases: &[Case]) {
    for c in cases {
        let cs =
            ConstraintSet::new().with_rule(Rule::new(c.name, c.window.clone(), c.effect.clone()));
        assert_eq!(
            cs.allows(c.action, &c.config, c.at),
            c.allowed,
            "{}: {:?} at t={} expected allowed={}",
            c.name,
            c.action,
            c.at,
            c.allowed
        );
        // The mask must agree with `allows` for every applicable action.
        if c.action.is_applicable(&c.config) && c.action != AgentAction::NoOp {
            let mask = cs.action_mask(&c.config, c.at);
            assert_eq!(
                mask[c.action.index()],
                c.allowed,
                "{}: mask disagrees with allows() for {:?}",
                c.name,
                c.action
            );
        }
    }
}

#[test]
fn c1_size_bounds_at_boundaries() {
    run(&[
        // Downsizing *onto* the floor is legal; downsizing *from* it is not.
        Case {
            name: "min-size: land exactly on floor",
            effect: RuleEffect::MinSize(WarehouseSize::Small),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Medium),
            action: AgentAction::SizeDown,
            at: 0,
            allowed: true,
        },
        Case {
            name: "min-size: step below floor",
            effect: RuleEffect::MinSize(WarehouseSize::Small),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::SizeDown,
            at: 0,
            allowed: false,
        },
        // Upsizing *onto* the ceiling is legal; past it is not.
        Case {
            name: "max-size: land exactly on ceiling",
            effect: RuleEffect::MaxSize(WarehouseSize::Medium),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::SizeUp,
            at: 0,
            allowed: true,
        },
        Case {
            name: "max-size: step past ceiling",
            effect: RuleEffect::MaxSize(WarehouseSize::Medium),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Medium),
            action: AgentAction::SizeUp,
            at: 0,
            allowed: false,
        },
        // NoDownsize compares against the *current* size, so staying put is
        // fine and any downward step is not.
        Case {
            name: "no-downsize: same size passes",
            effect: RuleEffect::NoDownsize,
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Medium),
            action: AgentAction::ClustersUp,
            at: 0,
            allowed: true,
        },
        Case {
            name: "no-downsize: one step down blocked",
            effect: RuleEffect::NoDownsize,
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Medium),
            action: AgentAction::SizeDown,
            at: 0,
            allowed: false,
        },
    ]);
}

#[test]
fn c2_suspension_rules_at_boundaries() {
    // The ladder steps 300 s -> 120 s; a 120 s floor permits that exact
    // landing, a 121 s floor does not.
    run(&[
        Case {
            name: "no-suspend: suspend-now blocked",
            effect: RuleEffect::NoSuspend,
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::SuspendNow,
            at: 0,
            allowed: false,
        },
        Case {
            name: "no-suspend: shortening auto-suspend blocked",
            effect: RuleEffect::NoSuspend,
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::AutoSuspendDown,
            at: 0,
            allowed: false,
        },
        Case {
            name: "no-suspend: lengthening allowed",
            effect: RuleEffect::NoSuspend,
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::AutoSuspendUp,
            at: 0,
            allowed: true,
        },
        Case {
            name: "auto-suspend floor: ladder step lands exactly on floor",
            effect: RuleEffect::MinAutoSuspendMs(120_000),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small), // 300 s, steps down to 120 s
            action: AgentAction::AutoSuspendDown,
            at: 0,
            allowed: true,
        },
        Case {
            name: "auto-suspend floor: one ms above the landing",
            effect: RuleEffect::MinAutoSuspendMs(120_001),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::AutoSuspendDown,
            at: 0,
            allowed: false,
        },
    ]);
}

#[test]
fn c3_cluster_bounds_at_boundaries() {
    run(&[
        Case {
            name: "min-clusters: shrink onto the minimum",
            effect: RuleEffect::MinClusters(2),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small), // max = 3
            action: AgentAction::ClustersDown,
            at: 0,
            allowed: true,
        },
        Case {
            name: "min-clusters: shrink below the minimum",
            effect: RuleEffect::MinClusters(3),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::ClustersDown,
            at: 0,
            allowed: false,
        },
        Case {
            name: "max-clusters: grow onto the maximum",
            effect: RuleEffect::MaxClusters(4),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::ClustersUp,
            at: 0,
            allowed: true,
        },
        Case {
            name: "max-clusters: grow past the maximum",
            effect: RuleEffect::MaxClusters(3),
            window: TimeWindow::always(),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::ClustersUp,
            at: 0,
            allowed: false,
        },
    ]);
}

#[test]
fn c4_time_window_edges_gate_enforcement() {
    let nine_to_five = TimeWindow::daily(9.0, 17.0);
    run(&[
        Case {
            name: "window: first ms inside",
            effect: RuleEffect::NoDownsize,
            window: nine_to_five.clone(),
            config: cfg(WarehouseSize::Medium),
            action: AgentAction::SizeDown,
            at: 9 * HOUR_MS,
            allowed: false,
        },
        Case {
            name: "window: last ms inside",
            effect: RuleEffect::NoDownsize,
            window: nine_to_five.clone(),
            config: cfg(WarehouseSize::Medium),
            action: AgentAction::SizeDown,
            at: 17 * HOUR_MS - 1,
            allowed: false,
        },
        Case {
            name: "window: end bound is exclusive",
            effect: RuleEffect::NoDownsize,
            window: nine_to_five.clone(),
            config: cfg(WarehouseSize::Medium),
            action: AgentAction::SizeDown,
            at: 17 * HOUR_MS,
            allowed: true,
        },
        Case {
            name: "window: last ms before start",
            effect: RuleEffect::NoDownsize,
            window: nine_to_five,
            config: cfg(WarehouseSize::Medium),
            action: AgentAction::SizeDown,
            at: 9 * HOUR_MS - 1,
            allowed: true,
        },
        // Midnight wrap: 22:00–02:00 active at 23:00 and 01:59:59.999,
        // inactive at exactly 02:00.
        Case {
            name: "wrap: active before midnight",
            effect: RuleEffect::NoSuspend,
            window: TimeWindow::daily(22.0, 2.0),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::SuspendNow,
            at: 23 * HOUR_MS,
            allowed: false,
        },
        Case {
            name: "wrap: active after midnight",
            effect: RuleEffect::NoSuspend,
            window: TimeWindow::daily(22.0, 2.0),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::SuspendNow,
            at: 2 * HOUR_MS - 1,
            allowed: false,
        },
        Case {
            name: "wrap: inactive at exclusive end",
            effect: RuleEffect::NoSuspend,
            window: TimeWindow::daily(22.0, 2.0),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::SuspendNow,
            at: 2 * HOUR_MS,
            allowed: true,
        },
        // Day filter: a Monday-only rule is inert on Tuesday at the same
        // hour, and active again exactly one week later.
        Case {
            name: "days: active on listed weekday",
            effect: RuleEffect::NoSuspend,
            window: TimeWindow::daily(0.0, 24.0).on_days(vec![0]),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::SuspendNow,
            at: HOUR_MS,
            allowed: false,
        },
        Case {
            name: "days: inert on other weekday",
            effect: RuleEffect::NoSuspend,
            window: TimeWindow::daily(0.0, 24.0).on_days(vec![0]),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::SuspendNow,
            at: 24 * HOUR_MS + HOUR_MS,
            allowed: true,
        },
        Case {
            name: "days: active again a week later",
            effect: RuleEffect::NoSuspend,
            window: TimeWindow::daily(0.0, 24.0).on_days(vec![0]),
            config: cfg(WarehouseSize::Small),
            action: AgentAction::SuspendNow,
            at: 7 * 24 * HOUR_MS + HOUR_MS,
            allowed: false,
        },
    ]);
}

#[test]
fn mask_is_never_empty_under_adversarial_rule_grids() {
    // Cross a grid of maximally restrictive rule sets with every size and
    // boundary cluster range: whatever the standing config — including ones
    // that already violate the rules — the mask keeps at least NoOp.
    let rule_sets: Vec<ConstraintSet> = vec![
        ConstraintSet::new()
            .with_rule(Rule::new(
                "ceil-xs",
                TimeWindow::always(),
                RuleEffect::MaxSize(WarehouseSize::XSmall),
            ))
            .with_rule(Rule::new(
                "floor-top",
                TimeWindow::always(),
                RuleEffect::MinSize(WarehouseSize::from_index(9).unwrap()),
            )),
        ConstraintSet::new()
            .with_rule(Rule::new(
                "no-suspend",
                TimeWindow::always(),
                RuleEffect::NoSuspend,
            ))
            .with_rule(Rule::new(
                "one-cluster",
                TimeWindow::always(),
                RuleEffect::MaxClusters(1),
            ))
            .with_rule(Rule::new(
                "many-clusters",
                TimeWindow::always(),
                RuleEffect::MinClusters(10),
            )),
        ConstraintSet::new()
            .with_rule(Rule::new(
                "no-downsize",
                TimeWindow::always(),
                RuleEffect::NoDownsize,
            ))
            .with_rule(Rule::new(
                "long-suspend",
                TimeWindow::always(),
                RuleEffect::MinAutoSuspendMs(u64::MAX),
            )),
    ];
    for cs in &rule_sets {
        for idx in 0..10 {
            let size = WarehouseSize::from_index(idx).unwrap();
            for (min_c, max_c) in [(1u32, 1u32), (1, 10), (10, 10)] {
                let config = cfg(size).with_clusters(min_c, max_c);
                let mask = cs.action_mask(&config, 0);
                assert!(
                    mask.iter().any(|&m| m),
                    "empty mask for size {size:?}, clusters {min_c}..{max_c}"
                );
                assert!(mask[AgentAction::NoOp.index()], "NoOp must survive");
            }
        }
    }
}
