//! Deep Q-network policy with target network and experience replay —
//! the paper's "detailed architecture for incorporating real-time
//! performance feedback using deep reinforcement learning" (§6).

use crate::action::AgentAction;
use crate::state::STATE_DIM;
use nn::{huber_loss_grad, Adam, Mlp, MlpConfig, ReplayBuffer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the DQN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Discount factor.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size per training step.
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// Hard target-network sync every this many training steps.
    pub target_sync_interval: u64,
    /// ε-greedy schedule: linear decay from start to end over decay_steps
    /// action selections.
    pub epsilon_start: f64,
    pub epsilon_end: f64,
    pub epsilon_decay_steps: u64,
    /// Global-norm gradient clip.
    pub grad_clip: f64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 32],
            gamma: 0.92,
            learning_rate: 1e-3,
            batch_size: 32,
            replay_capacity: 50_000,
            target_sync_interval: 200,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 3_000,
            grad_clip: 5.0,
        }
    }
}

/// One (s, a, r, s') transition with the *next* state's action mask so the
/// bootstrap max never selects a non-compliant action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    pub state: Vec<f64>,
    pub action: usize,
    pub reward: f64,
    pub next_state: Vec<f64>,
    pub next_mask: [bool; AgentAction::COUNT],
    pub terminal: bool,
}

/// The smart model's Q-learning core.
#[derive(Debug, Clone)]
pub struct DqnAgent {
    online: Mlp,
    target: Mlp,
    optimizer: Adam,
    replay: ReplayBuffer<Transition>,
    config: DqnConfig,
    selections: u64,
    train_steps: u64,
}

/// Serializable mirror of [`DqnAgent`] for the durable control plane. The
/// replay ring is flattened to its parts because `ReplayBuffer` is generic
/// over the transition type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DqnAgentState {
    pub online: Mlp,
    pub target: Mlp,
    pub optimizer: Adam,
    pub replay_capacity: usize,
    pub replay_items: Vec<Transition>,
    pub replay_next: usize,
    pub replay_total_pushed: u64,
    pub config: DqnConfig,
    pub selections: u64,
    pub train_steps: u64,
}

impl DqnAgent {
    /// Exports every weight, moment, and replay transition for persistence.
    pub fn export_state(&self) -> DqnAgentState {
        DqnAgentState {
            online: self.online.clone(),
            target: self.target.clone(),
            optimizer: self.optimizer.clone(),
            replay_capacity: self.replay.capacity(),
            replay_items: self.replay.iter().cloned().collect(),
            replay_next: self.replay.next_index(),
            replay_total_pushed: self.replay.total_pushed(),
            config: self.config.clone(),
            selections: self.selections,
            train_steps: self.train_steps,
        }
    }

    /// Rebuilds an agent from exported state, validating the replay ring.
    pub fn from_state(state: DqnAgentState) -> Result<Self, String> {
        let replay = ReplayBuffer::from_parts(
            state.replay_capacity,
            state.replay_items,
            state.replay_next,
            state.replay_total_pushed,
        )?;
        Ok(Self {
            online: state.online,
            target: state.target,
            optimizer: state.optimizer,
            replay,
            config: state.config,
            selections: state.selections,
            train_steps: state.train_steps,
        })
    }
}

impl DqnAgent {
    /// Builds a fresh agent with seeded initialization.
    pub fn new(config: DqnConfig, rng: &mut impl Rng) -> Self {
        let mut layers = vec![STATE_DIM];
        layers.extend_from_slice(&config.hidden);
        layers.push(AgentAction::COUNT);
        let online = Mlp::new(MlpConfig::new(layers.clone()), rng);
        let mut target = Mlp::new(MlpConfig::new(layers), rng);
        target.copy_parameters_from(&online);
        let optimizer = Adam::new(config.learning_rate, online.optimizer_slots());
        let replay = ReplayBuffer::new(config.replay_capacity);
        Self {
            online,
            target,
            optimizer,
            replay,
            config,
            selections: 0,
            train_steps: 0,
        }
    }

    /// Q-values of the online network.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.online.forward(state)
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        let c = &self.config;
        if self.selections >= c.epsilon_decay_steps {
            c.epsilon_end
        } else {
            let frac = self.selections as f64 / c.epsilon_decay_steps as f64;
            c.epsilon_start + (c.epsilon_end - c.epsilon_start) * frac
        }
    }

    /// Transitions stored so far.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Training steps taken.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Greedy (exploit-only) action under the mask.
    ///
    /// # Panics
    /// Panics if the mask permits nothing (the constraint layer always
    /// permits NoOp, so an all-false mask is a programming error).
    pub fn greedy_action(&self, state: &[f64], mask: &[bool; AgentAction::COUNT]) -> AgentAction {
        let q = self.q_values(state);
        masked_argmax(&q, mask)
    }

    /// ε-greedy action selection; pass `explore = false` at serving time.
    pub fn select_action(
        &mut self,
        state: &[f64],
        mask: &[bool; AgentAction::COUNT],
        rng: &mut impl Rng,
        explore: bool,
    ) -> AgentAction {
        self.selections += 1;
        if explore && rng.gen::<f64>() < self.epsilon() {
            let allowed: Vec<AgentAction> = AgentAction::ALL
                .iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(a, _)| *a)
                .collect();
            assert!(!allowed.is_empty(), "action mask permits nothing");
            allowed[rng.gen_range(0..allowed.len())]
        } else {
            self.greedy_action(state, mask)
        }
    }

    /// Stores a transition.
    pub fn observe(&mut self, t: Transition) {
        debug_assert_eq!(t.state.len(), STATE_DIM);
        debug_assert_eq!(t.next_state.len(), STATE_DIM);
        debug_assert!(t.action < AgentAction::COUNT);
        self.replay.push(t);
    }

    /// One mini-batch Q-learning update. Returns the batch's mean absolute
    /// TD error, or `None` when the buffer is smaller than a batch.
    pub fn train_step(&mut self, rng: &mut impl Rng) -> Option<f64> {
        if self.replay.len() < self.config.batch_size {
            return None;
        }
        let batch: Vec<Transition> = self
            .replay
            .sample(self.config.batch_size, rng)
            .into_iter()
            .cloned()
            .collect();

        let mut accumulated: Option<nn::mlp::MlpGradients> = None;
        let mut td_sum = 0.0;
        for t in &batch {
            // Bootstrap with the target network over the *masked* next
            // actions: a non-compliant action can never back up value.
            let bootstrap = if t.terminal {
                0.0
            } else {
                let nq = self.target.forward(&t.next_state);
                masked_max(&nq, &t.next_mask)
            };
            let target_q = t.reward + self.config.gamma * bootstrap;

            let trace = self.online.forward_trace(&t.state);
            let q = trace.output().to_vec();
            let td = q[t.action] - target_q;
            td_sum += td.abs();

            // Gradient flows only through the taken action's output.
            let mut pred = vec![0.0; AgentAction::COUNT];
            let mut tgt = vec![0.0; AgentAction::COUNT];
            pred[t.action] = q[t.action];
            tgt[t.action] = target_q;
            let grad_out = huber_loss_grad(&pred, &tgt, 1.0);
            let g = self.online.backward(&trace, &grad_out);
            match &mut accumulated {
                Some(acc) => acc.accumulate(&g),
                None => accumulated = Some(g),
            }
        }
        // lint: allow(D5) — the replay-size guard above ensures at least one transition
        let mut grads = accumulated.expect("non-empty batch");
        grads.scale(1.0 / batch.len() as f64);
        grads.clip_l2_norm(self.config.grad_clip);
        self.online.apply_gradients(&grads, &mut self.optimizer);

        self.train_steps += 1;
        if self
            .train_steps
            .is_multiple_of(self.config.target_sync_interval)
        {
            self.target.copy_parameters_from(&self.online);
        }
        Some(td_sum / batch.len() as f64)
    }
}

/// Argmax of `q` restricted to mask-true indices.
fn masked_argmax(q: &[f64], mask: &[bool; AgentAction::COUNT]) -> AgentAction {
    let mut best: Option<(usize, f64)> = None;
    for (i, (&qi, &m)) in q.iter().zip(mask).enumerate() {
        if !m {
            continue;
        }
        if best.is_none_or(|(_, bq)| qi > bq) {
            best = Some((i, qi));
        }
    }
    // lint: allow(D5) — NoOp is always mask-permitted, so `best` is always set
    let (idx, _) = best.expect("action mask permits nothing");
    AgentAction::ALL[idx]
}

/// Max of `q` restricted to mask-true indices (0 when nothing is allowed —
/// cannot normally happen since NoOp is always allowed).
fn masked_max(q: &[f64], mask: &[bool; AgentAction::COUNT]) -> f64 {
    q.iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(&qi, _)| qi)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(f64::MIN) // guard against -inf if mask is empty
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agent(seed: u64) -> DqnAgent {
        let mut rng = StdRng::seed_from_u64(seed);
        DqnAgent::new(
            DqnConfig {
                batch_size: 8,
                replay_capacity: 512,
                epsilon_decay_steps: 100,
                ..DqnConfig::default()
            },
            &mut rng,
        )
    }

    fn full_mask() -> [bool; AgentAction::COUNT] {
        [true; AgentAction::COUNT]
    }

    #[test]
    fn q_output_matches_action_count() {
        let a = agent(1);
        assert_eq!(a.q_values(&[0.0; STATE_DIM]).len(), AgentAction::COUNT);
    }

    #[test]
    fn epsilon_decays_linearly_to_floor() {
        let mut a = agent(1);
        assert_eq!(a.epsilon(), 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            a.select_action(&[0.0; STATE_DIM], &full_mask(), &mut rng, true);
        }
        assert_eq!(a.epsilon(), 0.05);
    }

    #[test]
    fn masked_selection_never_picks_forbidden_action() {
        let mut a = agent(2);
        let mut mask = full_mask();
        mask[AgentAction::SizeDown.index()] = false;
        mask[AgentAction::SuspendNow.index()] = false;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let act = a.select_action(&[0.1; STATE_DIM], &mask, &mut rng, true);
            assert_ne!(act, AgentAction::SizeDown);
            assert_ne!(act, AgentAction::SuspendNow);
        }
    }

    #[test]
    fn greedy_respects_mask_even_for_best_q() {
        let a = agent(4);
        let state = vec![0.3; STATE_DIM];
        let q = a.q_values(&state);
        let best = q
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        let mut mask = full_mask();
        mask[best] = false;
        let chosen = a.greedy_action(&state, &mask);
        assert_ne!(chosen.index(), best);
    }

    #[test]
    fn train_step_needs_a_full_batch() {
        let mut a = agent(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(a.train_step(&mut rng).is_none());
    }

    /// A one-step bandit: action 3 always yields reward 1, everything else 0.
    /// After training, the greedy policy should pick action 3.
    #[test]
    fn learns_a_simple_bandit() {
        let mut a = agent(6);
        let mut rng = StdRng::seed_from_u64(7);
        let state = vec![0.5; STATE_DIM];
        for _ in 0..400 {
            for action in 0..AgentAction::COUNT {
                a.observe(Transition {
                    state: state.clone(),
                    action,
                    reward: if action == 3 { 1.0 } else { 0.0 },
                    next_state: state.clone(),
                    next_mask: full_mask(),
                    terminal: true,
                });
            }
            a.train_step(&mut rng);
        }
        let chosen = a.greedy_action(&state, &full_mask());
        assert_eq!(chosen.index(), 3, "q: {:?}", a.q_values(&state));
    }

    /// Two-step credit assignment: action 1 now leads to a state where a
    /// big terminal reward is available; action 0 pays a small immediate
    /// reward but terminates. With gamma near 1 the agent should prefer 1.
    #[test]
    fn discounted_bootstrap_propagates_future_value() {
        let mut rng_init = StdRng::seed_from_u64(8);
        let mut a = DqnAgent::new(
            DqnConfig {
                batch_size: 16,
                gamma: 0.95,
                target_sync_interval: 50,
                epsilon_decay_steps: 1,
                ..DqnConfig::default()
            },
            &mut rng_init,
        );
        let s0 = vec![0.0; STATE_DIM];
        let mut s1 = vec![0.0; STATE_DIM];
        s1[0] = 1.0;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..600 {
            // From s0: action 0 -> terminal +0.2; action 1 -> s1, 0 reward.
            a.observe(Transition {
                state: s0.clone(),
                action: 0,
                reward: 0.2,
                next_state: s0.clone(),
                next_mask: full_mask(),
                terminal: true,
            });
            a.observe(Transition {
                state: s0.clone(),
                action: 1,
                reward: 0.0,
                next_state: s1.clone(),
                next_mask: full_mask(),
                terminal: false,
            });
            // From s1: action 0 -> terminal +1.
            a.observe(Transition {
                state: s1.clone(),
                action: 0,
                reward: 1.0,
                next_state: s1.clone(),
                next_mask: full_mask(),
                terminal: true,
            });
            a.train_step(&mut rng);
        }
        let q0 = a.q_values(&s0);
        assert!(
            q0[1] > q0[0],
            "future +1 (discounted) should beat immediate +0.2: {q0:?}"
        );
    }

    #[test]
    fn training_reduces_td_error() {
        let mut a = agent(10);
        let mut rng = StdRng::seed_from_u64(11);
        let state = vec![0.2; STATE_DIM];
        for action in 0..AgentAction::COUNT {
            for _ in 0..32 {
                a.observe(Transition {
                    state: state.clone(),
                    action,
                    reward: action as f64 * 0.1,
                    next_state: state.clone(),
                    next_mask: full_mask(),
                    terminal: true,
                });
            }
        }
        let early: f64 = (0..10).filter_map(|_| a.train_step(&mut rng)).sum::<f64>() / 10.0;
        for _ in 0..300 {
            a.train_step(&mut rng);
        }
        let late: f64 = (0..10).filter_map(|_| a.train_step(&mut rng)).sum::<f64>() / 10.0;
        assert!(late < early, "TD error should shrink: {early} -> {late}");
    }

    #[test]
    fn same_seed_same_policy() {
        let a = agent(42);
        let b = agent(42);
        let s = vec![0.7; STATE_DIM];
        assert_eq!(a.q_values(&s), b.q_values(&s));
    }

    /// Export/import must be lossless: the restored agent takes the exact
    /// same training trajectory as the original.
    #[test]
    fn exported_state_round_trips_bit_identically() {
        let mut a = agent(13);
        let mut rng = StdRng::seed_from_u64(14);
        let state = vec![0.4; STATE_DIM];
        for i in 0..40 {
            a.observe(Transition {
                state: state.clone(),
                action: i % AgentAction::COUNT,
                reward: (i as f64) * 0.01,
                next_state: state.clone(),
                next_mask: full_mask(),
                terminal: i % 3 == 0,
            });
            a.train_step(&mut rng);
        }
        let mut b = DqnAgent::from_state(a.export_state()).unwrap();
        assert_eq!(a.q_values(&state), b.q_values(&state));
        assert_eq!(a.replay_len(), b.replay_len());
        assert_eq!(a.train_steps(), b.train_steps());
        // Continued training diverges only if hidden state differs.
        let mut ra = StdRng::seed_from_u64(99);
        let mut rb = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            assert_eq!(a.train_step(&mut ra), b.train_step(&mut rb));
        }
        assert_eq!(a.q_values(&state), b.q_values(&state));
    }
}
