//! The reward signal (§6, design criterion C4).
//!
//! `r = −credits_spent − λ(slider) · perf_penalty`, where the performance
//! penalty aggregates queueing pressure and latency regression relative to
//! the workload's baseline. Because λ grows steeply toward the
//! "Best Performance" slider positions, the same slowdown that is tolerable
//! at "Lowest Cost" dominates the reward at "Best Performance" — which is
//! how one scalar slider re-weights every optimization at once.

use crate::slider::SliderPosition;
use serde::{Deserialize, Serialize};

/// Performance observations over one feedback interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PerfSignals {
    /// Mean seconds queries spent queued during the interval.
    pub mean_queue_s: f64,
    /// p99 latency over the interval divided by the baseline p99 (1.0 = no
    /// regression; <1 = faster than baseline).
    pub latency_ratio: f64,
    /// Queries dropped or failed in the interval (each is heavily punished).
    pub dropped_queries: u64,
}

/// Normalization constants: one credit of spend weighs like this much of
/// the raw performance penalty at λ = 1. Calibrated so that at the Balanced
/// slider a 2x latency regression outweighs the per-interval savings of any
/// single downsizing step (C4: performance wins by default).
const QUEUE_PENALTY_PER_S: f64 = 0.05;
const LATENCY_PENALTY_SCALE: f64 = 2.0;
const DROP_PENALTY: f64 = 5.0;
/// Small friction on configuration churn: every non-NoOp action costs this
/// much, discouraging thrash (each resize also drops the cache).
pub const ACTION_CHURN_PENALTY: f64 = 0.05;

/// Slider-weighted performance penalty (≥ 0). Queueing and latency
/// regression scale with λ; dropped queries are catastrophic at *every*
/// slider position (no slider authorizes failing queries).
pub fn perf_penalty(perf: &PerfSignals) -> f64 {
    let queue = perf.mean_queue_s.max(0.0) * QUEUE_PENALTY_PER_S;
    let latency = (perf.latency_ratio - 1.0).max(0.0) * LATENCY_PENALTY_SCALE;
    queue + latency
}

/// Reward for one interval: negative spend minus slider-weighted penalty
/// minus the (unweighted) drop penalty.
pub fn compute_reward(credits_spent: f64, perf: &PerfSignals, slider: SliderPosition) -> f64 {
    debug_assert!(credits_spent.is_finite());
    -credits_spent
        - slider.perf_penalty_weight() * perf_penalty(perf)
        - perf.dropped_queries as f64 * DROP_PENALTY
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_perf() -> PerfSignals {
        PerfSignals {
            mean_queue_s: 0.0,
            latency_ratio: 1.0,
            dropped_queries: 0,
        }
    }

    #[test]
    fn no_penalty_at_baseline_performance() {
        assert_eq!(perf_penalty(&ok_perf()), 0.0);
        assert_eq!(
            compute_reward(2.0, &ok_perf(), SliderPosition::Balanced),
            -2.0
        );
    }

    #[test]
    fn cheaper_is_better_all_else_equal() {
        let s = SliderPosition::Balanced;
        assert!(compute_reward(1.0, &ok_perf(), s) > compute_reward(2.0, &ok_perf(), s));
    }

    #[test]
    fn faster_than_baseline_is_not_rewarded_extra() {
        // C4: savings are the goal; speedups beyond baseline don't offset
        // spend (prevents the policy from gold-plating).
        let fast = PerfSignals {
            latency_ratio: 0.5,
            ..ok_perf()
        };
        assert_eq!(
            compute_reward(1.0, &fast, SliderPosition::Balanced),
            compute_reward(1.0, &ok_perf(), SliderPosition::Balanced)
        );
    }

    #[test]
    fn slider_reweights_the_same_slowdown() {
        let slow = PerfSignals {
            mean_queue_s: 30.0,
            latency_ratio: 2.0,
            dropped_queries: 0,
        };
        let cheap = compute_reward(1.0, &slow, SliderPosition::LowestCost);
        let perf = compute_reward(1.0, &slow, SliderPosition::BestPerformance);
        assert!(perf < cheap, "performance slider punishes slowdowns harder");
        // At BestPerformance, this slowdown outweighs a full credit saved.
        let saved_but_slow = compute_reward(0.0, &slow, SliderPosition::BestPerformance);
        let spent_but_fast = compute_reward(1.0, &ok_perf(), SliderPosition::BestPerformance);
        assert!(
            spent_but_fast > saved_but_slow,
            "C4: performance over savings"
        );
    }

    #[test]
    fn at_lowest_cost_savings_can_win() {
        let slow = PerfSignals {
            mean_queue_s: 30.0,
            latency_ratio: 2.0,
            dropped_queries: 0,
        };
        let saved_but_slow = compute_reward(0.0, &slow, SliderPosition::LowestCost);
        let spent_but_fast = compute_reward(1.0, &ok_perf(), SliderPosition::LowestCost);
        assert!(
            saved_but_slow > spent_but_fast,
            "cost slider tolerates slowdown"
        );
    }

    #[test]
    fn drops_are_catastrophic_at_any_slider() {
        let dropped = PerfSignals {
            dropped_queries: 1,
            ..ok_perf()
        };
        for s in SliderPosition::ALL {
            assert!(
                compute_reward(0.0, &dropped, s) < compute_reward(3.0, &ok_perf(), s),
                "a drop outweighs 3 credits at {s:?}"
            );
        }
    }

    #[test]
    fn penalty_is_monotone_in_queueing() {
        let mut last = -1.0;
        for q in [0.0, 1.0, 10.0, 100.0] {
            let p = perf_penalty(&PerfSignals {
                mean_queue_s: q,
                latency_ratio: 1.0,
                dropped_queries: 0,
            });
            assert!(p > last);
            last = p;
        }
    }
}
