//! The discrete action space of the smart model.
//!
//! Actions are knob *moves* relative to the current configuration (resize a
//! step, widen the cluster range, shorten auto-suspend...) rather than
//! absolute settings; this keeps the action space small and makes every
//! action meaningful from any state. The actuator translates a move into the
//! concrete `ALTER WAREHOUSE` command(s) (§4.5).

use cdw_sim::{SimTime, WarehouseCommand, WarehouseConfig};
use serde::{Deserialize, Serialize};

/// Discrete auto-suspend settings (ms) the agent moves between. Spans the
/// rule-of-thumb range from aggressive (30 s) to Snowflake's default-ish
/// upper end (1 h).
pub const AUTO_SUSPEND_LADDER_MS: [SimTime; 7] = [
    30_000, 60_000, 120_000, 300_000, 600_000, 1_800_000, 3_600_000,
];

/// One decision of the smart model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgentAction {
    /// Keep everything as is.
    NoOp,
    /// Resize one T-shirt size up.
    SizeUp,
    /// Resize one T-shirt size down.
    SizeDown,
    /// Allow one more cluster (max + 1).
    ClustersUp,
    /// Allow one fewer cluster (max − 1).
    ClustersDown,
    /// Move one step up the auto-suspend ladder (suspend later).
    AutoSuspendUp,
    /// Move one step down the auto-suspend ladder (suspend sooner).
    AutoSuspendDown,
    /// Suspend the warehouse immediately (drains first).
    SuspendNow,
}

impl AgentAction {
    /// All actions, in the index order used by the Q-network output layer.
    pub const ALL: [AgentAction; 8] = [
        AgentAction::NoOp,
        AgentAction::SizeUp,
        AgentAction::SizeDown,
        AgentAction::ClustersUp,
        AgentAction::ClustersDown,
        AgentAction::AutoSuspendUp,
        AgentAction::AutoSuspendDown,
        AgentAction::SuspendNow,
    ];

    /// Number of actions (the Q-network's output dimension).
    pub const COUNT: usize = Self::ALL.len();

    /// Index in [`AgentAction::ALL`].
    pub fn index(self) -> usize {
        // lint: allow(D5) — ALL enumerates every variant by construction
        Self::ALL.iter().position(|a| *a == self).expect("in ALL")
    }

    /// The knob move that undoes this one, if any. Used by monitoring when
    /// an external change is detected: KWO "immediately reverts its own
    /// action" (§4.4).
    pub fn inverse(self) -> Option<AgentAction> {
        match self {
            AgentAction::SizeUp => Some(AgentAction::SizeDown),
            AgentAction::SizeDown => Some(AgentAction::SizeUp),
            AgentAction::ClustersUp => Some(AgentAction::ClustersDown),
            AgentAction::ClustersDown => Some(AgentAction::ClustersUp),
            AgentAction::AutoSuspendUp => Some(AgentAction::AutoSuspendDown),
            AgentAction::AutoSuspendDown => Some(AgentAction::AutoSuspendUp),
            AgentAction::NoOp | AgentAction::SuspendNow => None,
        }
    }

    /// Nearest ladder position at or below the current auto-suspend.
    fn ladder_pos(auto_suspend_ms: SimTime) -> usize {
        AUTO_SUSPEND_LADDER_MS
            .iter()
            .rposition(|&v| v <= auto_suspend_ms)
            .unwrap_or(0)
    }

    /// Whether the action changes anything from `config` (a saturating move
    /// at the boundary is pointless and masked out).
    pub fn is_applicable(self, config: &WarehouseConfig) -> bool {
        match self {
            AgentAction::NoOp => true,
            AgentAction::SizeUp => config.size.step_up() != config.size,
            AgentAction::SizeDown => config.size.step_down() != config.size,
            AgentAction::ClustersUp => config.max_clusters < 10,
            AgentAction::ClustersDown => config.max_clusters > config.min_clusters.max(1),
            AgentAction::AutoSuspendUp => {
                Self::ladder_pos(config.auto_suspend_ms) + 1 < AUTO_SUSPEND_LADDER_MS.len()
            }
            AgentAction::AutoSuspendDown => Self::ladder_pos(config.auto_suspend_ms) > 0,
            AgentAction::SuspendNow => true,
        }
    }

    /// The configuration this action produces from `config` (commands not
    /// yet applied; [`AgentAction::SuspendNow`] leaves the config unchanged).
    pub fn target_config(self, config: &WarehouseConfig) -> WarehouseConfig {
        let mut next = config.clone();
        match self {
            AgentAction::NoOp | AgentAction::SuspendNow => {}
            AgentAction::SizeUp => next.size = config.size.step_up(),
            AgentAction::SizeDown => next.size = config.size.step_down(),
            AgentAction::ClustersUp => next.max_clusters = (config.max_clusters + 1).min(10),
            AgentAction::ClustersDown => {
                next.max_clusters = config
                    .max_clusters
                    .saturating_sub(1)
                    .max(config.min_clusters)
            }
            AgentAction::AutoSuspendUp => {
                let p = Self::ladder_pos(config.auto_suspend_ms);
                next.auto_suspend_ms =
                    AUTO_SUSPEND_LADDER_MS[(p + 1).min(AUTO_SUSPEND_LADDER_MS.len() - 1)];
            }
            AgentAction::AutoSuspendDown => {
                let p = Self::ladder_pos(config.auto_suspend_ms);
                next.auto_suspend_ms = AUTO_SUSPEND_LADDER_MS[p.saturating_sub(1)];
            }
        }
        next
    }

    /// Translates the move into `ALTER WAREHOUSE` commands for the actuator.
    pub fn to_commands(self, config: &WarehouseConfig) -> Vec<WarehouseCommand> {
        match self {
            AgentAction::NoOp => Vec::new(),
            AgentAction::SuspendNow => vec![WarehouseCommand::Suspend],
            AgentAction::SizeUp | AgentAction::SizeDown => {
                let next = self.target_config(config);
                if next.size == config.size {
                    Vec::new()
                } else {
                    vec![WarehouseCommand::SetSize(next.size)]
                }
            }
            AgentAction::ClustersUp | AgentAction::ClustersDown => {
                let next = self.target_config(config);
                if next.max_clusters == config.max_clusters {
                    Vec::new()
                } else {
                    vec![WarehouseCommand::SetClusterRange {
                        min: next.min_clusters,
                        max: next.max_clusters,
                    }]
                }
            }
            AgentAction::AutoSuspendUp | AgentAction::AutoSuspendDown => {
                let next = self.target_config(config);
                if next.auto_suspend_ms == config.auto_suspend_ms {
                    Vec::new()
                } else {
                    vec![WarehouseCommand::SetAutoSuspend {
                        ms: next.auto_suspend_ms,
                    }]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::WarehouseSize;

    fn cfg() -> WarehouseConfig {
        WarehouseConfig::new(WarehouseSize::Medium)
            .with_auto_suspend_secs(300)
            .with_clusters(1, 3)
    }

    #[test]
    fn indices_are_stable_and_unique() {
        for (i, a) in AgentAction::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
        assert_eq!(AgentAction::COUNT, 8);
    }

    #[test]
    fn size_moves_produce_resize_commands() {
        let c = cfg();
        assert_eq!(
            AgentAction::SizeUp.to_commands(&c),
            vec![WarehouseCommand::SetSize(WarehouseSize::Large)]
        );
        assert_eq!(
            AgentAction::SizeDown.to_commands(&c),
            vec![WarehouseCommand::SetSize(WarehouseSize::Small)]
        );
    }

    #[test]
    fn saturated_moves_are_inapplicable() {
        let mut c = WarehouseConfig::new(WarehouseSize::XSmall);
        assert!(!AgentAction::SizeDown.is_applicable(&c));
        assert!(AgentAction::SizeUp.is_applicable(&c));
        c.size = WarehouseSize::X6Large;
        assert!(!AgentAction::SizeUp.is_applicable(&c));
        assert!(AgentAction::SizeDown.is_applicable(&c));
    }

    #[test]
    fn cluster_moves_respect_bounds() {
        let c = cfg(); // 1..3
        assert!(AgentAction::ClustersUp.is_applicable(&c));
        assert!(AgentAction::ClustersDown.is_applicable(&c));
        let mut at_min = WarehouseConfig::new(WarehouseSize::Small).with_clusters(1, 1);
        assert!(!AgentAction::ClustersDown.is_applicable(&at_min));
        at_min.max_clusters = 10;
        assert!(!AgentAction::ClustersUp.is_applicable(&at_min));
    }

    #[test]
    fn cluster_down_never_crosses_min() {
        let c = WarehouseConfig::new(WarehouseSize::Small).with_clusters(2, 3);
        let next = AgentAction::ClustersDown.target_config(&c);
        assert_eq!(next.max_clusters, 2);
        assert!(!AgentAction::ClustersDown.is_applicable(&next));
    }

    #[test]
    fn auto_suspend_ladder_moves_are_adjacent() {
        let c = cfg(); // 300 s
        let up = AgentAction::AutoSuspendUp.target_config(&c);
        assert_eq!(up.auto_suspend_ms, 600_000);
        let down = AgentAction::AutoSuspendDown.target_config(&c);
        assert_eq!(down.auto_suspend_ms, 120_000);
    }

    #[test]
    fn off_ladder_auto_suspend_snaps_down() {
        let mut c = cfg();
        c.auto_suspend_ms = 400_000; // between 300 s and 600 s rungs
        let down = AgentAction::AutoSuspendDown.target_config(&c);
        assert_eq!(down.auto_suspend_ms, 120_000, "snaps below the 300 s rung");
        let up = AgentAction::AutoSuspendUp.target_config(&c);
        assert_eq!(up.auto_suspend_ms, 600_000);
    }

    #[test]
    fn ladder_ends_saturate() {
        let mut c = cfg();
        c.auto_suspend_ms = AUTO_SUSPEND_LADDER_MS[0];
        assert!(!AgentAction::AutoSuspendDown.is_applicable(&c));
        c.auto_suspend_ms = *AUTO_SUSPEND_LADDER_MS.last().unwrap();
        assert!(!AgentAction::AutoSuspendUp.is_applicable(&c));
    }

    #[test]
    fn noop_emits_no_commands() {
        assert!(AgentAction::NoOp.to_commands(&cfg()).is_empty());
        assert_eq!(AgentAction::NoOp.target_config(&cfg()), cfg());
    }

    #[test]
    fn suspend_now_is_a_single_suspend_command() {
        assert_eq!(
            AgentAction::SuspendNow.to_commands(&cfg()),
            vec![WarehouseCommand::Suspend]
        );
    }

    #[test]
    fn target_configs_are_always_valid() {
        let mut c = WarehouseConfig::new(WarehouseSize::XSmall);
        for a in AgentAction::ALL {
            let next = a.target_config(&c);
            assert!(next.validate().is_ok(), "{a:?} produced invalid config");
            c = next;
        }
    }
}
