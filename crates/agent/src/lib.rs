//! The smart models (§6 of the paper).
//!
//! Each warehouse gets its own *smart model*: a deep-Q-network policy over
//! telemetry-derived state features whose actions are the warehouse knobs —
//! resize up/down, widen/narrow the cluster range, lengthen/shorten
//! auto-suspend, suspend outright, or do nothing. The model is "smart"
//! rather than a frozen policy because at decision time it consults (§4.3):
//!
//! * the **cost model** (through the reward it was trained on),
//! * the **customer constraints** ([`constraints`]) — hard rules filtered by
//!   action masking, never soft penalties,
//! * the **slider** ([`slider`]) — the five-position cost/performance
//!   trade-off that maps to the reward's performance-penalty weight and the
//!   back-off sensitivity, and
//! * **real-time feedback** (the monitoring layer in the `keebo` crate can
//!   override the chosen action with a conservative back-off).
//!
//! Training ([`trainer`]) is offline and replay-driven: historical telemetry
//! is reconstructed into a workload, episodes are rolled out on the
//! simulator, and transitions feed a replay buffer for Q-learning — matching
//! the paper's observation that access to "large historical telemetry data
//! ... enables [the model] to learn from a diverse range of past experiences
//! without the need for constant updates" (§8).

pub mod action;
pub mod constraints;
pub mod dqn;
pub mod heuristic;
pub mod reward;
pub mod slider;
pub mod state;
pub mod trainer;

pub use action::{AgentAction, AUTO_SUSPEND_LADDER_MS};
pub use constraints::{ConstraintSet, Rule, RuleEffect, TimeWindow};
pub use dqn::{DqnAgent, DqnAgentState, DqnConfig, Transition};
pub use heuristic::{AutoSuspendRuleOfThumb, DegradedFallback, Policy, StaticPolicy};
pub use reward::{compute_reward, PerfSignals};
pub use slider::SliderPosition;
pub use state::{AgentState, STATE_DIM};
pub use trainer::{
    baseline_p99, reconstruct_specs, rollout_static, train_on_workload, EpisodeConfig,
    TrainingStats,
};
