//! The state vector the Q-network sees.
//!
//! Features are drawn from exactly what the smart model is allowed to know
//! (§6.1): telemetry-derived load and performance aggregates, the current
//! configuration, cyclical time-of-day/week (so recurring patterns are
//! learnable), and the slider position.

use crate::slider::SliderPosition;
use cdw_sim::{SimTime, WarehouseConfig};
use telemetry::WindowFeatures;

/// Dimension of [`AgentState::to_vec`].
pub const STATE_DIM: usize = 14;

/// Snapshot of everything the policy conditions on at one decision point.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentState {
    pub now: SimTime,
    /// Features of the most recent feedback window.
    pub window: WindowFeatures,
    /// Current configuration.
    pub config: WarehouseConfig,
    /// Queries waiting right now (live reading, not windowed).
    pub queue_depth: usize,
    /// Cache warm fraction right now.
    pub cache_warm: f64,
    /// Whether the warehouse is currently suspended.
    pub suspended: bool,
    /// Slider position.
    pub slider: SliderPosition,
}

impl AgentState {
    /// Encodes the state as a fixed-length feature vector. Scales are chosen
    /// so typical values land in roughly [-1, 2]; the DQN additionally
    /// standardizes inputs with statistics from its replay buffer.
    pub fn to_vec(&self) -> Vec<f64> {
        let two_pi = std::f64::consts::TAU;
        let day_frac = cdw_sim::time::time_of_day_fraction(self.now);
        let week_frac = (cdw_sim::time::day_index(self.now) % 7) as f64 / 7.0 + day_frac / 7.0;
        let v = vec![
            (two_pi * day_frac).sin(),
            (two_pi * day_frac).cos(),
            (two_pi * week_frac).sin(),
            (two_pi * week_frac).cos(),
            (self.window.arrival_rate_per_hour / 100.0).min(10.0),
            (self.window.mean_latency_ms / 10_000.0).min(10.0),
            (self.window.mean_queue_ms / 10_000.0).min(10.0),
            self.window.mean_concurrency.min(100.0) / 8.0,
            (self.queue_depth as f64 / 8.0).min(10.0),
            self.cache_warm,
            self.config.size.index() as f64 / 9.0,
            self.config.max_clusters as f64 / 10.0,
            (self.config.auto_suspend_ms as f64 / 600_000.0).min(6.0),
            self.slider.as_feature(),
        ];
        debug_assert_eq!(v.len(), STATE_DIM);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{WarehouseSize, HOUR_MS};

    fn state_at(now: SimTime) -> AgentState {
        AgentState {
            now,
            window: WindowFeatures::empty(now.saturating_sub(HOUR_MS), HOUR_MS),
            config: WarehouseConfig::new(WarehouseSize::Medium),
            queue_depth: 0,
            cache_warm: 0.5,
            suspended: false,
            slider: SliderPosition::Balanced,
        }
    }

    #[test]
    fn vector_has_declared_dimension() {
        assert_eq!(state_at(0).to_vec().len(), STATE_DIM);
    }

    #[test]
    fn time_features_are_cyclical() {
        let midnight = state_at(0).to_vec();
        let next_midnight = state_at(7 * 24 * HOUR_MS).to_vec();
        for i in 0..4 {
            assert!(
                (midnight[i] - next_midnight[i]).abs() < 1e-9,
                "feature {i} should repeat weekly"
            );
        }
        let noon = state_at(12 * HOUR_MS).to_vec();
        assert!((midnight[0] - noon[0]).abs() > 0.5 || (midnight[1] - noon[1]).abs() > 0.5);
    }

    #[test]
    fn features_are_bounded_under_extreme_load() {
        let mut s = state_at(0);
        s.window.arrival_rate_per_hour = 1e9;
        s.window.mean_latency_ms = 1e12;
        s.window.mean_queue_ms = 1e12;
        s.window.mean_concurrency = 1e9;
        s.queue_depth = usize::MAX / 2;
        let v = s.to_vec();
        assert!(v.iter().all(|x| x.is_finite() && x.abs() <= 15.0), "{v:?}");
    }

    #[test]
    fn config_features_reflect_knobs() {
        let mut s = state_at(0);
        let base = s.to_vec();
        s.config.size = WarehouseSize::X6Large;
        s.config.max_clusters = 10;
        let big = s.to_vec();
        assert!(big[10] > base[10]);
        assert_eq!(big[10], 1.0);
        assert_eq!(big[11], 1.0);
    }

    #[test]
    fn slider_feature_passthrough() {
        let mut s = state_at(0);
        s.slider = SliderPosition::BestPerformance;
        assert_eq!(s.to_vec()[13], 1.0);
    }
}
