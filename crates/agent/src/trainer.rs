//! Offline training on (reconstructed) historical workloads.
//!
//! The data-learning platform trains each warehouse's smart model on that
//! warehouse's own history (§4.2, C5). Here that works in three steps:
//!
//! 1. **Reconstruction** — telemetry records are turned back into executable
//!    [`QuerySpec`]s (work inferred from observed execution time and the
//!    learned size-scaling slope, template identity preserved);
//! 2. **Rollout** — episodes replay the workload on the simulator while the
//!    agent acts ε-greedily at a fixed decision cadence (Algorithm 1's
//!    `T_realtime`), accumulating credits and performance signals;
//! 3. **Q-learning** — every interval yields a transition whose reward is
//!    `−credits − λ(slider)·perf_penalty`, pushed into the replay buffer
//!    with a training step per decision.

use crate::action::AgentAction;
use crate::constraints::ConstraintSet;
use crate::dqn::{DqnAgent, Transition};
use crate::reward::{compute_reward, PerfSignals};
use crate::slider::SliderPosition;
use crate::state::AgentState;
use cdw_sim::{
    Account, ActionSource, AlterError, QueryRecord, QuerySpec, SimTime, Simulator, WarehouseConfig,
    HOUR_MS, MINUTE_MS,
};
use costmodel::LatencyScaler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use telemetry::{percentile, WindowFeatures};

/// Episode parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpisodeConfig {
    /// Decision cadence (the paper's `T_realtime`, minutes-scale).
    pub decision_interval_ms: SimTime,
    /// Baseline p99 latency (ms) the latency-ratio penalty compares
    /// against; measure it with [`baseline_p99`] under the original config.
    pub baseline_p99_ms: f64,
    /// Extra simulated time after the last arrival so trailing work and
    /// suspends resolve.
    pub tail_ms: SimTime,
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        Self {
            decision_interval_ms: 10 * MINUTE_MS,
            baseline_p99_ms: 10_000.0,
            tail_ms: HOUR_MS,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingStats {
    pub episodes: usize,
    pub transitions: usize,
    /// Mean per-interval reward over the first episode.
    pub first_episode_mean_reward: f64,
    /// Mean per-interval reward over the last episode.
    pub last_episode_mean_reward: f64,
    pub final_epsilon: f64,
}

/// Rebuilds executable query specs from telemetry records so history can be
/// replayed for training (telemetry never contains query text — only the
/// hashes and performance metrics used here, per C6).
pub fn reconstruct_specs(records: &[QueryRecord], scaler: &LatencyScaler) -> Vec<QuerySpec> {
    records
        .iter()
        .map(|r| {
            // Invert the latency model: observed exec at size s with slope b
            // maps to X-Small work of exec * 2^(-b * s_index). The slope sign
            // makes this a *multiplication* for typical negative slopes.
            let slope = scaler.slope_for(r.template_hash);
            // Strip the cold-read inflation the observation carried (the
            // record keeps the warm fraction it saw); the simulator will
            // re-apply cache effects from the replayed warehouse's state.
            let cold_factor = 1.0
                + 0.5 * (cdw_sim::exec::COLD_READ_MULTIPLIER - 1.0) * (1.0 - r.cache_warm_fraction);
            let work_xs = (r.execution_ms().max(1) as f64) / cold_factor
                * (-slope * r.size.index() as f64).exp2();
            QuerySpec::builder(r.query_id)
                .text_hash(r.text_hash)
                .template_hash(r.template_hash)
                .work_ms_xs(work_xs)
                .bytes_scanned(r.bytes_scanned)
                // The scaling exponent is the negated learned slope; cache
                // affinity is not observable from metadata, so use the
                // population prior.
                .scale_exponent((-slope).clamp(0.0, 1.5))
                .cache_affinity(0.5)
                .arrival_ms(r.arrival)
                .build()
        })
        .collect()
}

/// Measures the p99 end-to-end latency of the workload under a fixed
/// configuration with no agent actions (the performance baseline the reward
/// compares against).
pub fn baseline_p99(specs: &[QuerySpec], config: &WarehouseConfig) -> f64 {
    let (records, _) = rollout_static(specs, config);
    let lats: Vec<f64> = records
        .iter()
        .map(|r| r.total_latency_ms() as f64)
        .collect();
    percentile(&lats, 99.0)
}

/// Runs the workload under a fixed configuration, returning (records,
/// total credits). Useful for baselines and tests.
pub fn rollout_static(specs: &[QuerySpec], config: &WarehouseConfig) -> (Vec<QueryRecord>, f64) {
    let mut account = Account::new();
    let wh = account.create_warehouse("TRAIN", config.clone());
    let mut sim = Simulator::new(account);
    for spec in specs {
        sim.submit_query(wh, spec.clone());
    }
    let horizon = specs.iter().map(|s| s.arrival).max().unwrap_or(0) + HOUR_MS;
    sim.run_until(horizon);
    // Accrued (not just ledgered) credits: a warehouse that never suspends
    // has an open billing session whose cost must still count.
    let credits = sim.account().accrued_credits(wh, horizon);
    (sim.account().query_records().to_vec(), credits)
}

/// Trains `agent` by rolling out `episodes` passes over the workload.
/// Returns training statistics; the agent is mutated in place.
#[allow(clippy::too_many_arguments)]
pub fn train_on_workload(
    agent: &mut DqnAgent,
    specs: &[QuerySpec],
    base_config: &WarehouseConfig,
    slider: SliderPosition,
    constraints: &ConstraintSet,
    episode_cfg: &EpisodeConfig,
    episodes: usize,
    seed: u64,
) -> TrainingStats {
    let mut stats = TrainingStats::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = specs.iter().map(|s| s.arrival).max().unwrap_or(0) + episode_cfg.tail_ms;

    for ep in 0..episodes {
        let mean_reward = run_episode(
            agent,
            specs,
            base_config,
            slider,
            constraints,
            episode_cfg,
            horizon,
            &mut rng,
            &mut stats.transitions,
        );
        if ep == 0 {
            stats.first_episode_mean_reward = mean_reward;
        }
        stats.last_episode_mean_reward = mean_reward;
        stats.episodes += 1;
    }
    stats.final_epsilon = agent.epsilon();
    stats
}

#[allow(clippy::too_many_arguments)]
fn run_episode(
    agent: &mut DqnAgent,
    specs: &[QuerySpec],
    base_config: &WarehouseConfig,
    slider: SliderPosition,
    constraints: &ConstraintSet,
    episode_cfg: &EpisodeConfig,
    horizon: SimTime,
    rng: &mut StdRng,
    transitions: &mut usize,
) -> f64 {
    let mut account = Account::new();
    let wh = account.create_warehouse("TRAIN", base_config.clone());
    let mut sim = Simulator::new(account);
    for spec in specs {
        sim.submit_query(wh, spec.clone());
    }

    let interval = episode_cfg.decision_interval_ms;
    let mut prev: Option<(Vec<f64>, usize)> = None;
    let mut prev_credits = 0.0;
    let mut prev_dropped = 0;
    let mut reward_sum = 0.0;
    let mut reward_count = 0usize;

    let mut t = interval;
    while t <= horizon {
        sim.run_until(t);
        let desc = sim.account().describe(wh);
        let window_records: Vec<&QueryRecord> = sim
            .account()
            .query_records()
            .iter()
            .filter(|r| r.end + interval > t) // completed in the last interval
            .collect();
        let window = WindowFeatures::compute(&window_records, t - interval, interval);

        let state = AgentState {
            now: t,
            window: window.clone(),
            config: desc.config.clone(),
            queue_depth: desc.queued_queries,
            cache_warm: sim.account().warehouse(wh).cache_warm_fraction(),
            suspended: desc.is_suspended,
            slider,
        };
        let state_vec = state.to_vec();
        let mask = constraints.action_mask(&desc.config, t);

        // Reward for the action taken at the previous decision point.
        let credits_now = sim.account().accrued_credits(wh, t);
        let dropped_now = sim.account().warehouse(wh).dropped_queries();
        if let Some((prev_state, prev_action)) = prev.take() {
            let p99 = if window.p99_latency_ms > 0.0 {
                window.p99_latency_ms
            } else {
                episode_cfg.baseline_p99_ms
            };
            let perf = PerfSignals {
                mean_queue_s: window.mean_queue_ms / 1000.0,
                latency_ratio: p99 / episode_cfg.baseline_p99_ms.max(1.0),
                dropped_queries: dropped_now - prev_dropped,
            };
            let churn = if prev_action == AgentAction::NoOp.index() {
                0.0
            } else {
                crate::reward::ACTION_CHURN_PENALTY
            };
            let reward = compute_reward(credits_now - prev_credits, &perf, slider) - churn;
            reward_sum += reward;
            reward_count += 1;
            let terminal = t + interval > horizon;
            agent.observe(Transition {
                state: prev_state,
                action: prev_action,
                reward,
                next_state: state_vec.clone(),
                next_mask: mask,
                terminal,
            });
            *transitions += 1;
            agent.train_step(rng);
        }
        prev_credits = credits_now;
        prev_dropped = dropped_now;

        let action = agent.select_action(&state_vec, &mask, rng, true);
        for cmd in action.to_commands(&desc.config) {
            match sim.alter_warehouse(wh, cmd, ActionSource::Keebo) {
                Ok(()) | Err(AlterError::AlreadySuspended) | Err(AlterError::AlreadyRunning) => {}
                // lint: allow(D5) — training harness fail-fast; silent actuation loss corrupts rewards
                Err(e) => panic!("actuation failed during training: {e}"),
            }
        }
        if action == AgentAction::SuspendNow {
            // Suspending may error if already suspended; handled above.
        }
        prev = Some((state_vec, action.index()));
        t += interval;
    }

    if reward_count == 0 {
        0.0
    } else {
        reward_sum / reward_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dqn::DqnConfig;
    use cdw_sim::WarehouseSize;

    fn sparse_specs() -> Vec<QuerySpec> {
        // A few queries per hour over 12 hours — lots of idle time, so the
        // cost-optimal policy suspends aggressively.
        (0..12u64)
            .map(|h| {
                QuerySpec::builder(h)
                    .work_ms_xs(30_000.0)
                    .cache_affinity(0.2)
                    .arrival_ms(h * HOUR_MS + 5 * MINUTE_MS)
                    .build()
            })
            .collect()
    }

    fn big_idle_config() -> WarehouseConfig {
        WarehouseConfig::new(WarehouseSize::Large).with_auto_suspend_secs(3600)
    }

    #[test]
    fn reconstruction_round_trips_work_under_default_slope() {
        let rec = QueryRecord {
            query_id: 1,
            warehouse: "WH".into(),
            size: WarehouseSize::Medium,
            cluster_count: 1,
            text_hash: 5,
            template_hash: 9,
            arrival: 100,
            start: 100,
            end: 100 + 4_000,
            bytes_scanned: 77,
            cache_warm_fraction: 1.0,
        };
        let specs = reconstruct_specs(&[rec], &LatencyScaler::default());
        assert_eq!(specs.len(), 1);
        let s = &specs[0];
        // Default slope -1: 4 s on Medium (index 2) -> 16 s of X-Small work.
        assert!((s.work_ms_xs - 16_000.0).abs() < 1.0, "{}", s.work_ms_xs);
        assert_eq!(s.template_hash, 9);
        assert_eq!(s.arrival, 100);
        assert_eq!(s.scale_exponent, 1.0);
    }

    #[test]
    fn baseline_p99_is_positive_for_nonempty_workload() {
        let p99 = baseline_p99(&sparse_specs(), &big_idle_config());
        assert!(p99 > 0.0);
    }

    #[test]
    fn rollout_static_executes_every_query() {
        let specs = sparse_specs();
        let (records, credits) = rollout_static(&specs, &big_idle_config());
        assert_eq!(records.len(), specs.len());
        assert!(credits > 0.0);
    }

    #[test]
    fn training_runs_and_accumulates_transitions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = DqnAgent::new(
            DqnConfig {
                batch_size: 8,
                epsilon_decay_steps: 50,
                ..DqnConfig::default()
            },
            &mut rng,
        );
        let specs = sparse_specs();
        let cfg = big_idle_config();
        let ep_cfg = EpisodeConfig {
            decision_interval_ms: 30 * MINUTE_MS,
            baseline_p99_ms: baseline_p99(&specs, &cfg).max(1.0),
            tail_ms: HOUR_MS,
        };
        let stats = train_on_workload(
            &mut agent,
            &specs,
            &cfg,
            SliderPosition::Balanced,
            &ConstraintSet::new(),
            &ep_cfg,
            3,
            7,
        );
        assert_eq!(stats.episodes, 3);
        assert!(stats.transitions > 50, "transitions {}", stats.transitions);
        assert!(agent.replay_len() > 0);
        assert!(stats.final_epsilon < 1.0);
    }

    #[test]
    fn trained_agent_beats_static_on_idle_heavy_workload() {
        // The economics here are stark: a Large warehouse with 1 h
        // auto-suspend burns ~8 credits/h around the clock for 6 minutes of
        // work per hour. Nearly any learned movement toward smaller sizes or
        // shorter suspends wins; the test asserts the *direction*, not a
        // specific magnitude.
        let specs = sparse_specs();
        let cfg = big_idle_config();
        let (_, static_credits) = rollout_static(&specs, &cfg);

        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = DqnAgent::new(
            DqnConfig {
                batch_size: 16,
                epsilon_decay_steps: 300,
                ..DqnConfig::default()
            },
            &mut rng,
        );
        let ep_cfg = EpisodeConfig {
            decision_interval_ms: 30 * MINUTE_MS,
            baseline_p99_ms: baseline_p99(&specs, &cfg).max(1.0),
            tail_ms: HOUR_MS,
        };
        train_on_workload(
            &mut agent,
            &specs,
            &cfg,
            SliderPosition::LowestCost,
            &ConstraintSet::new(),
            &ep_cfg,
            8,
            2,
        );

        // Greedy evaluation episode.
        let mut account = Account::new();
        let wh = account.create_warehouse("EVAL", cfg.clone());
        let mut sim = Simulator::new(account);
        for s in &specs {
            sim.submit_query(wh, s.clone());
        }
        let horizon = 13 * HOUR_MS;
        let mut t = 30 * MINUTE_MS;
        while t <= horizon {
            sim.run_until(t);
            let desc = sim.account().describe(wh);
            let state = AgentState {
                now: t,
                window: WindowFeatures::empty(t - 30 * MINUTE_MS, 30 * MINUTE_MS),
                config: desc.config.clone(),
                queue_depth: desc.queued_queries,
                cache_warm: sim.account().warehouse(wh).cache_warm_fraction(),
                suspended: desc.is_suspended,
                slider: SliderPosition::LowestCost,
            };
            let mask = ConstraintSet::new().action_mask(&desc.config, t);
            let action = agent.greedy_action(&state.to_vec(), &mask);
            for cmd in action.to_commands(&desc.config) {
                let _ = sim.alter_warehouse(wh, cmd, ActionSource::Keebo);
            }
            t += 30 * MINUTE_MS;
        }
        sim.run_until(horizon);
        let agent_credits = sim.account().accrued_credits(wh, horizon);
        assert!(
            agent_credits < static_credits,
            "trained agent ({agent_credits:.2}) should beat static ({static_credits:.2})"
        );
    }
}
