//! The five-position cost/performance slider (§4.1).
//!
//! "KWO provides a single slider per each warehouse ... with five positions
//! ranging from 'Best Performance' to 'Lowest Cost' ... KWO simplifies the
//! tuning of the aggressiveness for various optimizations by unifying them
//! into a single slider, and mapping it internally to various
//! hyper-parameters of the learning algorithm."
//!
//! The mapping here: the slider sets (i) the reward's performance-penalty
//! weight λ, (ii) how much capacity headroom the policy should keep, and
//! (iii) how twitchy the monitoring back-off is.

use serde::{Deserialize, Serialize};

/// Slider position, ordered from cheapest to most performance-protective.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum SliderPosition {
    /// Position 1: accept noticeable slowdowns for maximum savings.
    LowestCost,
    /// Position 2: accept small slowdowns.
    LowCost,
    /// Position 3 (default): cut cost without degrading performance.
    #[default]
    Balanced,
    /// Position 4: provision headroom for spikes.
    GoodPerformance,
    /// Position 5: performance at (almost) any price.
    BestPerformance,
}

impl SliderPosition {
    /// All positions, cheapest first.
    pub const ALL: [SliderPosition; 5] = [
        SliderPosition::LowestCost,
        SliderPosition::LowCost,
        SliderPosition::Balanced,
        SliderPosition::GoodPerformance,
        SliderPosition::BestPerformance,
    ];

    /// 1-based UI value (1 = Lowest Cost ... 5 = Best Performance).
    pub fn value(self) -> u8 {
        match self {
            SliderPosition::LowestCost => 1,
            SliderPosition::LowCost => 2,
            SliderPosition::Balanced => 3,
            SliderPosition::GoodPerformance => 4,
            SliderPosition::BestPerformance => 5,
        }
    }

    /// From the 1-based UI value.
    pub fn from_value(v: u8) -> Option<Self> {
        Self::ALL.get((v as usize).checked_sub(1)?).copied()
    }

    /// λ: weight of the performance penalty in the reward. Larger values
    /// make slowdowns costlier than credits, so the policy provisions more.
    pub fn perf_penalty_weight(self) -> f64 {
        match self {
            SliderPosition::LowestCost => 0.1,
            SliderPosition::LowCost => 0.5,
            SliderPosition::Balanced => 5.0,
            SliderPosition::GoodPerformance => 12.0,
            SliderPosition::BestPerformance => 30.0,
        }
    }

    /// Live queue depth at which monitoring backs off regardless of
    /// windowed statistics (catches spikes between completions).
    pub fn backoff_queue_depth(self) -> usize {
        match self {
            SliderPosition::LowestCost => 64,
            SliderPosition::LowCost => 32,
            SliderPosition::Balanced => 12,
            SliderPosition::GoodPerformance => 4,
            SliderPosition::BestPerformance => 1,
        }
    }

    /// Queue pressure (mean queued seconds per query over the feedback
    /// interval) above which monitoring forces a conservative back-off.
    pub fn backoff_queue_threshold_s(self) -> f64 {
        match self {
            SliderPosition::LowestCost => 120.0,
            SliderPosition::LowCost => 45.0,
            SliderPosition::Balanced => 15.0,
            SliderPosition::GoodPerformance => 5.0,
            SliderPosition::BestPerformance => 1.0,
        }
    }

    /// Latency-ratio threshold (current p99 / trained baseline p99) above
    /// which monitoring backs off.
    pub fn backoff_latency_ratio(self) -> f64 {
        match self {
            SliderPosition::LowestCost => 4.0,
            SliderPosition::LowCost => 2.5,
            SliderPosition::Balanced => 1.6,
            SliderPosition::GoodPerformance => 1.25,
            SliderPosition::BestPerformance => 1.1,
        }
    }

    /// Capacity headroom the heuristic components aim for (fraction of
    /// estimated demand held in reserve).
    pub fn headroom(self) -> f64 {
        match self {
            SliderPosition::LowestCost => 0.0,
            SliderPosition::LowCost => 0.1,
            SliderPosition::Balanced => 0.25,
            SliderPosition::GoodPerformance => 0.5,
            SliderPosition::BestPerformance => 1.0,
        }
    }

    /// Normalized slider feature for the state vector, in [0, 1].
    pub fn as_feature(self) -> f64 {
        (self.value() - 1) as f64 / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        for s in SliderPosition::ALL {
            assert_eq!(SliderPosition::from_value(s.value()), Some(s));
        }
        assert_eq!(SliderPosition::from_value(0), None);
        assert_eq!(SliderPosition::from_value(6), None);
    }

    #[test]
    fn default_is_balanced() {
        assert_eq!(SliderPosition::default(), SliderPosition::Balanced);
    }

    #[test]
    fn penalty_weight_is_monotone_in_performance() {
        for pair in SliderPosition::ALL.windows(2) {
            assert!(pair[1].perf_penalty_weight() > pair[0].perf_penalty_weight());
        }
    }

    #[test]
    fn backoff_thresholds_tighten_toward_performance() {
        for pair in SliderPosition::ALL.windows(2) {
            assert!(pair[1].backoff_queue_threshold_s() < pair[0].backoff_queue_threshold_s());
            assert!(pair[1].backoff_latency_ratio() < pair[0].backoff_latency_ratio());
            assert!(pair[1].backoff_queue_depth() < pair[0].backoff_queue_depth());
        }
    }

    #[test]
    fn headroom_grows_toward_performance() {
        for pair in SliderPosition::ALL.windows(2) {
            assert!(pair[1].headroom() > pair[0].headroom());
        }
    }

    #[test]
    fn feature_spans_unit_interval() {
        assert_eq!(SliderPosition::LowestCost.as_feature(), 0.0);
        assert_eq!(SliderPosition::Balanced.as_feature(), 0.5);
        assert_eq!(SliderPosition::BestPerformance.as_feature(), 1.0);
    }
}
