//! Baseline policies.
//!
//! The paper's implicit baselines (§3): customers either leave the
//! out-of-box configuration alone ([`StaticPolicy`]) or apply rules of
//! thumb, most commonly a fixed short auto-suspend interval
//! ([`AutoSuspendRuleOfThumb`]) — "there are several rules of thumb for
//! setting the auto-suspend interval, but all of them ... provide no
//! guarantees on optimal cost or performance." The benchmark harness runs
//! these baselines against the DQN policy.

use crate::action::{AgentAction, AUTO_SUSPEND_LADDER_MS};
use crate::state::AgentState;

/// Anything that can pick an action for a warehouse at a decision point.
pub trait Policy {
    /// Chooses an action. The mask has already removed non-compliant and
    /// inapplicable actions; implementations must pick a mask-true action.
    fn decide(
        &mut self,
        state: &AgentState,
        mask: &[bool; AgentAction::COUNT],
        rng: &mut dyn rand::RngCore,
    ) -> AgentAction;

    /// Name for logs and reports.
    fn name(&self) -> &str;
}

/// Never touches anything: the customer's original configuration as-is.
#[derive(Debug, Clone, Default)]
pub struct StaticPolicy;

impl Policy for StaticPolicy {
    fn decide(
        &mut self,
        _state: &AgentState,
        _mask: &[bool; AgentAction::COUNT],
        _rng: &mut dyn rand::RngCore,
    ) -> AgentAction {
        AgentAction::NoOp
    }

    fn name(&self) -> &str {
        "static"
    }
}

/// The folk wisdom: pin auto-suspend to a fixed short value (default 60 s)
/// and leave everything else alone.
#[derive(Debug, Clone)]
pub struct AutoSuspendRuleOfThumb {
    /// Target auto-suspend (one of the ladder rungs).
    pub target_ms: u64,
}

impl Default for AutoSuspendRuleOfThumb {
    fn default() -> Self {
        Self {
            target_ms: AUTO_SUSPEND_LADDER_MS[1], // 60 s
        }
    }
}

impl Policy for AutoSuspendRuleOfThumb {
    fn decide(
        &mut self,
        state: &AgentState,
        mask: &[bool; AgentAction::COUNT],
        _rng: &mut dyn rand::RngCore,
    ) -> AgentAction {
        let current = state.config.auto_suspend_ms;
        let step = if current > self.target_ms {
            AgentAction::AutoSuspendDown
        } else if current < self.target_ms {
            AgentAction::AutoSuspendUp
        } else {
            AgentAction::NoOp
        };
        if mask[step.index()] {
            step
        } else {
            AgentAction::NoOp
        }
    }

    fn name(&self) -> &str {
        "auto-suspend-rule-of-thumb"
    }
}

/// Conservative fallback for degraded operation (stale telemetry).
///
/// When the telemetry feed is down, windowed features describe the past,
/// not the present — so this policy ignores them entirely and reacts only
/// to *live* control-plane signals (queue depth from `DESCRIBE`, which
/// stays fresh during a metadata outage). It will add capacity to protect
/// performance but never removes any: cost optimization waits until the
/// optimizer can see again.
#[derive(Debug, Clone)]
pub struct DegradedFallback {
    /// Queue depth at which capacity is added.
    pub queue_depth_threshold: usize,
}

impl Default for DegradedFallback {
    fn default() -> Self {
        Self {
            queue_depth_threshold: 4,
        }
    }
}

impl Policy for DegradedFallback {
    fn decide(
        &mut self,
        state: &AgentState,
        mask: &[bool; AgentAction::COUNT],
        _rng: &mut dyn rand::RngCore,
    ) -> AgentAction {
        if state.queue_depth >= self.queue_depth_threshold {
            if mask[AgentAction::ClustersUp.index()] {
                return AgentAction::ClustersUp;
            }
            if mask[AgentAction::SizeUp.index()] {
                return AgentAction::SizeUp;
            }
        }
        AgentAction::NoOp
    }

    fn name(&self) -> &str {
        "degraded-fallback"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slider::SliderPosition;
    use cdw_sim::{WarehouseConfig, WarehouseSize, HOUR_MS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use telemetry::WindowFeatures;

    fn state_with_auto_suspend(ms: u64) -> AgentState {
        let mut config = WarehouseConfig::new(WarehouseSize::Small);
        config.auto_suspend_ms = ms;
        AgentState {
            now: 0,
            window: WindowFeatures::empty(0, HOUR_MS),
            config,
            queue_depth: 0,
            cache_warm: 0.0,
            suspended: false,
            slider: SliderPosition::Balanced,
        }
    }

    #[test]
    fn static_policy_always_noops() {
        let mut p = StaticPolicy;
        let mut rng = StdRng::seed_from_u64(0);
        let s = state_with_auto_suspend(600_000);
        assert_eq!(
            p.decide(&s, &[true; AgentAction::COUNT], &mut rng),
            AgentAction::NoOp
        );
    }

    #[test]
    fn rule_of_thumb_walks_toward_target() {
        let mut p = AutoSuspendRuleOfThumb::default();
        let mut rng = StdRng::seed_from_u64(0);
        let mask = [true; AgentAction::COUNT];
        let high = state_with_auto_suspend(600_000);
        assert_eq!(
            p.decide(&high, &mask, &mut rng),
            AgentAction::AutoSuspendDown
        );
        let low = state_with_auto_suspend(30_000);
        assert_eq!(p.decide(&low, &mask, &mut rng), AgentAction::AutoSuspendUp);
        let there = state_with_auto_suspend(60_000);
        assert_eq!(p.decide(&there, &mask, &mut rng), AgentAction::NoOp);
    }

    #[test]
    fn rule_of_thumb_respects_mask() {
        let mut p = AutoSuspendRuleOfThumb::default();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mask = [true; AgentAction::COUNT];
        mask[AgentAction::AutoSuspendDown.index()] = false;
        let high = state_with_auto_suspend(600_000);
        assert_eq!(p.decide(&high, &mask, &mut rng), AgentAction::NoOp);
    }

    #[test]
    fn degraded_fallback_noops_without_queue_pressure() {
        let mut p = DegradedFallback::default();
        let mut rng = StdRng::seed_from_u64(0);
        let s = state_with_auto_suspend(600_000);
        assert_eq!(
            p.decide(&s, &[true; AgentAction::COUNT], &mut rng),
            AgentAction::NoOp
        );
    }

    #[test]
    fn degraded_fallback_adds_capacity_under_pressure() {
        let mut p = DegradedFallback::default();
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = state_with_auto_suspend(600_000);
        s.queue_depth = 6;
        let mask = [true; AgentAction::COUNT];
        assert_eq!(p.decide(&s, &mask, &mut rng), AgentAction::ClustersUp);
        // Clusters saturated → escalate to a resize.
        let mut no_clusters = mask;
        no_clusters[AgentAction::ClustersUp.index()] = false;
        assert_eq!(p.decide(&s, &no_clusters, &mut rng), AgentAction::SizeUp);
        // Nothing allowed → hold.
        let mut neither = no_clusters;
        neither[AgentAction::SizeUp.index()] = false;
        assert_eq!(p.decide(&s, &neither, &mut rng), AgentAction::NoOp);
    }
}
