//! Customer constraints (§4.1 "Constraints", §4.3).
//!
//! "In each rule, the customers can disallow or allow certain optimizations
//! or enforce certain resources during certain hours of the day or days of
//! the week for each warehouse." Constraints are *hard*: "the smart model
//! never takes actions that violate the customer constraints ...
//! non-compliant actions are cancelled and replaced with the next best
//! action that complies".

use crate::action::AgentAction;
use cdw_sim::{SimTime, WarehouseConfig, WarehouseSize};
use serde::{Deserialize, Serialize};

/// A recurring weekly time window: days of week (sim weekday 0–6) and an
/// hour range `[start_hour, end_hour)`. `days = None` means every day.
/// Windows may wrap midnight (`start_hour > end_hour`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    pub days: Option<Vec<u8>>,
    pub start_hour: f64,
    pub end_hour: f64,
}

impl TimeWindow {
    /// A window covering all of every day.
    pub fn always() -> Self {
        Self {
            days: None,
            start_hour: 0.0,
            end_hour: 24.0,
        }
    }

    /// A daily window `[start_hour, end_hour)`.
    pub fn daily(start_hour: f64, end_hour: f64) -> Self {
        Self {
            days: None,
            start_hour,
            end_hour,
        }
    }

    /// Restricts the window to specific sim weekdays (0–6).
    pub fn on_days(mut self, days: Vec<u8>) -> Self {
        self.days = Some(days);
        self
    }

    /// True when `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        if let Some(days) = &self.days {
            if !days.contains(&cdw_sim::time::day_of_week(t)) {
                return false;
            }
        }
        let h = cdw_sim::time::hour_of_day(t);
        if self.start_hour <= self.end_hour {
            (self.start_hour..self.end_hour).contains(&h)
        } else {
            // Wraps midnight.
            h >= self.start_hour || h < self.end_hour
        }
    }
}

/// What a rule enforces while its window is active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuleEffect {
    /// The warehouse may not be smaller than this size.
    MinSize(WarehouseSize),
    /// The warehouse may not be larger than this size.
    MaxSize(WarehouseSize),
    /// No resize below the *current* size (the paper's "cannot be downsized
    /// even if underutilized").
    NoDownsize,
    /// No suspension (neither SuspendNow nor shortening auto-suspend below
    /// the given floor).
    NoSuspend,
    /// At least this many clusters must be allowed.
    MinClusters(u32),
    /// At most this many clusters may be allowed.
    MaxClusters(u32),
    /// Auto-suspend may not drop below this many milliseconds.
    MinAutoSuspendMs(SimTime),
}

/// One named rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    pub name: String,
    pub window: TimeWindow,
    pub effect: RuleEffect,
}

impl Rule {
    pub fn new(name: impl Into<String>, window: TimeWindow, effect: RuleEffect) -> Self {
        Self {
            name: name.into(),
            window,
            effect,
        }
    }

    /// Does the configuration this action would produce comply with the
    /// rule at time `t`?
    fn allows(&self, action: AgentAction, current: &WarehouseConfig, t: SimTime) -> bool {
        if !self.window.contains(t) {
            return true;
        }
        let next = action.target_config(current);
        match &self.effect {
            RuleEffect::MinSize(min) => next.size >= *min,
            RuleEffect::MaxSize(max) => next.size <= *max,
            RuleEffect::NoDownsize => next.size >= current.size,
            RuleEffect::NoSuspend => {
                action != AgentAction::SuspendNow && next.auto_suspend_ms >= current.auto_suspend_ms
            }
            RuleEffect::MinClusters(min) => next.max_clusters >= *min,
            RuleEffect::MaxClusters(max) => next.max_clusters <= *max,
            RuleEffect::MinAutoSuspendMs(floor) => next.auto_suspend_ms >= *floor,
        }
    }
}

/// All rules for one warehouse.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    rules: Vec<Rule>,
}

impl ConstraintSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    pub fn add(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// True when `action` from `current` complies with every rule at `t`.
    pub fn allows(&self, action: AgentAction, current: &WarehouseConfig, t: SimTime) -> bool {
        self.rules.iter().all(|r| r.allows(action, current, t))
    }

    /// Action mask aligned with [`AgentAction::ALL`]: compliant *and*
    /// applicable actions only. `NoOp` is always allowed so the mask is
    /// never empty (the paper's "next best action that complies" always
    /// exists).
    pub fn action_mask(&self, current: &WarehouseConfig, t: SimTime) -> [bool; AgentAction::COUNT] {
        let mut mask = [false; AgentAction::COUNT];
        for (i, a) in AgentAction::ALL.iter().enumerate() {
            mask[i] = *a == AgentAction::NoOp
                || (a.is_applicable(current) && self.allows(*a, current, t));
        }
        mask
    }

    /// Names of rules the action would violate at `t` (for action logs).
    pub fn violations(
        &self,
        action: AgentAction,
        current: &WarehouseConfig,
        t: SimTime,
    ) -> Vec<&str> {
        self.rules
            .iter()
            .filter(|r| !r.allows(action, current, t))
            .map(|r| r.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::HOUR_MS;

    fn cfg(size: WarehouseSize) -> WarehouseConfig {
        WarehouseConfig::new(size)
            .with_auto_suspend_secs(300)
            .with_clusters(1, 3)
    }

    #[test]
    fn window_contains_basics() {
        let w = TimeWindow::daily(9.0, 9.5);
        assert!(w.contains(9 * HOUR_MS));
        assert!(w.contains(9 * HOUR_MS + 20 * 60_000));
        assert!(!w.contains(10 * HOUR_MS));
        assert!(!w.contains(8 * HOUR_MS));
    }

    #[test]
    fn window_wraps_midnight() {
        let w = TimeWindow::daily(22.0, 2.0);
        assert!(w.contains(23 * HOUR_MS));
        assert!(w.contains(HOUR_MS));
        assert!(!w.contains(12 * HOUR_MS));
    }

    #[test]
    fn window_day_filter() {
        let w = TimeWindow::daily(0.0, 24.0).on_days(vec![0]); // sim-Mondays
        assert!(w.contains(HOUR_MS)); // day 0
        assert!(!w.contains(24 * HOUR_MS + HOUR_MS)); // day 1
        assert!(w.contains(7 * 24 * HOUR_MS)); // day 7 = weekday 0 again
    }

    #[test]
    fn no_downsize_rule_blocks_size_down_in_window() {
        // The paper's example: 9:00–9:30 the BI warehouse must not downsize.
        let cs = ConstraintSet::new().with_rule(Rule::new(
            "protect-morning-bi",
            TimeWindow::daily(9.0, 9.5),
            RuleEffect::NoDownsize,
        ));
        let c = cfg(WarehouseSize::Large);
        let in_window = 9 * HOUR_MS + 60_000;
        let outside = 11 * HOUR_MS;
        assert!(!cs.allows(AgentAction::SizeDown, &c, in_window));
        assert!(cs.allows(AgentAction::SizeUp, &c, in_window));
        assert!(cs.allows(AgentAction::SizeDown, &c, outside));
    }

    #[test]
    fn min_size_rule_enforces_floor() {
        let cs = ConstraintSet::new().with_rule(Rule::new(
            "xl-mornings",
            TimeWindow::daily(9.0, 9.5),
            RuleEffect::MinSize(WarehouseSize::XLarge),
        ));
        let c = cfg(WarehouseSize::XLarge);
        assert!(!cs.allows(AgentAction::SizeDown, &c, 9 * HOUR_MS));
        // Even NoOp passes: the rule constrains *changes*, and current
        // already complies.
        assert!(cs.allows(AgentAction::NoOp, &c, 9 * HOUR_MS));
    }

    #[test]
    fn no_suspend_blocks_suspend_and_shorter_auto_suspend() {
        let cs = ConstraintSet::new().with_rule(Rule::new(
            "no-suspend",
            TimeWindow::always(),
            RuleEffect::NoSuspend,
        ));
        let c = cfg(WarehouseSize::Small);
        assert!(!cs.allows(AgentAction::SuspendNow, &c, 0));
        assert!(!cs.allows(AgentAction::AutoSuspendDown, &c, 0));
        assert!(cs.allows(AgentAction::AutoSuspendUp, &c, 0));
    }

    #[test]
    fn min_clusters_rule() {
        // The paper's example: minimum of 3 clusters in the window.
        let cs = ConstraintSet::new().with_rule(Rule::new(
            "morning-parallelism",
            TimeWindow::daily(9.0, 9.5),
            RuleEffect::MinClusters(3),
        ));
        let c = cfg(WarehouseSize::Small); // max_clusters = 3
        assert!(!cs.allows(AgentAction::ClustersDown, &c, 9 * HOUR_MS));
        assert!(cs.allows(AgentAction::ClustersDown, &c, 12 * HOUR_MS));
    }

    #[test]
    fn mask_always_permits_noop() {
        let cs = ConstraintSet::new()
            .with_rule(Rule::new("a", TimeWindow::always(), RuleEffect::NoDownsize))
            .with_rule(Rule::new("b", TimeWindow::always(), RuleEffect::NoSuspend))
            .with_rule(Rule::new(
                "c",
                TimeWindow::always(),
                RuleEffect::MaxSize(WarehouseSize::XSmall),
            ))
            .with_rule(Rule::new(
                "d",
                TimeWindow::always(),
                RuleEffect::MaxClusters(1),
            ));
        let c = WarehouseConfig::new(WarehouseSize::XSmall);
        let mask = cs.action_mask(&c, 0);
        assert!(mask[AgentAction::NoOp.index()]);
        assert!(!mask[AgentAction::SizeUp.index()]);
        assert!(!mask[AgentAction::SuspendNow.index()]);
        assert!(mask.iter().any(|&m| m));
    }

    #[test]
    fn mask_excludes_inapplicable_actions() {
        let cs = ConstraintSet::new();
        let c = WarehouseConfig::new(WarehouseSize::XSmall); // can't size down
        let mask = cs.action_mask(&c, 0);
        assert!(!mask[AgentAction::SizeDown.index()]);
        assert!(mask[AgentAction::SizeUp.index()]);
    }

    #[test]
    fn violations_name_the_offending_rules() {
        let cs = ConstraintSet::new()
            .with_rule(Rule::new(
                "keep-big",
                TimeWindow::always(),
                RuleEffect::NoDownsize,
            ))
            .with_rule(Rule::new(
                "floor",
                TimeWindow::always(),
                RuleEffect::MinSize(WarehouseSize::Medium),
            ));
        let c = cfg(WarehouseSize::Medium);
        let v = cs.violations(AgentAction::SizeDown, &c, 0);
        assert_eq!(v, vec!["keep-big", "floor"]);
        assert!(cs.violations(AgentAction::SizeUp, &c, 0).is_empty());
    }

    #[test]
    fn empty_set_allows_everything_applicable() {
        let cs = ConstraintSet::new();
        let c = cfg(WarehouseSize::Medium);
        for a in AgentAction::ALL {
            assert!(cs.allows(a, &c, 0));
        }
    }
}
