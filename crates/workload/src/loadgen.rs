//! Seeded load generators for the serving gateway.
//!
//! The gateway (`keebo::gateway`) admits client requests between control
//! ticks; this module produces those request streams without depending on
//! the control plane itself. Events are *abstract* — tenant/warehouse
//! names, a priority class, and an operation sketch — and the bench maps
//! them onto concrete gateway requests.
//!
//! Two classic shapes:
//!
//! * **open loop** ([`open_loop_plan`]): request counts per tenant per tick
//!   are drawn up front from the seed, independent of how the system
//!   responds — the load that exposes shedding and queue growth under
//!   overload;
//! * **closed loop** ([`ClosedLoopDriver`]): a fixed population of clients,
//!   each with at most one outstanding request, that only issues its next
//!   request after hearing the outcome of the previous one (admitted →
//!   think time; shed → backoff). Feedback arrives via
//!   [`ClosedLoopDriver::on_outcome`], so the request *sequence* adapts to
//!   the gateway's decisions while remaining a pure function of the seed
//!   and those decisions.
//!
//! Both are deterministic: same seed + same outcome feedback ⇒ the same
//! events in the same order, on any machine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Priority class of a generated request (maps onto the gateway's classes;
/// kept separate so this crate stays independent of the control plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPriority {
    Interactive,
    Batch,
}

/// What the generated client asks for. Operation parameters are sketches;
/// the bench fleshes them out into full gateway requests.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadOp {
    /// Run a query of roughly this much work (ms on an X-Small).
    SubmitQuery { work_ms: f64 },
    /// Move the cost/performance slider to position `0..5`.
    SetSlider { position: u8 },
    /// Add a constraint rule.
    EditConstraint,
    /// Read the decision trace.
    TraceQuery,
}

/// One generated request: which tick window it arrives in, who it is from,
/// and what it asks.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadEvent {
    /// Control-tick window the request arrives in (requests with
    /// `tick == k` are submitted after `k` ticks have run).
    pub tick: u64,
    pub tenant: String,
    pub warehouse: String,
    pub priority: LoadPriority,
    pub op: LoadOp,
    /// Closed-loop client index, for feedback routing; `None` for
    /// open-loop events.
    pub client: Option<usize>,
}

/// FNV-1a over a label, folded into `root` splitmix-style — the same
/// name-derived stream idiom the control plane uses, reimplemented here so
/// the workload crate stays dependency-light.
fn stream_seed(root: u64, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ root.rotate_left(17);
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer decorrelates nearby hashes.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws one operation for a client of the given priority. Interactive
/// clients skew toward dashboards (short queries, traces, admin actions);
/// batch clients submit heavier work.
fn draw_op(rng: &mut StdRng, priority: LoadPriority) -> LoadOp {
    match priority {
        LoadPriority::Interactive => match rng.gen_range(0u32..10) {
            0..=5 => LoadOp::SubmitQuery {
                work_ms: rng.gen_range(500.0..5_000.0),
            },
            6..=7 => LoadOp::TraceQuery,
            8 => LoadOp::SetSlider {
                position: rng.gen_range(0..5),
            },
            _ => LoadOp::EditConstraint,
        },
        LoadPriority::Batch => LoadOp::SubmitQuery {
            work_ms: rng.gen_range(20_000.0..120_000.0),
        },
    }
}

/// An open-loop plan: for each of `ticks` windows, each tenant issues a
/// seed-drawn number of requests with mean `mean_per_tick`,
/// `interactive_fraction` of them interactive. Tenants are `(tenant,
/// warehouses)` pairs; each event picks one warehouse. Events are ordered
/// by (tick, tenant position, draw order) — the submission order the bench
/// replays.
pub fn open_loop_plan(
    seed: u64,
    tenants: &[(String, Vec<String>)],
    ticks: u64,
    mean_per_tick: f64,
    interactive_fraction: f64,
) -> Vec<LoadEvent> {
    assert!(mean_per_tick >= 0.0, "mean must be non-negative");
    assert!(
        (0.0..=1.0).contains(&interactive_fraction),
        "fraction must be in [0, 1]"
    );
    let mut events = Vec::new();
    for (tenant, warehouses) in tenants {
        assert!(!warehouses.is_empty(), "tenant {tenant} has no warehouses");
        let mut rng = StdRng::seed_from_u64(stream_seed(seed, tenant));
        for tick in 0..ticks {
            // Poisson-ish: mean ± uniform half-width, never negative.
            let n = (mean_per_tick + (rng.gen::<f64>() - 0.5) * mean_per_tick).round() as usize;
            for _ in 0..n {
                let priority = if rng.gen::<f64>() < interactive_fraction {
                    LoadPriority::Interactive
                } else {
                    LoadPriority::Batch
                };
                let wh = &warehouses[rng.gen_range(0..warehouses.len())];
                events.push(LoadEvent {
                    tick,
                    tenant: tenant.clone(),
                    warehouse: wh.clone(),
                    priority,
                    op: draw_op(&mut rng, priority),
                    client: None,
                });
            }
        }
    }
    // Replay order: tick-major, then tenant spec order (stable sort keeps
    // per-tenant draw order).
    events.sort_by_key(|e| e.tick);
    events
}

/// One closed-loop client: at most one outstanding request; thinks for
/// `think_ticks` after an admitted request completes a tick, backs off
/// `backoff_ticks` after a shed.
#[derive(Debug, Clone)]
struct Client {
    tenant: String,
    warehouse: String,
    priority: LoadPriority,
    rng: StdRng,
    /// Next tick this client may issue at; `None` while a request is
    /// outstanding (waiting for `on_outcome`).
    ready_at: Option<u64>,
}

/// Fixed-population closed-loop load: see the module docs.
#[derive(Debug, Clone)]
pub struct ClosedLoopDriver {
    clients: Vec<Client>,
    think_ticks: u64,
    backoff_ticks: u64,
}

impl ClosedLoopDriver {
    /// `clients_per_tenant` clients per `(tenant, warehouses)` pair, each
    /// pinned to one warehouse round-robin. Even client indices are
    /// interactive, odd are batch.
    pub fn new(
        seed: u64,
        tenants: &[(String, Vec<String>)],
        clients_per_tenant: usize,
        think_ticks: u64,
        backoff_ticks: u64,
    ) -> Self {
        let mut clients = Vec::new();
        for (tenant, warehouses) in tenants {
            assert!(!warehouses.is_empty(), "tenant {tenant} has no warehouses");
            for c in 0..clients_per_tenant {
                let label = format!("{tenant}/client-{c}");
                clients.push(Client {
                    tenant: tenant.clone(),
                    warehouse: warehouses[c % warehouses.len()].clone(),
                    priority: if c % 2 == 0 {
                        LoadPriority::Interactive
                    } else {
                        LoadPriority::Batch
                    },
                    rng: StdRng::seed_from_u64(stream_seed(seed, &label)),
                    ready_at: Some(0),
                });
            }
        }
        Self {
            clients,
            think_ticks,
            backoff_ticks,
        }
    }

    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Requests issued in tick window `tick`: every idle client whose
    /// think/backoff timer has expired, in client-index order. Each issuing
    /// client becomes outstanding until [`ClosedLoopDriver::on_outcome`].
    pub fn requests_for_tick(&mut self, tick: u64) -> Vec<LoadEvent> {
        let mut out = Vec::new();
        for (i, c) in self.clients.iter_mut().enumerate() {
            if c.ready_at.is_some_and(|at| at <= tick) {
                c.ready_at = None;
                out.push(LoadEvent {
                    tick,
                    tenant: c.tenant.clone(),
                    warehouse: c.warehouse.clone(),
                    priority: c.priority,
                    op: draw_op(&mut c.rng, c.priority),
                    client: Some(i),
                });
            }
        }
        out
    }

    /// Feedback for client `client`'s outstanding request: admitted
    /// requests think, shed requests back off. `tick` is the window the
    /// outcome landed in.
    pub fn on_outcome(&mut self, client: usize, admitted: bool, tick: u64) {
        let c = &mut self.clients[client];
        debug_assert!(c.ready_at.is_none(), "outcome for an idle client");
        let delay = if admitted {
            self.think_ticks
        } else {
            self.backoff_ticks
        };
        c.ready_at = Some(tick + 1 + delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> Vec<(String, Vec<String>)> {
        vec![
            ("t0".to_string(), vec!["A".to_string(), "B".to_string()]),
            ("t1".to_string(), vec!["C".to_string()]),
        ]
    }

    #[test]
    fn open_loop_is_deterministic_and_tick_ordered() {
        let a = open_loop_plan(42, &two_tenants(), 10, 3.0, 0.5);
        let b = open_loop_plan(42, &two_tenants(), 10, 3.0, 0.5);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].tick <= w[1].tick));
        let c = open_loop_plan(43, &two_tenants(), 10, 3.0, 0.5);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn open_loop_respects_interactive_fraction_extremes() {
        let all_i = open_loop_plan(7, &two_tenants(), 5, 4.0, 1.0);
        assert!(all_i
            .iter()
            .all(|e| e.priority == LoadPriority::Interactive));
        let all_b = open_loop_plan(7, &two_tenants(), 5, 4.0, 0.0);
        assert!(all_b.iter().all(|e| e.priority == LoadPriority::Batch));
    }

    #[test]
    fn closed_loop_waits_for_feedback() {
        let mut d = ClosedLoopDriver::new(9, &two_tenants(), 2, 1, 3);
        let first = d.requests_for_tick(0);
        assert_eq!(first.len(), 4, "every client issues at tick 0");
        // No feedback yet: nobody issues again.
        assert!(d.requests_for_tick(1).is_empty());
        // Client 0 admitted (thinks 1 tick), client 1 shed (backs off 3).
        d.on_outcome(0, true, 0);
        d.on_outcome(1, false, 0);
        let at2 = d.requests_for_tick(2);
        assert_eq!(at2.len(), 1);
        assert_eq!(at2[0].client, Some(0));
        assert!(d.requests_for_tick(3).is_empty());
        let at4 = d.requests_for_tick(4);
        assert_eq!(at4.len(), 1, "shed client returns after backoff");
        assert_eq!(at4[0].client, Some(1));
    }

    #[test]
    fn closed_loop_is_deterministic_under_identical_feedback() {
        let run = |seed| {
            let mut d = ClosedLoopDriver::new(seed, &two_tenants(), 3, 0, 1);
            let mut all = Vec::new();
            for tick in 0..5 {
                for e in d.requests_for_tick(tick) {
                    let client = e.client.unwrap();
                    all.push(e);
                    d.on_outcome(client, client % 2 == 0, tick);
                }
            }
            all
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
