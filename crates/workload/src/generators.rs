//! The four workload archetypes from the paper's evaluation.

use crate::arrival::{diurnal_rate, month_end_multiplier, poisson_arrivals, scheduled_arrivals};
use crate::template::{splitmix64, IdAllocator, QueryTemplate};
use cdw_sim::{QuerySpec, SimTime, DAY_MS, HOUR_MS, MINUTE_MS, SECOND_MS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic workload source: given a window and a seed it produces
/// the same query trace every time.
pub trait WorkloadGenerator {
    /// Human-readable name (used in traces and reports).
    fn name(&self) -> &str;

    /// Generates all queries arriving in `[start, end)`, sorted by arrival.
    fn generate(
        &self,
        start: SimTime,
        end: SimTime,
        ids: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Vec<QuerySpec>;
}

fn sort_by_arrival(mut qs: Vec<QuerySpec>) -> Vec<QuerySpec> {
    qs.sort_by_key(|q| (q.arrival, q.id));
    qs
}

// ---------------------------------------------------------------------------
// ETL
// ---------------------------------------------------------------------------

/// Highly recurring scheduled ETL: `pipelines` jobs, each firing every
/// `period_ms`, each run executing a fixed chain of transform queries.
/// Work is near-deterministic, cache affinity low (transforms read fresh
/// data), scaling good. This is the paper's "predictable" warehouse.
#[derive(Debug, Clone)]
pub struct EtlWorkload {
    /// Number of independent pipelines.
    pub pipelines: usize,
    /// Schedule period for each pipeline.
    pub period_ms: SimTime,
    /// Queries per pipeline run.
    pub queries_per_run: usize,
    /// Median X-Small work per query, ms.
    pub median_work_ms: f64,
}

impl Default for EtlWorkload {
    fn default() -> Self {
        Self {
            pipelines: 4,
            period_ms: HOUR_MS,
            queries_per_run: 6,
            median_work_ms: 90_000.0,
        }
    }
}

impl WorkloadGenerator for EtlWorkload {
    fn name(&self) -> &str {
        "etl"
    }

    fn generate(
        &self,
        start: SimTime,
        end: SimTime,
        ids: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Vec<QuerySpec> {
        let mut out = Vec::new();
        for p in 0..self.pipelines {
            // Stagger pipelines across the period; small jitter models
            // orchestrator scheduling noise.
            let offset = (p as u64 * self.period_ms) / self.pipelines as u64;
            let runs = scheduled_arrivals(start, end, self.period_ms, offset, 30 * SECOND_MS, rng);
            for run_start in runs {
                let mut t = run_start;
                for q in 0..self.queries_per_run {
                    let template = QueryTemplate::new(
                        splitmix64(0xE71 ^ (p as u64) << 8 ^ q as u64),
                        self.median_work_ms,
                    )
                    .with_cache_affinity(0.2)
                    .with_scale_exponent(1.0)
                    .with_work_sigma(0.1);
                    let spec = template.instantiate(ids, rng, t);
                    // Chain: next step starts shortly after this one's
                    // nominal duration (dependencies between transforms).
                    t += (spec.work_ms_xs * 0.25) as SimTime + 5 * SECOND_MS;
                    out.push(spec);
                }
            }
        }
        sort_by_arrival(out)
    }
}

// ---------------------------------------------------------------------------
// BI dashboards
// ---------------------------------------------------------------------------

/// Bursty, cache-sensitive BI traffic concentrated in business hours. Each
/// arrival event is a *dashboard refresh*: a burst of several small queries
/// sharing templates (so caching matters a lot).
#[derive(Debug, Clone)]
pub struct BiWorkload {
    /// Dashboard refreshes per hour at the midday peak.
    pub peak_refreshes_per_hour: f64,
    /// Off-hours refresh rate.
    pub base_refreshes_per_hour: f64,
    /// Number of distinct dashboards (template groups).
    pub dashboards: usize,
    /// Queries per refresh.
    pub queries_per_refresh: usize,
    /// Median X-Small work per query, ms.
    pub median_work_ms: f64,
}

impl Default for BiWorkload {
    fn default() -> Self {
        Self {
            peak_refreshes_per_hour: 40.0,
            base_refreshes_per_hour: 1.0,
            dashboards: 8,
            queries_per_refresh: 5,
            median_work_ms: 8_000.0,
        }
    }
}

impl WorkloadGenerator for BiWorkload {
    fn name(&self) -> &str {
        "bi"
    }

    fn generate(
        &self,
        start: SimTime,
        end: SimTime,
        ids: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Vec<QuerySpec> {
        let rate = diurnal_rate(self.base_refreshes_per_hour, self.peak_refreshes_per_hour);
        let refreshes = poisson_arrivals(
            start,
            end,
            self.peak_refreshes_per_hour
                .max(self.base_refreshes_per_hour),
            rate,
            rng,
        );
        let mut out = Vec::new();
        for at in refreshes {
            let dash = rng.gen_range(0..self.dashboards) as u64;
            for q in 0..self.queries_per_refresh {
                let template = QueryTemplate::new(
                    splitmix64(0xB1 ^ dash << 8 ^ q as u64),
                    self.median_work_ms,
                )
                .with_cache_affinity(0.95)
                .with_scale_exponent(0.8)
                .with_work_sigma(0.4);
                // Queries in one refresh land within a couple of seconds.
                let jitter = rng.gen_range(0..2 * SECOND_MS);
                out.push(template.instantiate(ids, rng, at + jitter));
            }
        }
        sort_by_arrival(out)
    }
}

// ---------------------------------------------------------------------------
// Ad-hoc analytics
// ---------------------------------------------------------------------------

/// Unpredictable analyst traffic: heavy-tailed work, day-to-day load that
/// swings by multiples (drawn per day), and a month-end crunch. This is the
/// "less predictable workload" warehouse of Fig. 4a, whose credit usage
/// "fluctuates more than other warehouses".
#[derive(Debug, Clone)]
pub struct AdhocWorkload {
    /// Average queries per hour on a typical day, before the daily swing.
    pub mean_rate_per_hour: f64,
    /// Log-space sigma of the per-day load multiplier (bigger = wilder).
    pub daily_swing_sigma: f64,
    /// Median X-Small work per query, ms.
    pub median_work_ms: f64,
    /// Log-space sigma of per-query work (heavy tail).
    pub work_sigma: f64,
    /// Month-end multiplier applied to the last 3 days of each 30-day cycle.
    pub month_end_factor: f64,
    /// Distinct query shapes analysts tend to re-run.
    pub templates: usize,
}

impl Default for AdhocWorkload {
    fn default() -> Self {
        Self {
            mean_rate_per_hour: 12.0,
            daily_swing_sigma: 0.7,
            median_work_ms: 25_000.0,
            work_sigma: 1.0,
            month_end_factor: 3.0,
            templates: 30,
        }
    }
}

impl WorkloadGenerator for AdhocWorkload {
    fn name(&self) -> &str {
        "adhoc"
    }

    fn generate(
        &self,
        start: SimTime,
        end: SimTime,
        ids: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Vec<QuerySpec> {
        // Draw one load multiplier per day, deterministically from the seed.
        let first_day = start / DAY_MS;
        let last_day = end.div_ceil(DAY_MS);
        let day_multipliers: Vec<f64> = (first_day..last_day)
            .map(|_| {
                let z = crate::template::sample_standard_normal(rng);
                (self.daily_swing_sigma * z).exp()
            })
            .collect();
        let day_mult = |t: SimTime| -> f64 {
            let idx = (t / DAY_MS - first_day) as usize;
            day_multipliers.get(idx).copied().unwrap_or(1.0)
        };
        let max_mult = day_multipliers.iter().fold(1.0f64, |a, &b| a.max(b));
        let max_rate = self.mean_rate_per_hour * max_mult * self.month_end_factor * 2.0;
        // Mild diurnality: analysts work daytime, rate halves at night.
        let shape = |t: SimTime| {
            let hod = cdw_sim::time::hour_of_day(t);
            if (8.0..20.0).contains(&hod) {
                1.0
            } else {
                0.25
            }
        };
        let arrivals = poisson_arrivals(
            start,
            end,
            max_rate,
            |t| {
                self.mean_rate_per_hour
                    * day_mult(t)
                    * month_end_multiplier(t, 3, self.month_end_factor)
                    * shape(t)
            },
            rng,
        );
        let mut out = Vec::new();
        for at in arrivals {
            let tpl = rng.gen_range(0..self.templates) as u64;
            // Analysts scan varied, rarely re-visited data: low cache reuse.
            let template = QueryTemplate::new(splitmix64(0xAD0C ^ tpl), self.median_work_ms)
                .with_cache_affinity(0.3)
                .with_scale_exponent(0.9)
                .with_work_sigma(self.work_sigma);
            out.push(template.instantiate(ids, rng, at));
        }
        sort_by_arrival(out)
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// Periodic report batches (e.g. a morning report run), tolerant of longer
/// latencies. Daily batches of medium-weight queries.
#[derive(Debug, Clone)]
pub struct ReportingWorkload {
    /// Hour of day each batch fires.
    pub batch_hour: u64,
    /// Queries per batch.
    pub queries_per_batch: usize,
    /// Median X-Small work per query, ms.
    pub median_work_ms: f64,
}

impl Default for ReportingWorkload {
    fn default() -> Self {
        Self {
            batch_hour: 6,
            queries_per_batch: 20,
            median_work_ms: 45_000.0,
        }
    }
}

impl WorkloadGenerator for ReportingWorkload {
    fn name(&self) -> &str {
        "reporting"
    }

    fn generate(
        &self,
        start: SimTime,
        end: SimTime,
        ids: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Vec<QuerySpec> {
        let offset = self.batch_hour * HOUR_MS;
        let batches = scheduled_arrivals(start, end, DAY_MS, offset, 2 * MINUTE_MS, rng);
        let mut out = Vec::new();
        for batch_start in batches {
            for q in 0..self.queries_per_batch {
                let template =
                    QueryTemplate::new(splitmix64(0x4E9 ^ q as u64), self.median_work_ms)
                        .with_cache_affinity(0.4)
                        .with_scale_exponent(1.0)
                        .with_work_sigma(0.2);
                // Reports submit in quick succession; the scheduler fans
                // them out.
                let at = batch_start + (q as u64) * 2 * SECOND_MS;
                out.push(template.instantiate(ids, rng, at));
            }
        }
        sort_by_arrival(out)
    }
}

/// Convenience: generate with a fresh seeded RNG and id space.
pub fn generate_trace(
    gen: &dyn WorkloadGenerator,
    start: SimTime,
    end: SimTime,
    seed: u64,
) -> Vec<QuerySpec> {
    let mut ids = IdAllocator::new();
    let mut rng = StdRng::seed_from_u64(seed);
    gen.generate(start, end, &mut ids, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daily_counts(qs: &[QuerySpec], days: u64) -> Vec<usize> {
        let mut counts = vec![0usize; days as usize];
        for q in qs {
            let d = (q.arrival / DAY_MS) as usize;
            if d < counts.len() {
                counts[d] += 1;
            }
        }
        counts
    }

    #[test]
    fn generators_are_deterministic() {
        for g in [
            Box::new(EtlWorkload::default()) as Box<dyn WorkloadGenerator>,
            Box::new(BiWorkload::default()),
            Box::new(AdhocWorkload::default()),
            Box::new(ReportingWorkload::default()),
        ] {
            let a = generate_trace(g.as_ref(), 0, 2 * DAY_MS, 42);
            let b = generate_trace(g.as_ref(), 0, 2 * DAY_MS, 42);
            assert_eq!(a, b, "{} not deterministic", g.name());
            assert!(!a.is_empty(), "{} generated nothing", g.name());
        }
    }

    #[test]
    fn traces_are_sorted_with_unique_ids() {
        let qs = generate_trace(&BiWorkload::default(), 0, 3 * DAY_MS, 7);
        assert!(qs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let ids: std::collections::HashSet<u64> = qs.iter().map(|q| q.id).collect();
        assert_eq!(ids.len(), qs.len());
    }

    #[test]
    fn etl_is_predictable_day_to_day() {
        let qs = generate_trace(&EtlWorkload::default(), 0, 7 * DAY_MS, 1);
        let counts = daily_counts(&qs, 7);
        let mean = counts.iter().sum::<usize>() as f64 / 7.0;
        for c in &counts {
            assert!(
                (*c as f64 - mean).abs() / mean < 0.05,
                "ETL daily counts should be near-constant: {counts:?}"
            );
        }
    }

    #[test]
    fn adhoc_fluctuates_more_than_etl() {
        let cv = |counts: &[usize]| {
            let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / counts.len() as f64;
            var.sqrt() / mean
        };
        let etl = daily_counts(
            &generate_trace(&EtlWorkload::default(), 0, 14 * DAY_MS, 3),
            14,
        );
        let adhoc = daily_counts(
            &generate_trace(&AdhocWorkload::default(), 0, 14 * DAY_MS, 3),
            14,
        );
        assert!(
            cv(&adhoc) > 3.0 * cv(&etl),
            "adhoc CV {} should dwarf ETL CV {}",
            cv(&adhoc),
            cv(&etl)
        );
    }

    #[test]
    fn bi_concentrates_in_business_hours() {
        let qs = generate_trace(&BiWorkload::default(), 0, 5 * DAY_MS, 11);
        let business: usize = qs
            .iter()
            .filter(|q| {
                let h = cdw_sim::time::hour_of_day(q.arrival);
                (9.0..17.0).contains(&h)
            })
            .count();
        assert!(
            business as f64 / qs.len() as f64 > 0.8,
            "{} of {} in business hours",
            business,
            qs.len()
        );
    }

    #[test]
    fn bi_queries_are_cache_hungry() {
        let qs = generate_trace(&BiWorkload::default(), 0, DAY_MS, 1);
        assert!(qs.iter().all(|q| q.cache_affinity > 0.9));
    }

    #[test]
    fn reporting_fires_once_a_day_at_the_batch_hour() {
        let w = ReportingWorkload::default();
        let qs = generate_trace(&w, 0, 3 * DAY_MS, 5);
        assert_eq!(qs.len(), 3 * w.queries_per_batch);
        for q in &qs {
            let h = cdw_sim::time::hour_of_day(q.arrival);
            assert!((h - 6.0).abs() < 0.5, "batch at hour {h}");
        }
    }

    #[test]
    fn month_end_spike_increases_adhoc_volume() {
        let w = AdhocWorkload {
            daily_swing_sigma: 0.0, // isolate the month-end effect
            ..AdhocWorkload::default()
        };
        let qs = generate_trace(&w, 0, 30 * DAY_MS, 9);
        let counts = daily_counts(&qs, 30);
        let normal: f64 = counts[5..20].iter().sum::<usize>() as f64 / 15.0;
        let spike: f64 = counts[27..30].iter().sum::<usize>() as f64 / 3.0;
        assert!(
            spike > 2.0 * normal,
            "month-end {spike} should exceed 2x normal {normal}"
        );
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = generate_trace(&AdhocWorkload::default(), 0, DAY_MS, 1);
        let b = generate_trace(&AdhocWorkload::default(), 0, DAY_MS, 2);
        assert_ne!(a, b);
    }
}
