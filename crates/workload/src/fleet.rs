//! Fleet-mix builder: a whole customer fleet's worth of workloads.
//!
//! The paper's deployment optimizes many tenants at once, each with several
//! warehouses serving different traffic shapes. [`fleet_mix`] stamps out
//! `tenants × warehouses_per_tenant` members, cycling through the four
//! archetypes (ETL, BI, ad-hoc, reporting) so every tenant gets a realistic
//! mixture rather than a monoculture. Member naming is positional and
//! stable (`tenant-3/T3_WH1`), so seeds derived from names reproduce across
//! runs and thread counts.

use crate::generators::{
    AdhocWorkload, BiWorkload, EtlWorkload, ReportingWorkload, WorkloadGenerator,
};

/// One warehouse's slot in the fleet: where it lives and what it serves.
pub struct FleetMember {
    /// Tenant name, `tenant-{i}`.
    pub tenant: String,
    /// Warehouse name, unique fleet-wide: `T{i}_WH{j}`.
    pub warehouse: String,
    /// Archetype tag: `etl`, `bi`, `adhoc`, or `reporting`.
    pub archetype: &'static str,
    /// The trace generator for this warehouse.
    pub generator: Box<dyn WorkloadGenerator>,
}

fn archetype_generator(index: usize, light: bool) -> (&'static str, Box<dyn WorkloadGenerator>) {
    match index % 4 {
        0 => {
            let w = if light {
                EtlWorkload {
                    pipelines: 2,
                    queries_per_run: 2,
                    ..EtlWorkload::default()
                }
            } else {
                EtlWorkload::default()
            };
            ("etl", Box::new(w))
        }
        1 => {
            let w = if light {
                BiWorkload {
                    peak_refreshes_per_hour: 8.0,
                    dashboards: 3,
                    queries_per_refresh: 2,
                    ..BiWorkload::default()
                }
            } else {
                BiWorkload::default()
            };
            ("bi", Box::new(w))
        }
        2 => {
            let w = if light {
                AdhocWorkload {
                    mean_rate_per_hour: 4.0,
                    templates: 8,
                    ..AdhocWorkload::default()
                }
            } else {
                AdhocWorkload::default()
            };
            ("adhoc", Box::new(w))
        }
        _ => {
            let w = if light {
                ReportingWorkload {
                    queries_per_batch: 6,
                    ..ReportingWorkload::default()
                }
            } else {
                ReportingWorkload::default()
            };
            ("reporting", Box::new(w))
        }
    }
}

/// Builds a `tenants × warehouses_per_tenant` fleet with archetypes cycled
/// across the global warehouse index. `light` scales every generator down
/// (fewer pipelines/dashboards/templates) for smoke runs and CI.
pub fn fleet_mix(tenants: usize, warehouses_per_tenant: usize, light: bool) -> Vec<FleetMember> {
    let mut members = Vec::with_capacity(tenants * warehouses_per_tenant);
    for t in 0..tenants {
        for w in 0..warehouses_per_tenant {
            let index = t * warehouses_per_tenant + w;
            let (archetype, generator) = archetype_generator(index, light);
            members.push(FleetMember {
                tenant: format!("tenant-{t}"),
                warehouse: format!("T{t}_WH{w}"),
                archetype,
                generator,
            });
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_trace;
    use cdw_sim::DAY_MS;

    #[test]
    fn fleet_mix_cycles_archetypes_and_names_uniquely() {
        let members = fleet_mix(2, 4, true);
        assert_eq!(members.len(), 8);
        let archetypes: Vec<&str> = members.iter().map(|m| m.archetype).collect();
        assert_eq!(
            &archetypes[..4],
            &["etl", "bi", "adhoc", "reporting"],
            "first tenant cycles through all four archetypes"
        );
        let names: std::collections::HashSet<&str> =
            members.iter().map(|m| m.warehouse.as_str()).collect();
        assert_eq!(names.len(), members.len(), "warehouse names are unique");
        assert_eq!(members[5].tenant, "tenant-1");
    }

    #[test]
    fn light_mix_generates_fewer_queries() {
        let light = fleet_mix(1, 1, true);
        let full = fleet_mix(1, 1, false);
        let l = generate_trace(light[0].generator.as_ref(), 0, DAY_MS, 9);
        let f = generate_trace(full[0].generator.as_ref(), 0, DAY_MS, 9);
        assert!(!l.is_empty());
        assert!(l.len() < f.len());
    }
}
