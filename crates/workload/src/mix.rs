//! Composite workloads: several generators feeding one warehouse.
//!
//! Real warehouses often serve hybrid traffic (the paper's C5 calls out
//! "hybrid or even homegrown and highly custom applications"); the mixer
//! merges component traces into one arrival-ordered stream.

use crate::generators::WorkloadGenerator;
use crate::template::IdAllocator;
use cdw_sim::{QuerySpec, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named mix of workload generators.
pub struct MixedWorkload {
    name: String,
    parts: Vec<Box<dyn WorkloadGenerator>>,
}

impl MixedWorkload {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            parts: Vec::new(),
        }
    }

    /// Adds a component generator.
    pub fn with(mut self, gen: impl WorkloadGenerator + 'static) -> Self {
        self.parts.push(Box::new(gen));
        self
    }

    /// Number of component generators.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl WorkloadGenerator for MixedWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(
        &self,
        start: SimTime,
        end: SimTime,
        ids: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Vec<QuerySpec> {
        let mut out = Vec::new();
        for part in &self.parts {
            // Derive an independent RNG per component so adding a component
            // does not perturb the others' streams.
            let mut part_rng = StdRng::seed_from_u64(rng.gen());
            out.extend(part.generate(start, end, ids, &mut part_rng));
        }
        out.sort_by_key(|q| (q.arrival, q.id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_trace, BiWorkload, EtlWorkload};
    use cdw_sim::DAY_MS;

    #[test]
    fn mix_contains_all_components() {
        let mix = MixedWorkload::new("hybrid")
            .with(EtlWorkload::default())
            .with(BiWorkload::default());
        assert_eq!(mix.len(), 2);
        let qs = generate_trace(&mix, 0, DAY_MS, 42);
        let etl_only = generate_trace(&EtlWorkload::default(), 0, DAY_MS, 42);
        assert!(
            qs.len() > etl_only.len(),
            "mix adds BI volume on top of ETL"
        );
    }

    #[test]
    fn mix_is_sorted_and_deterministic() {
        let mix = MixedWorkload::new("hybrid")
            .with(EtlWorkload::default())
            .with(BiWorkload::default());
        let a = generate_trace(&mix, 0, DAY_MS, 7);
        let b = generate_trace(&mix, 0, DAY_MS, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn ids_are_unique_across_components() {
        let mix = MixedWorkload::new("hybrid")
            .with(EtlWorkload::default())
            .with(BiWorkload::default());
        let qs = generate_trace(&mix, 0, DAY_MS, 7);
        let ids: std::collections::HashSet<u64> = qs.iter().map(|q| q.id).collect();
        assert_eq!(ids.len(), qs.len());
    }

    #[test]
    fn empty_mix_generates_nothing() {
        let mix = MixedWorkload::new("empty");
        assert!(mix.is_empty());
        let qs = generate_trace(&mix, 0, DAY_MS, 1);
        assert!(qs.is_empty());
    }
}
