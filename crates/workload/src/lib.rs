//! Synthetic warehouse workloads.
//!
//! The paper evaluates KWO on production customer workloads it cannot share;
//! what it *does* characterize is their statistical shape (§2 C5, §7.1):
//!
//! * **ETL** — highly recurring scheduled jobs with near-constant load
//!   (the "predictable" warehouse of Fig. 4b and the static hourly spend of
//!   Fig. 6);
//! * **BI dashboards** — bursty, cache-sensitive queries concentrated in
//!   business hours;
//! * **ad-hoc analytics** — unpredictable arrivals with heavy-tailed work
//!   and month-end spikes (the "unpredictable" warehouse of Fig. 4a);
//! * **reporting** — periodic batches tolerant of longer latencies.
//!
//! Each generator is parameterized on exactly the axes the paper uses to
//! distinguish warehouses — predictability, cache sensitivity, and load
//! level — and is fully deterministic given a seed.

pub mod arrival;
pub mod fleet;
pub mod generators;
pub mod loadgen;
pub mod mix;
pub mod template;
pub mod trace;

pub use arrival::{diurnal_rate, poisson_arrivals, scheduled_arrivals};
pub use fleet::{fleet_mix, FleetMember};
pub use generators::{
    generate_trace, AdhocWorkload, BiWorkload, EtlWorkload, ReportingWorkload, WorkloadGenerator,
};
pub use loadgen::{open_loop_plan, ClosedLoopDriver, LoadEvent, LoadOp, LoadPriority};
pub use mix::MixedWorkload;
pub use template::{IdAllocator, QueryTemplate};
pub use trace::{TraceStats, WorkloadTrace};
