//! Serializable query traces and summary statistics.

use cdw_sim::{QuerySpec, SimTime, DAY_MS};
use serde::{Deserialize, Serialize};

/// A named, arrival-ordered query trace, serializable for reuse across
/// experiments (the same trace replayed under different policies is how the
/// benchmark harness makes with/without-Keebo comparisons fair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    pub name: String,
    pub queries: Vec<QuerySpec>,
}

impl WorkloadTrace {
    /// Wraps queries, sorting by arrival.
    pub fn new(name: impl Into<String>, mut queries: Vec<QuerySpec>) -> Self {
        queries.sort_by_key(|q| (q.arrival, q.id));
        Self {
            name: name.into(),
            queries,
        }
    }

    pub fn len(&self) -> usize {
        self.queries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The sub-trace within `[start, end)`.
    pub fn window(&self, start: SimTime, end: SimTime) -> WorkloadTrace {
        WorkloadTrace {
            name: self.name.clone(),
            queries: self
                .queries
                .iter()
                .filter(|q| (start..end).contains(&q.arrival))
                .cloned()
                .collect(),
        }
    }

    /// Summary statistics.
    pub fn stats(&self) -> TraceStats {
        if self.queries.is_empty() {
            return TraceStats::default();
        }
        let n = self.queries.len();
        let total_work: f64 = self.queries.iter().map(|q| q.work_ms_xs).sum();
        let first = self.queries.first().map_or(0, |q| q.arrival);
        let last = self.queries.last().map_or(0, |q| q.arrival);
        let mut per_day = std::collections::BTreeMap::new();
        for q in &self.queries {
            *per_day.entry(q.arrival / DAY_MS).or_insert(0usize) += 1;
        }
        let day_counts: Vec<usize> = per_day.values().copied().collect();
        let day_mean = day_counts.iter().sum::<usize>() as f64 / day_counts.len() as f64;
        let day_var = day_counts
            .iter()
            .map(|&c| (c as f64 - day_mean).powi(2))
            .sum::<f64>()
            / day_counts.len() as f64;
        TraceStats {
            queries: n,
            total_work_ms_xs: total_work,
            mean_work_ms_xs: total_work / n as f64,
            first_arrival: first,
            last_arrival: last,
            daily_count_cv: if day_mean > 0.0 {
                day_var.sqrt() / day_mean
            } else {
                0.0
            },
        }
    }
}

/// Aggregates describing a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    pub queries: usize,
    pub total_work_ms_xs: f64,
    pub mean_work_ms_xs: f64,
    pub first_arrival: SimTime,
    pub last_arrival: SimTime,
    /// Coefficient of variation of daily query counts — the "predictability"
    /// axis separating Fig. 4a from Fig. 4b.
    pub daily_count_cv: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_trace, AdhocWorkload, EtlWorkload};

    #[test]
    fn new_sorts_queries() {
        let a = QuerySpec::builder(1).arrival_ms(500).build();
        let b = QuerySpec::builder(2).arrival_ms(100).build();
        let t = WorkloadTrace::new("t", vec![a, b]);
        assert_eq!(t.queries[0].id, 2);
    }

    #[test]
    fn window_is_half_open() {
        let qs = (0..10)
            .map(|i| QuerySpec::builder(i).arrival_ms(i * 100).build())
            .collect();
        let t = WorkloadTrace::new("t", qs);
        let w = t.window(200, 500);
        assert_eq!(w.len(), 3);
        assert!(w.queries.iter().all(|q| (200..500).contains(&q.arrival)));
    }

    #[test]
    fn stats_reflect_predictability_axis() {
        let etl = WorkloadTrace::new(
            "etl",
            generate_trace(&EtlWorkload::default(), 0, 7 * DAY_MS, 1),
        );
        let adhoc = WorkloadTrace::new(
            "adhoc",
            generate_trace(&AdhocWorkload::default(), 0, 7 * DAY_MS, 1),
        );
        assert!(adhoc.stats().daily_count_cv > etl.stats().daily_count_cv);
    }

    #[test]
    fn empty_trace_has_default_stats() {
        let t = WorkloadTrace::new("e", vec![]);
        assert_eq!(t.stats(), TraceStats::default());
        assert!(t.is_empty());
    }

    #[test]
    fn trace_serde_round_trip() {
        let t = WorkloadTrace::new("t", vec![QuerySpec::builder(1).arrival_ms(10).build()]);
        let json = serde_json::to_string(&t).unwrap();
        let back: WorkloadTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
