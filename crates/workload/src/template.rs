//! Query templates: the recurring query shapes a warehouse serves.
//!
//! A template plays the role of the paper's "query template (query text
//! stripped of all constants)" (§5.2 fn. 4): queries instantiated from the
//! same template share a `template_hash` and differ in their `text_hash`
//! (standing in for different literal bindings) and sampled work.

use cdw_sim::{QuerySpec, SimTime};
use rand::Rng;
use rand_distr_free::sample_lognormal;
use serde::{Deserialize, Serialize};

/// Monotone id allocator shared by generators so ids never collide across
/// workloads targeting the same account.
#[derive(Debug, Default, Clone)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts allocating at `from` (to partition id spaces manually).
    pub fn starting_at(from: u64) -> Self {
        Self { next: from }
    }

    pub fn next_id(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

/// A recurring query shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Stable template hash (what telemetry exposes instead of text).
    pub template_hash: u64,
    /// Median execution time on a warm X-Small, in ms.
    pub median_work_ms: f64,
    /// Log-normal sigma of the work distribution (0 = deterministic).
    pub work_sigma: f64,
    /// Bytes scanned per ms of X-Small work (so bigger queries scan more).
    pub bytes_per_work_ms: u64,
    /// Cache affinity in [0, 1] for instantiated queries.
    pub cache_affinity: f64,
    /// Scale exponent for instantiated queries.
    pub scale_exponent: f64,
}

impl QueryTemplate {
    /// A template with the given hash and median work, defaulting to a
    /// moderately cache-sensitive, well-scaling query.
    pub fn new(template_hash: u64, median_work_ms: f64) -> Self {
        Self {
            template_hash,
            median_work_ms,
            work_sigma: 0.3,
            bytes_per_work_ms: 1 << 20, // ~1 MiB of scan per ms of work
            cache_affinity: 0.5,
            scale_exponent: 1.0,
        }
    }

    pub fn with_cache_affinity(mut self, a: f64) -> Self {
        self.cache_affinity = a.clamp(0.0, 1.0);
        self
    }

    pub fn with_scale_exponent(mut self, e: f64) -> Self {
        self.scale_exponent = e.clamp(0.0, 1.5);
        self
    }

    pub fn with_work_sigma(mut self, s: f64) -> Self {
        self.work_sigma = s.max(0.0);
        self
    }

    /// Instantiates a concrete query arriving at `arrival`.
    pub fn instantiate(
        &self,
        ids: &mut IdAllocator,
        rng: &mut impl Rng,
        arrival: SimTime,
    ) -> QuerySpec {
        let id = ids.next_id();
        let work = sample_lognormal(rng, self.median_work_ms, self.work_sigma);
        // The text hash mixes the template with the sampled instance so
        // identical literals hash identically and different ones do not.
        let text_hash = splitmix64(self.template_hash ^ splitmix64(id));
        QuerySpec::builder(id)
            .template_hash(self.template_hash)
            .text_hash(text_hash)
            .work_ms_xs(work)
            .bytes_scanned((work * self.bytes_per_work_ms as f64) as u64)
            .cache_affinity(self.cache_affinity)
            .scale_exponent(self.scale_exponent)
            .arrival_ms(arrival)
            .build()
    }
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer used for deterministic
/// hash derivation (not cryptographic; telemetry hashing in the telemetry
/// crate covers the C6 story).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Minimal log-normal sampling without the `rand_distr` crate: median `m`
/// and log-space sigma, via Box–Muller.
mod rand_distr_free {
    use rand::Rng;

    pub fn sample_lognormal(rng: &mut impl Rng, median: f64, sigma: f64) -> f64 {
        // lint: allow(D4) — exact-zero sigma is the degenerate-distribution sentinel
        if sigma == 0.0 {
            return median;
        }
        let z = sample_standard_normal(rng);
        median * (sigma * z).exp()
    }

    pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
        // Box–Muller; u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

pub use rand_distr_free::sample_standard_normal;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn id_allocator_is_monotone() {
        let mut ids = IdAllocator::new();
        assert_eq!(ids.next_id(), 0);
        assert_eq!(ids.next_id(), 1);
        let mut from = IdAllocator::starting_at(100);
        assert_eq!(from.next_id(), 100);
    }

    #[test]
    fn instantiate_preserves_template_identity() {
        let t = QueryTemplate::new(42, 5_000.0).with_cache_affinity(0.9);
        let mut ids = IdAllocator::new();
        let mut rng = StdRng::seed_from_u64(1);
        let q = t.instantiate(&mut ids, &mut rng, 10_000);
        assert_eq!(q.template_hash, 42);
        assert_eq!(q.arrival, 10_000);
        assert_eq!(q.cache_affinity, 0.9);
        assert!(q.work_ms_xs > 0.0);
    }

    #[test]
    fn different_instances_get_different_text_hashes() {
        let t = QueryTemplate::new(42, 5_000.0);
        let mut ids = IdAllocator::new();
        let mut rng = StdRng::seed_from_u64(1);
        let a = t.instantiate(&mut ids, &mut rng, 0);
        let b = t.instantiate(&mut ids, &mut rng, 0);
        assert_ne!(a.text_hash, b.text_hash);
        assert_eq!(a.template_hash, b.template_hash);
    }

    #[test]
    fn zero_sigma_makes_work_deterministic() {
        let t = QueryTemplate::new(1, 3_000.0).with_work_sigma(0.0);
        let mut ids = IdAllocator::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let q = t.instantiate(&mut ids, &mut rng, 0);
            assert_eq!(q.work_ms_xs, 3_000.0);
        }
    }

    #[test]
    fn lognormal_median_is_approximately_right() {
        let t = QueryTemplate::new(1, 10_000.0).with_work_sigma(0.5);
        let mut ids = IdAllocator::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut works: Vec<f64> = (0..2001)
            .map(|_| t.instantiate(&mut ids, &mut rng, 0).work_ms_xs)
            .collect();
        works.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = works[works.len() / 2];
        assert!(
            (median / 10_000.0 - 1.0).abs() < 0.1,
            "sample median {median} should be near 10000"
        );
    }

    #[test]
    fn bytes_scanned_scale_with_work() {
        let t = QueryTemplate::new(1, 1_000.0).with_work_sigma(0.0);
        let mut ids = IdAllocator::new();
        let mut rng = StdRng::seed_from_u64(1);
        let q = t.instantiate(&mut ids, &mut rng, 0);
        assert_eq!(q.bytes_scanned, 1_000 * (1 << 20));
    }

    #[test]
    fn splitmix_distributes_bits() {
        // Not a statistical test; just confirm distinct inputs map to
        // distinct outputs in a small probe.
        let outs: std::collections::HashSet<u64> = (0..1000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
    }

    #[test]
    fn standard_normal_has_roughly_zero_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| sample_standard_normal(&mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
