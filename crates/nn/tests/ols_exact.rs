//! OLS exact-solution regression tests.
//!
//! On noiseless data generated from a known linear model, the normal
//! equations must recover the generating coefficients to near machine
//! precision. This pins the Gaussian-elimination solver against silent
//! numerical regressions (pivot changes, accumulation-order drift).

use nn::{ols_fit, ridge_fit, LinearModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic, well-conditioned feature matrix: no noise, full rank.
fn design(n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(123);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}

#[test]
fn ols_recovers_generating_model_exactly() {
    let truth = LinearModel {
        weights: vec![2.5, -1.25, 0.75, 3.0],
        intercept: -4.2,
    };
    let xs = design(40, truth.weights.len());
    let ys: Vec<f64> = xs.iter().map(|x| truth.predict(x)).collect();
    let fit = ols_fit(&xs, &ys).expect("full-rank system must solve");
    for (k, (w, t)) in fit.weights.iter().zip(&truth.weights).enumerate() {
        assert!((w - t).abs() < 1e-8, "weight {k}: {w} vs {t}");
    }
    assert!(
        (fit.intercept - truth.intercept).abs() < 1e-8,
        "intercept {} vs {}",
        fit.intercept,
        truth.intercept
    );
    assert!(fit.mse(&xs, &ys) < 1e-16, "mse {}", fit.mse(&xs, &ys));
}

#[test]
fn ridge_at_zero_lambda_equals_ols() {
    let truth = LinearModel {
        weights: vec![1.0, -2.0],
        intercept: 0.5,
    };
    let xs = design(15, 2);
    let ys: Vec<f64> = xs.iter().map(|x| truth.predict(x)).collect();
    let a = ols_fit(&xs, &ys).unwrap();
    let b = ridge_fit(&xs, &ys, 0.0).unwrap();
    assert_eq!(a, b);
}

#[test]
fn ridge_shrinks_weights_toward_zero() {
    let truth = LinearModel {
        weights: vec![5.0, -5.0],
        intercept: 1.0,
    };
    let xs = design(20, 2);
    let ys: Vec<f64> = xs.iter().map(|x| truth.predict(x)).collect();
    let ols = ols_fit(&xs, &ys).unwrap();
    let ridge = ridge_fit(&xs, &ys, 10.0).unwrap();
    let norm = |m: &LinearModel| m.weights.iter().map(|w| w * w).sum::<f64>();
    assert!(
        norm(&ridge) < norm(&ols),
        "ridge {} vs ols {}",
        norm(&ridge),
        norm(&ols)
    );
}

#[test]
fn rank_deficient_design_returns_none() {
    // A constant feature column collides with the implicit intercept.
    let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
    let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
    assert!(ols_fit(&xs, &ys).is_none());
}
