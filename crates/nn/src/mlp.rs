//! A small dense multi-layer perceptron with manual backpropagation.
//!
//! This is the function approximator behind the deep reinforcement learning
//! smart models (§6 of the paper) and the learned components of the warehouse
//! cost model (§5.2). Networks here are tiny (a few thousand parameters), so
//! the implementation favors clarity and determinism over raw throughput.

use crate::matrix::Matrix;
use crate::optim::Optimizer;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation applied to hidden layers. The output layer is always linear,
/// which suits both Q-value regression and scalar regression heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
}

impl Activation {
    #[inline]
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *activated* output `y`.
    #[inline]
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

/// Network shape and hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Sizes of every layer, input first, output last. Must have >= 2 entries.
    pub layer_sizes: Vec<usize>,
    /// Hidden-layer activation.
    pub activation: Activation,
}

impl MlpConfig {
    /// Convenience constructor.
    pub fn new(layer_sizes: Vec<usize>) -> Self {
        Self {
            layer_sizes,
            activation: Activation::Relu,
        }
    }
}

/// One dense layer: `y = act(W x + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    weights: Matrix, // out x in
    biases: Vec<f64>,
}

/// Gradients produced by one backward pass, shaped like the network.
#[derive(Debug, Clone)]
pub struct MlpGradients {
    weight_grads: Vec<Matrix>,
    bias_grads: Vec<Vec<f64>>,
}

impl MlpGradients {
    fn zeros_like(net: &Mlp) -> Self {
        Self {
            weight_grads: net
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.weights.rows(), l.weights.cols()))
                .collect(),
            bias_grads: net
                .layers
                .iter()
                .map(|l| vec![0.0; l.biases.len()])
                .collect(),
        }
    }

    /// Accumulates another gradient in place (for mini-batch averaging).
    pub fn accumulate(&mut self, other: &MlpGradients) {
        for (a, b) in self.weight_grads.iter_mut().zip(&other.weight_grads) {
            a.add_scaled(b, 1.0);
        }
        for (a, b) in self.bias_grads.iter_mut().zip(&other.bias_grads) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Scales all gradients in place (e.g. by `1/batch_size`).
    pub fn scale(&mut self, s: f64) {
        for g in &mut self.weight_grads {
            for v in g.as_mut_slice() {
                *v *= s;
            }
        }
        for g in &mut self.bias_grads {
            for v in g {
                *v *= s;
            }
        }
    }

    /// Global L2 norm of the gradient, used for clipping.
    pub fn l2_norm(&self) -> f64 {
        let mut sum = 0.0;
        for g in &self.weight_grads {
            sum += g.as_slice().iter().map(|v| v * v).sum::<f64>();
        }
        for g in &self.bias_grads {
            sum += g.iter().map(|v| v * v).sum::<f64>();
        }
        sum.sqrt()
    }

    /// Clips the global norm to `max_norm` if it exceeds it.
    pub fn clip_l2_norm(&mut self, max_norm: f64) {
        let norm = self.l2_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }
}

/// Intermediate activations kept from a forward pass for backprop.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// `activations[0]` is the input; `activations[i]` the output of layer i-1.
    activations: Vec<Vec<f64>>,
}

impl ForwardTrace {
    /// The network output for this pass.
    pub fn output(&self) -> &[f64] {
        self.activations
            .last()
            // lint: allow(D5) — forward_trace always pushes the input row first
            .expect("trace has at least the input")
    }
}

/// Dense feed-forward network with linear output layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
}

impl Mlp {
    /// Initializes the network with He/Xavier-style scaled uniform weights
    /// drawn from `rng`. Deterministic for a seeded RNG.
    ///
    /// # Panics
    /// Panics if the config has fewer than two layers or a zero-width layer.
    pub fn new(config: MlpConfig, rng: &mut impl Rng) -> Self {
        assert!(
            config.layer_sizes.len() >= 2,
            "network needs at least input and output layers"
        );
        assert!(
            config.layer_sizes.iter().all(|&s| s > 0),
            "layer sizes must be positive"
        );
        let mut layers = Vec::with_capacity(config.layer_sizes.len() - 1);
        for w in config.layer_sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
            let weights = Matrix::from_fn(fan_out, fan_in, |_, _| rng.gen_range(-bound..bound));
            layers.push(Layer {
                weights,
                biases: vec![0.0; fan_out],
            });
        }
        Self { config, layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.config.layer_sizes[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        // lint: allow(D5) — the constructor asserts layer_sizes.len() >= 2
        *self.config.layer_sizes.last().unwrap()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.rows() * l.weights.cols() + l.biases.len())
            .sum()
    }

    /// Forward pass returning only the output.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_trace(input)
            .activations
            .pop()
            .unwrap_or_default()
    }

    /// Forward pass that keeps every intermediate activation for backprop.
    ///
    /// # Panics
    /// Panics if `input.len()` differs from the configured input dimension.
    pub fn forward_trace(&self, input: &[f64]) -> ForwardTrace {
        assert_eq!(
            input.len(),
            self.input_dim(),
            "input dimension mismatch: got {}, network expects {}",
            input.len(),
            self.input_dim()
        );
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let prev = activations.last().map(Vec::as_slice).unwrap_or(input);
            let mut z = layer.weights.matvec(prev);
            for (zv, b) in z.iter_mut().zip(&layer.biases) {
                *zv += b;
            }
            if i != last {
                for v in &mut z {
                    *v = self.config.activation.apply(*v);
                }
            }
            activations.push(z);
        }
        ForwardTrace { activations }
    }

    /// Backpropagates `output_grad` (dL/d output) through the trace,
    /// returning parameter gradients.
    pub fn backward(&self, trace: &ForwardTrace, output_grad: &[f64]) -> MlpGradients {
        assert_eq!(
            output_grad.len(),
            self.output_dim(),
            "output gradient dimension mismatch"
        );
        let mut grads = MlpGradients::zeros_like(self);
        // delta = dL/d(pre-activation) for the current layer, walking backwards.
        let mut delta = output_grad.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let input = &trace.activations[i];
            let output = &trace.activations[i + 1];
            // Output layer is linear; hidden layers need the activation derivative.
            if i != self.layers.len() - 1 {
                for (d, &y) in delta.iter_mut().zip(output) {
                    *d *= self.config.activation.derivative_from_output(y);
                }
            }
            // dL/dW = delta (outer) input, dL/db = delta
            let wg = &mut grads.weight_grads[i];
            for (r, &d) in delta.iter().enumerate() {
                // lint: allow(D4) — exact-zero skip is a sparsity fast path, not a tolerance check
                if d == 0.0 {
                    continue;
                }
                let row = wg.row_mut(r);
                for (w, &x) in row.iter_mut().zip(input) {
                    *w += d * x;
                }
            }
            for (bg, &d) in grads.bias_grads[i].iter_mut().zip(&delta) {
                *bg += d;
            }
            // Propagate to the previous layer: delta_prev = W^T delta
            if i > 0 {
                let mut prev = vec![0.0; layer.weights.cols()];
                for (r, &d) in delta.iter().enumerate() {
                    // lint: allow(D4) — exact-zero skip is a sparsity fast path, not a tolerance check
                    if d == 0.0 {
                        continue;
                    }
                    for (p, &w) in prev.iter_mut().zip(layer.weights.row(r)) {
                        *p += w * d;
                    }
                }
                delta = prev;
            }
        }
        grads
    }

    /// Applies gradients with the given optimizer.
    pub fn apply_gradients(&mut self, grads: &MlpGradients, optimizer: &mut dyn Optimizer) {
        let mut slot = 0;
        for (layer, (wg, bg)) in self
            .layers
            .iter_mut()
            .zip(grads.weight_grads.iter().zip(&grads.bias_grads))
        {
            optimizer.step(slot, layer.weights.as_mut_slice(), wg.as_slice());
            slot += 1;
            optimizer.step(slot, &mut layer.biases, bg);
            slot += 1;
        }
    }

    /// Number of optimizer parameter slots this network uses (two per layer).
    pub fn optimizer_slots(&self) -> usize {
        self.layers.len() * 2
    }

    /// Copies the parameters of `source` into `self` (target-network sync).
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn copy_parameters_from(&mut self, source: &Mlp) {
        assert_eq!(
            self.config.layer_sizes, source.config.layer_sizes,
            "cannot copy parameters between different architectures"
        );
        self.layers = source.layers.clone();
    }

    /// Soft update `theta <- tau * theta_src + (1 - tau) * theta` (Polyak).
    pub fn blend_parameters_from(&mut self, source: &Mlp, tau: f64) {
        assert_eq!(self.config.layer_sizes, source.config.layer_sizes);
        for (dst, src) in self.layers.iter_mut().zip(&source.layers) {
            for (d, s) in dst
                .weights
                .as_mut_slice()
                .iter_mut()
                .zip(src.weights.as_slice())
            {
                *d = tau * s + (1.0 - tau) * *d;
            }
            for (d, s) in dst.biases.iter_mut().zip(&src.biases) {
                *d = tau * s + (1.0 - tau) * *d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mse_loss, mse_loss_grad};
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(MlpConfig::new(vec![2, 8, 1]), &mut rng)
    }

    #[test]
    fn forward_output_has_configured_dimension() {
        let net = tiny_net(1);
        assert_eq!(net.forward(&[0.1, -0.2]).len(), 1);
        assert_eq!(net.input_dim(), 2);
        assert_eq!(net.output_dim(), 1);
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let net = tiny_net(1);
        // 2*8 + 8 + 8*1 + 1 = 33
        assert_eq!(net.parameter_count(), 33);
    }

    #[test]
    fn identical_seeds_give_identical_networks() {
        let a = tiny_net(42);
        let b = tiny_net(42);
        assert_eq!(a.forward(&[0.3, 0.7]), b.forward(&[0.3, 0.7]));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Mlp::new(
            MlpConfig {
                layer_sizes: vec![3, 5, 2],
                activation: Activation::Tanh,
            },
            &mut rng,
        );
        let input = [0.2, -0.4, 0.9];
        let target = [0.5, -0.1];

        let trace = net.forward_trace(&input);
        let grad_out = mse_loss_grad(trace.output(), &target);
        let grads = net.backward(&trace, &grad_out);

        // Check the finite-difference gradient of a handful of weights.
        let eps = 1e-6;
        for layer_idx in 0..net.layers.len() {
            for flat in [0usize, 3] {
                let analytic = grads.weight_grads[layer_idx].as_slice()[flat];
                let orig = net.layers[layer_idx].weights.as_slice()[flat];
                net.layers[layer_idx].weights.as_mut_slice()[flat] = orig + eps;
                let up = mse_loss(&net.forward(&input), &target);
                net.layers[layer_idx].weights.as_mut_slice()[flat] = orig - eps;
                let down = mse_loss(&net.forward(&input), &target);
                net.layers[layer_idx].weights.as_mut_slice()[flat] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-6,
                    "layer {layer_idx} weight {flat}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn backward_matches_finite_differences_exhaustively_for_both_losses() {
        // Every weight and every bias of every layer, under both supported
        // losses, on a multi-hidden-layer Tanh network (smooth everywhere,
        // so central differences are trustworthy to ~eps^2). The spot-check
        // tests above stay as fast smoke; this is the authoritative one.
        use crate::loss::{huber_loss, huber_loss_grad};
        let delta = 0.5;
        let input = [0.3, -0.7, 0.15, 0.9];
        let target = [0.4, -0.9, 0.05];
        type LossFns = (
            &'static str,
            Box<dyn Fn(&[f64]) -> f64>,
            Box<dyn Fn(&[f64]) -> Vec<f64>>,
        );
        let losses: [LossFns; 2] = [
            (
                "mse",
                Box::new(move |p: &[f64]| mse_loss(p, &target)),
                Box::new(move |p: &[f64]| mse_loss_grad(p, &target)),
            ),
            (
                "huber",
                Box::new(move |p: &[f64]| huber_loss(p, &target, delta)),
                Box::new(move |p: &[f64]| huber_loss_grad(p, &target, delta)),
            ),
        ];
        for (loss_name, loss, loss_grad) in &losses {
            let mut rng = StdRng::seed_from_u64(19);
            let mut net = Mlp::new(
                MlpConfig {
                    layer_sizes: vec![4, 6, 5, 3],
                    activation: Activation::Tanh,
                },
                &mut rng,
            );
            let trace = net.forward_trace(&input);
            let grads = net.backward(&trace, &loss_grad(trace.output()));
            let eps = 1e-6;
            let mut checked = 0usize;
            for layer_idx in 0..net.layers.len() {
                let n_weights = net.layers[layer_idx].weights.as_slice().len();
                for flat in 0..n_weights {
                    let analytic = grads.weight_grads[layer_idx].as_slice()[flat];
                    let orig = net.layers[layer_idx].weights.as_slice()[flat];
                    net.layers[layer_idx].weights.as_mut_slice()[flat] = orig + eps;
                    let up = loss(&net.forward(&input));
                    net.layers[layer_idx].weights.as_mut_slice()[flat] = orig - eps;
                    let down = loss(&net.forward(&input));
                    net.layers[layer_idx].weights.as_mut_slice()[flat] = orig;
                    let numeric = (up - down) / (2.0 * eps);
                    assert!(
                        (analytic - numeric).abs() <= 1e-6 * analytic.abs().max(1.0),
                        "{loss_name} layer {layer_idx} weight {flat}: \
                         analytic {analytic} vs numeric {numeric}"
                    );
                    checked += 1;
                }
                for b in 0..net.layers[layer_idx].biases.len() {
                    let analytic = grads.bias_grads[layer_idx][b];
                    let orig = net.layers[layer_idx].biases[b];
                    net.layers[layer_idx].biases[b] = orig + eps;
                    let up = loss(&net.forward(&input));
                    net.layers[layer_idx].biases[b] = orig - eps;
                    let down = loss(&net.forward(&input));
                    net.layers[layer_idx].biases[b] = orig;
                    let numeric = (up - down) / (2.0 * eps);
                    assert!(
                        (analytic - numeric).abs() <= 1e-6 * analytic.abs().max(1.0),
                        "{loss_name} layer {layer_idx} bias {b}: \
                         analytic {analytic} vs numeric {numeric}"
                    );
                    checked += 1;
                }
            }
            assert_eq!(
                checked,
                net.parameter_count(),
                "{loss_name}: gradient check must cover every parameter"
            );
        }
    }

    #[test]
    fn relu_backward_matches_finite_differences_away_from_kink() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Mlp::new(MlpConfig::new(vec![2, 6, 1]), &mut rng);
        let input = [0.8, -0.3];
        let target = [0.25];
        let trace = net.forward_trace(&input);
        let grads = net.backward(&trace, &mse_loss_grad(trace.output(), &target));
        let eps = 1e-6;
        let analytic = grads.bias_grads[0][0];
        let orig = net.layers[0].biases[0];
        net.layers[0].biases[0] = orig + eps;
        let up = mse_loss(&net.forward(&input), &target);
        net.layers[0].biases[0] = orig - eps;
        let down = mse_loss(&net.forward(&input), &target);
        net.layers[0].biases[0] = orig;
        let numeric = (up - down) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-6);
    }

    #[test]
    fn training_fits_a_simple_function() {
        // Fit y = x0 + 2*x1 on a grid; a few hundred Adam steps should crush it.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Mlp::new(MlpConfig::new(vec![2, 16, 1]), &mut rng);
        let mut opt = Adam::new(0.01, net.optimizer_slots());
        let data: Vec<([f64; 2], f64)> = (0..25)
            .map(|i| {
                let x0 = (i % 5) as f64 / 5.0;
                let x1 = (i / 5) as f64 / 5.0;
                ([x0, x1], x0 + 2.0 * x1)
            })
            .collect();
        for _ in 0..400 {
            let mut batch_grads: Option<MlpGradients> = None;
            for (x, y) in &data {
                let trace = net.forward_trace(x);
                let g_out = mse_loss_grad(trace.output(), &[*y]);
                let g = net.backward(&trace, &g_out);
                match &mut batch_grads {
                    Some(acc) => acc.accumulate(&g),
                    None => batch_grads = Some(g),
                }
            }
            let mut g = batch_grads.unwrap();
            g.scale(1.0 / data.len() as f64);
            net.apply_gradients(&g, &mut opt);
        }
        let mut total = 0.0;
        for (x, y) in &data {
            let p = net.forward(x)[0];
            total += (p - y).abs();
        }
        let mae = total / data.len() as f64;
        assert!(mae < 0.05, "network failed to fit linear target, MAE {mae}");
    }

    #[test]
    fn copy_parameters_makes_networks_identical() {
        let mut a = tiny_net(1);
        let b = tiny_net(2);
        assert_ne!(a.forward(&[0.5, 0.5]), b.forward(&[0.5, 0.5]));
        a.copy_parameters_from(&b);
        assert_eq!(a.forward(&[0.5, 0.5]), b.forward(&[0.5, 0.5]));
    }

    #[test]
    fn blend_with_tau_one_equals_copy() {
        let mut a = tiny_net(1);
        let b = tiny_net(2);
        a.blend_parameters_from(&b, 1.0);
        assert_eq!(a.forward(&[0.1, 0.9]), b.forward(&[0.1, 0.9]));
    }

    #[test]
    fn gradient_clipping_bounds_norm() {
        let net = tiny_net(5);
        let trace = net.forward_trace(&[10.0, -10.0]);
        let mut grads = net.backward(&trace, &[100.0]);
        grads.clip_l2_norm(1.0);
        assert!(grads.l2_norm() <= 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_panics_on_bad_input() {
        let net = tiny_net(1);
        let _ = net.forward(&[1.0]);
    }
}
