//! Loss functions for regression and Q-learning targets.

/// Mean squared error over paired predictions and targets.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mse_loss(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(
        pred.len(),
        target.len(),
        "prediction/target length mismatch"
    );
    assert!(!pred.is_empty(), "loss over empty slice");
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Gradient of [`mse_loss`] with respect to the predictions.
pub fn mse_loss_grad(pred: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(
        pred.len(),
        target.len(),
        "prediction/target length mismatch"
    );
    let n = pred.len() as f64;
    pred.iter()
        .zip(target)
        .map(|(p, t)| 2.0 * (p - t) / n)
        .collect()
}

/// Huber loss with threshold `delta`; quadratic near zero, linear in the
/// tails. Standard choice for DQN targets because it bounds the gradient of
/// outlier temporal-difference errors.
pub fn huber_loss(pred: &[f64], target: &[f64], delta: f64) -> f64 {
    assert_eq!(
        pred.len(),
        target.len(),
        "prediction/target length mismatch"
    );
    assert!(!pred.is_empty(), "loss over empty slice");
    assert!(delta > 0.0, "huber delta must be positive");
    pred.iter()
        .zip(target)
        .map(|(p, t)| {
            let e = (p - t).abs();
            if e <= delta {
                0.5 * e * e
            } else {
                delta * (e - 0.5 * delta)
            }
        })
        .sum::<f64>()
        / pred.len() as f64
}

/// Gradient of [`huber_loss`] with respect to the predictions.
pub fn huber_loss_grad(pred: &[f64], target: &[f64], delta: f64) -> Vec<f64> {
    assert_eq!(
        pred.len(),
        target.len(),
        "prediction/target length mismatch"
    );
    assert!(delta > 0.0, "huber delta must be positive");
    let n = pred.len() as f64;
    pred.iter()
        .zip(target)
        .map(|(p, t)| {
            let e = p - t;
            if e.abs() <= delta {
                e / n
            } else {
                delta * e.signum() / n
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_exact_prediction_is_zero() {
        assert_eq!(mse_loss(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_matches_hand_computation() {
        // errors: 1 and -2 -> (1 + 4) / 2 = 2.5
        assert!((mse_loss(&[2.0, 0.0], &[1.0, 2.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mse_grad_points_toward_target() {
        let g = mse_loss_grad(&[2.0, 0.0], &[1.0, 2.0]);
        assert!(g[0] > 0.0, "over-prediction should have positive grad");
        assert!(g[1] < 0.0, "under-prediction should have negative grad");
    }

    #[test]
    fn huber_is_quadratic_inside_delta() {
        let l = huber_loss(&[0.5], &[0.0], 1.0);
        assert!((l - 0.125).abs() < 1e-12);
    }

    #[test]
    fn huber_is_linear_outside_delta() {
        // |e| = 3, delta = 1 -> 1 * (3 - 0.5) = 2.5
        let l = huber_loss(&[3.0], &[0.0], 1.0);
        assert!((l - 2.5).abs() < 1e-12);
    }

    #[test]
    fn huber_grad_is_clipped() {
        let g = huber_loss_grad(&[100.0], &[0.0], 1.0);
        assert!(
            (g[0] - 1.0).abs() < 1e-12,
            "tail gradient magnitude is delta"
        );
    }

    #[test]
    fn huber_grad_matches_finite_difference_inside() {
        let pred = [0.3];
        let target = [0.0];
        let eps = 1e-6;
        let fd = (huber_loss(&[pred[0] + eps], &target, 1.0)
            - huber_loss(&[pred[0] - eps], &target, 1.0))
            / (2.0 * eps);
        let g = huber_loss_grad(&pred, &target, 1.0);
        assert!((g[0] - fd).abs() < 1e-6);
    }
}
