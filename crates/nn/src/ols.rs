//! Ordinary least squares and ridge regression via normal equations.
//!
//! Used by the warehouse cost model (§5.2) to calibrate per-template latency
//! scaling across warehouse sizes and cluster-count predictions. Feature
//! dimensions are tiny (< 20), so solving the normal equations with Gaussian
//! elimination is accurate and fast.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted linear model `y = w . x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

impl LinearModel {
    /// Predicts the response for one feature vector.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the number of fitted weights.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    /// Mean squared error on a dataset.
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty());
        xs.iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum::<f64>()
            / xs.len() as f64
    }
}

/// Fits OLS with intercept. Returns `None` when the design matrix is rank
/// deficient (e.g. a constant feature plus the implicit intercept).
pub fn ols_fit(xs: &[Vec<f64>], ys: &[f64]) -> Option<LinearModel> {
    ridge_fit(xs, ys, 0.0)
}

/// Fits ridge regression with penalty `lambda` on the weights (the intercept
/// is not penalized). `lambda = 0` reduces to OLS.
///
/// # Panics
/// Panics when `xs`/`ys` lengths differ, the data is empty, feature vectors
/// have inconsistent dimensions, or `lambda < 0`.
pub fn ridge_fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Option<LinearModel> {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(!xs.is_empty(), "cannot fit on empty data");
    assert!(lambda >= 0.0, "ridge penalty must be non-negative");
    let d = xs[0].len();
    assert!(
        xs.iter().all(|x| x.len() == d),
        "inconsistent feature dimensions"
    );

    // Augmented design: [x, 1] so the intercept is the last coefficient.
    let n = xs.len();
    let dim = d + 1;
    // Normal equations: (X^T X + lambda * I') beta = X^T y, I' zeroes the
    // intercept entry.
    let mut xtx = Matrix::zeros(dim, dim);
    let mut xty = vec![0.0; dim];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..dim {
            let xi = if i < d { x[i] } else { 1.0 };
            xty[i] += xi * y;
            #[allow(clippy::needless_range_loop)]
            for j in i..dim {
                let xj = if j < d { x[j] } else { 1.0 };
                let v = xtx.get(i, j) + xi * xj;
                xtx.set(i, j, v);
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..dim {
        for j in 0..i {
            xtx.set(i, j, xtx.get(j, i));
        }
    }
    for i in 0..d {
        let v = xtx.get(i, i) + lambda * n as f64;
        xtx.set(i, i, v);
    }

    let beta = xtx.solve(&xty)?;
    Some(LinearModel {
        weights: beta[..d].to_vec(),
        intercept: beta[d],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_recovers_exact_linear_relationship() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 0.5 * x[1] + 7.0).collect();
        let m = ols_fit(&xs, &ys).expect("well-conditioned fit");
        assert!((m.weights[0] - 3.0).abs() < 1e-8);
        assert!((m.weights[1] + 0.5).abs() < 1e-8);
        assert!((m.intercept - 7.0).abs() < 1e-6);
    }

    #[test]
    fn ols_minimizes_mse_on_noisy_data() {
        // y = 2x + 1 with symmetric +-0.1 noise: slope and intercept should be
        // recovered exactly because the noise cancels.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20)
            .map(|i| 2.0 * i as f64 + 1.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let m = ols_fit(&xs, &ys).unwrap();
        assert!((m.weights[0] - 2.0).abs() < 0.01, "slope {}", m.weights[0]);
        assert!((m.intercept - 1.0).abs() < 0.15);
    }

    #[test]
    fn degenerate_design_returns_none() {
        // A feature identical to the intercept column makes X^T X singular.
        let xs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert!(ols_fit(&xs, &ys).is_none());
    }

    #[test]
    fn ridge_handles_degenerate_design() {
        let xs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let ys = vec![1.0, 2.0, 3.0];
        let m = ridge_fit(&xs, &ys, 0.1).expect("ridge regularizes the singularity");
        // Prediction at the only observed point should be near the mean.
        assert!((m.predict(&[1.0]) - 2.0).abs() < 0.2);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x[0]).collect();
        let ols = ols_fit(&xs, &ys).unwrap();
        let ridge = ridge_fit(&xs, &ys, 10.0).unwrap();
        assert!(ridge.weights[0].abs() < ols.weights[0].abs());
    }

    #[test]
    fn mse_of_perfect_fit_is_zero() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 4.0 - 2.0).collect();
        let m = ols_fit(&xs, &ys).unwrap();
        assert!(m.mse(&xs, &ys) < 1e-16);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn predict_panics_on_wrong_dimension() {
        let m = LinearModel {
            weights: vec![1.0, 2.0],
            intercept: 0.0,
        };
        let _ = m.predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot fit on empty data")]
    fn fit_panics_on_empty_data() {
        let _ = ols_fit(&[], &[]);
    }
}
