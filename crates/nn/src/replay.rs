//! Bounded experience-replay buffer for off-policy reinforcement learning.
//!
//! The paper (§8) highlights that Keebo's DRL models "benefit from having
//! access to large historical telemetry data, which enables [them] to learn
//! from a diverse range of past experiences". This buffer is the mechanism:
//! transitions observed on historical telemetry (and simulated rollouts) are
//! stored and sampled uniformly for Q-learning updates.

use rand::Rng;

/// Ring buffer over generic transitions with uniform random sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    capacity: usize,
    items: Vec<T>,
    next: usize,
    total_pushed: u64,
}

impl<T: Clone> ReplayBuffer<T> {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        Self {
            capacity,
            items: Vec::with_capacity(capacity.min(4096)),
            next: 0,
            total_pushed: 0,
        }
    }

    /// Adds a transition, evicting the oldest once at capacity.
    pub fn push(&mut self, item: T) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.next] = item;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total_pushed += 1;
    }

    /// Number of transitions currently stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no transitions are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of transitions ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Samples `n` transitions uniformly with replacement. Returns an empty
    /// vector when the buffer is empty.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> Vec<&T> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }

    /// Iterates over the stored transitions (storage order, not insertion
    /// order once the ring has wrapped).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Drops all stored transitions, keeping the capacity.
    pub fn clear(&mut self) {
        self.items.clear();
        self.next = 0;
    }

    /// Index the next push will write to (the ring cursor).
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// Rebuilds a buffer from exported parts, validating the ring invariants.
    /// The inverse of reading `capacity()`/`iter()`/`next_index()`/
    /// `total_pushed()`; used to restore persisted agent state.
    pub fn from_parts(
        capacity: usize,
        items: Vec<T>,
        next: usize,
        total_pushed: u64,
    ) -> Result<Self, String> {
        if capacity == 0 {
            return Err("replay buffer capacity must be positive".into());
        }
        if items.len() > capacity {
            return Err(format!(
                "replay buffer holds {} items but capacity is {capacity}",
                items.len()
            ));
        }
        if next >= capacity {
            return Err(format!(
                "replay cursor {next} out of range for capacity {capacity}"
            ));
        }
        if total_pushed < items.len() as u64 {
            return Err(format!(
                "total_pushed {total_pushed} is less than stored item count {}",
                items.len()
            ));
        }
        Ok(Self {
            capacity,
            items,
            next,
            total_pushed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_grows_until_capacity() {
        let mut buf = ReplayBuffer::new(3);
        assert!(buf.is_empty());
        for i in 0..3 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn push_beyond_capacity_evicts_oldest() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 3);
        let mut contents: Vec<i32> = buf.iter().copied().collect();
        contents.sort_unstable();
        assert_eq!(contents, vec![2, 3, 4]);
        assert_eq!(buf.total_pushed(), 5);
    }

    #[test]
    fn sample_returns_requested_count() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..4 {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(buf.sample(7, &mut rng).len(), 7);
    }

    #[test]
    fn sample_from_empty_buffer_is_empty() {
        let buf: ReplayBuffer<u8> = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(buf.sample(3, &mut rng).is_empty());
    }

    #[test]
    fn sample_only_returns_stored_items() {
        let mut buf = ReplayBuffer::new(8);
        for i in 10..14 {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(1);
        for s in buf.sample(100, &mut rng) {
            assert!((10..14).contains(s));
        }
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(i);
        }
        let a: Vec<i32> = buf
            .sample(5, &mut StdRng::seed_from_u64(9))
            .into_iter()
            .copied()
            .collect();
        let b: Vec<i32> = buf
            .sample(5, &mut StdRng::seed_from_u64(9))
            .into_iter()
            .copied()
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn clear_resets_contents() {
        let mut buf = ReplayBuffer::new(4);
        buf.push(1);
        buf.clear();
        assert!(buf.is_empty());
        buf.push(2);
        assert_eq!(buf.iter().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: ReplayBuffer<u8> = ReplayBuffer::new(0);
    }

    #[test]
    fn from_parts_round_trips_a_wrapped_ring() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(i);
        }
        let rebuilt = ReplayBuffer::from_parts(
            buf.capacity(),
            buf.iter().copied().collect(),
            buf.next_index(),
            buf.total_pushed(),
        )
        .unwrap();
        assert_eq!(rebuilt.capacity(), buf.capacity());
        assert_eq!(rebuilt.next_index(), buf.next_index());
        assert_eq!(rebuilt.total_pushed(), buf.total_pushed());
        assert_eq!(
            rebuilt.iter().copied().collect::<Vec<_>>(),
            buf.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn from_parts_rejects_invalid_shapes() {
        assert!(ReplayBuffer::<u8>::from_parts(0, vec![], 0, 0).is_err());
        assert!(ReplayBuffer::from_parts(2, vec![1, 2, 3], 0, 3).is_err());
        assert!(ReplayBuffer::from_parts(2, vec![1], 2, 1).is_err());
        assert!(ReplayBuffer::from_parts(4, vec![1, 2], 0, 1).is_err());
    }
}
