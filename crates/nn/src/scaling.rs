//! Feature standardization.
//!
//! Neural inputs in the agent crate mix features with wildly different scales
//! (queries/second vs. fraction-of-cache-warm vs. size index). Standardizing
//! to zero mean / unit variance keeps the small networks well conditioned.

use serde::{Deserialize, Serialize};

/// Per-feature mean/std scaler fitted on a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits a scaler on rows of features.
    ///
    /// Features with (near-)zero variance get std 1.0 so they pass through
    /// centered but unscaled.
    ///
    /// # Panics
    /// Panics on empty data or inconsistent feature dimensions.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit standardizer on empty data");
        let d = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == d),
            "inconsistent feature dimensions"
        );
        let n = rows.len() as f64;
        let mut means = vec![0.0; d];
        for r in rows {
            for (m, v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for r in rows {
            for ((var, v), m) in vars.iter_mut().zip(r).zip(&means) {
                let e = v - m;
                *var += e * e;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { means, stds }
    }

    /// An identity scaler for `dim` features (useful before any data exists).
    pub fn identity(dim: usize) -> Self {
        Self {
            means: vec![0.0; dim],
            stds: vec![1.0; dim],
        }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one feature vector.
    ///
    /// # Panics
    /// Panics if the dimension differs from the fitted dimension.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "feature dimension mismatch");
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Inverts [`Standardizer::transform`].
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.dim(), "feature dimension mismatch");
        z.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| v * s + m)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_data_has_zero_mean_unit_variance() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 1000.0 + 3.0 * i as f64])
            .collect();
        let s = Standardizer::fit(&rows);
        let z: Vec<Vec<f64>> = rows.iter().map(|r| s.transform(r)).collect();
        for f in 0..2 {
            let mean: f64 = z.iter().map(|r| r[f]).sum::<f64>() / z.len() as f64;
            let var: f64 = z.iter().map(|r| (r[f] - mean).powi(2)).sum::<f64>() / z.len() as f64;
            assert!(mean.abs() < 1e-10, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-10, "var {var}");
        }
    }

    #[test]
    fn constant_feature_passes_through_centered() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let s = Standardizer::fit(&rows);
        assert_eq!(s.transform(&[5.0]), vec![0.0]);
        assert_eq!(s.transform(&[6.0]), vec![1.0]);
    }

    #[test]
    fn inverse_round_trips() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 2.5, -(i as f64)]).collect();
        let s = Standardizer::fit(&rows);
        for r in &rows {
            let back = s.inverse_transform(&s.transform(r));
            for (a, b) in back.iter().zip(r) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn identity_is_a_no_op() {
        let s = Standardizer::identity(3);
        assert_eq!(s.transform(&[1.0, -2.0, 0.5]), vec![1.0, -2.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn transform_panics_on_wrong_dim() {
        let s = Standardizer::identity(2);
        let _ = s.transform(&[1.0]);
    }
}
