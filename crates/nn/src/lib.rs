//! Minimal machine-learning substrate for the Keebo Warehouse Optimization
//! reproduction.
//!
//! The paper's data-learning platform relies on two families of models:
//!
//! * small feed-forward networks trained with experience replay for the deep
//!   reinforcement learning control loop (§6), and
//! * classical regression models for calibrating the warehouse cost model's
//!   parameters (§5.2): latency scaling across warehouse sizes, query-gap
//!   statistics, and cluster-count prediction.
//!
//! No suitable offline ML crates exist in this environment, so this crate
//! implements the required pieces from scratch: a dense [`Mlp`] with
//! backpropagation, [`optim`] (SGD and Adam), an experience [`replay`] buffer,
//! ordinary least squares ([`ols`]), and feature [`scaling`]. Everything is
//! deterministic given a seeded RNG, which the rest of the workspace depends
//! on for reproducible experiments.

pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod ols;
pub mod optim;
pub mod replay;
pub mod scaling;

pub use loss::{huber_loss, huber_loss_grad, mse_loss, mse_loss_grad};
pub use matrix::Matrix;
pub use mlp::{Activation, Mlp, MlpConfig};
pub use ols::{ols_fit, ridge_fit, LinearModel};
pub use optim::{Adam, Optimizer, Sgd};
pub use replay::ReplayBuffer;
pub use scaling::Standardizer;
