//! A small dense row-major matrix used by the MLP and the OLS solver.
//!
//! The models in this workspace are tiny (state vectors of ~16 features,
//! hidden layers of 32–64 units), so a straightforward `Vec<f64>` backing
//! store with cache-friendly row-major loops is more than fast enough and
//! keeps the implementation auditable.

use serde::{Deserialize, Serialize};

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                // lint: allow(D4) — exact-zero skip is a sparsity fast path, not a tolerance check
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` when the matrix is (numerically) singular. Used by the
    /// OLS solver; dimensions are tiny so O(n^3) is fine.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(self.rows, b.len(), "rhs length must match matrix dimension");
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below diagonal.
            let pivot = (col..n).max_by(|&i, &j| {
                a.get(i, col)
                    .abs()
                    .partial_cmp(&a.get(j, col).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })?;
            if a.get(pivot, col).abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                for c in 0..n {
                    let tmp = a.get(col, c);
                    a.set(col, c, a.get(pivot, c));
                    a.set(pivot, c, tmp);
                }
                x.swap(col, pivot);
            }
            let diag = a.get(col, col);
            for r in (col + 1)..n {
                let factor = a.get(r, col) / diag;
                // lint: allow(D4) — exact-zero skip is a sparsity fast path, not a tolerance check
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = a.get(r, c) - factor * a.get(col, c);
                    a.set(r, c, v);
                }
                x[r] -= factor * x[col];
            }
        }

        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for (c, xc) in x.iter().enumerate().take(n).skip(col + 1) {
                sum -= a.get(col, c) * xc;
            }
            x[col] = sum / a.get(col, col);
        }
        Some(x)
    }

    /// Element-wise in-place addition of `rhs * scale`.
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f64) {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * scale;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_vec(2, 2, vec![1.5, -2.0, 0.25, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 2.0, 3.0, 4.0]);
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&v), vec![-2.0, 20.0]);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_vec(3, 3, vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0]);
        let b = vec![8.0, -11.0, -3.0];
        let x = a.solve(&b).expect("system is solvable");
        let expected = [2.0, 3.0, -1.0];
        for (got, want) in x.iter().zip(expected) {
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
    }

    #[test]
    fn solve_detects_singular_matrix() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_handles_permuted_pivots() {
        // Leading zero on the diagonal forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let g = Matrix::from_vec(1, 2, vec![2.0, -4.0]);
        a.add_scaled(&g, 0.5);
        assert_eq!(a.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_panics_on_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
