//! First-order optimizers.
//!
//! Optimizers are keyed by a *slot* index so that one optimizer instance can
//! own the state (moments) for every parameter tensor of a network: the MLP
//! uses two slots per layer (weights, biases).

use serde::{Deserialize, Serialize};

/// A first-order optimizer over flat parameter buffers.
pub trait Optimizer {
    /// Applies one update to `params` given `grads` for parameter slot `slot`.
    ///
    /// # Panics
    /// Implementations panic if `params.len() != grads.len()`.
    fn step(&mut self, slot: usize, params: &mut [f64], grads: &[f64]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Creates an SGD optimizer for `slots` parameter tensors.
    pub fn new(lr: f64, momentum: f64, slots: usize) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: vec![Vec::new(); slots],
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let v = &mut self.velocity[slot];
        if v.len() != params.len() {
            *v = vec![0.0; params.len()];
        }
        for ((p, g), vel) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vel = self.momentum * *vel - self.lr * g;
            *p += *vel;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates an Adam optimizer with default betas (0.9, 0.999) for `slots`
    /// parameter tensors.
    pub fn new(lr: f64, slots: usize) -> Self {
        Self::with_betas(lr, 0.9, 0.999, slots)
    }

    /// Full-control constructor.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64, slots: usize) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: vec![Vec::new(); slots],
            v: vec![Vec::new(); slots],
        }
    }

    /// Signals the start of a new update step. Called implicitly by slot 0;
    /// all slots updated between two slot-0 calls share one timestep.
    fn maybe_advance(&mut self, slot: usize) {
        if slot == 0 {
            self.t += 1;
        } else if self.t == 0 {
            // First use didn't start at slot 0; still need t >= 1 for bias
            // correction to be defined.
            self.t = 1;
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        self.maybe_advance(slot);
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        if m.len() != params.len() {
            *m = vec![0.0; params.len()];
            *v = vec![0.0; params.len()];
        }
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), mi), vi) in params
            .iter_mut()
            .zip(grads)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / b1t;
            let v_hat = *vi / b2t;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 with the given optimizer.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 1);
        let x = minimize(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "got {x}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9, 1);
        let x = minimize(&mut opt, 400);
        assert!((x - 3.0).abs() < 1e-4, "got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 1);
        let x = minimize(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn adam_first_step_magnitude_is_learning_rate() {
        // With bias correction, the first Adam step is ~lr * sign(grad).
        let mut opt = Adam::new(0.5, 1);
        let mut x = [0.0];
        opt.step(0, &mut x, &[10.0]);
        assert!((x[0] + 0.5).abs() < 1e-6, "got {}", x[0]);
    }

    #[test]
    fn multiple_slots_keep_independent_state() {
        let mut opt = Adam::new(0.1, 2);
        let mut a = [0.0];
        let mut b = [0.0];
        for _ in 0..300 {
            let ga = [2.0 * (a[0] - 1.0)];
            let gb = [2.0 * (b[0] + 2.0)];
            opt.step(0, &mut a, &ga);
            opt.step(1, &mut b, &gb);
        }
        assert!((a[0] - 1.0).abs() < 1e-2);
        assert!((b[0] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn learning_rate_can_be_scheduled() {
        let mut opt = Sgd::new(0.1, 0.0, 1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "param/grad length mismatch")]
    fn step_panics_on_length_mismatch() {
        let mut opt = Sgd::new(0.1, 0.0, 1);
        let mut p = [0.0, 1.0];
        opt.step(0, &mut p, &[1.0]);
    }
}
