//! Prometheus text exposition format for [`MetricsSnapshot`].

use crate::registry::MetricsSnapshot;
use std::fmt::Write;

/// Maps a dotted metric name to a Prometheus-legal identifier.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v.is_sign_positive() { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot in the Prometheus text format: `# TYPE` headers,
/// cumulative `_bucket{le=...}` series for histograms, `_sum` and `_count`.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", prom_f64(*value));
    }
    for h in &snapshot.histograms {
        let n = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.buckets) {
            cumulative += count;
            let _ = writeln!(
                out,
                "{n}_bucket{{le=\"{}\"}} {cumulative}",
                prom_f64(*bound)
            );
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", prom_f64(h.sum));
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn renders_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("keebo.actuator.applied").add(3);
        reg.gauge("keebo.fleet.tenants").set(4.0);
        let h = reg.histogram("cdw_sim.query.queue_wait_ms", &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(5_000.0);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE keebo_actuator_applied counter"));
        assert!(text.contains("keebo_actuator_applied 3"));
        assert!(text.contains("# TYPE keebo_fleet_tenants gauge"));
        assert!(text.contains("keebo_fleet_tenants 4"));
        assert!(text.contains("cdw_sim_query_queue_wait_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("cdw_sim_query_queue_wait_ms_bucket{le=\"100\"} 2"));
        assert!(text.contains("cdw_sim_query_queue_wait_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cdw_sim_query_queue_wait_ms_sum 5055"));
        assert!(text.contains("cdw_sim_query_queue_wait_ms_count 3"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let reg = MetricsRegistry::new();
        assert!(prometheus_text(&reg.snapshot()).is_empty());
    }
}
