//! Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Handles are `Arc`-backed and cheap to clone; the hot path (inc/observe)
//! is a couple of relaxed atomic ops and never allocates. Registration
//! (name lookup) takes a mutex and is meant for setup paths or cold code.
//! Each registry carries its own enable flag, shared with every handle it
//! hands out, so disabling the global registry cannot perturb independent
//! registries (and vice versa).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a metrics map, recovering from poisoning. The maps hold plain
/// handle data (Arc'd atomics), which a panic on another thread cannot
/// leave in a torn state, so observability keeps working instead of
/// cascading the abort into every instrumented thread.
fn lock_metrics<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            value: Arc::new(AtomicU64::new(0)),
            enabled,
        }
    }

    /// Increments by one (no-op while the owning registry is disabled).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n` (no-op while the owning registry is disabled).
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the last observed `f64` value (stored as bits).
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            enabled,
        }
    }

    /// Sets the gauge (no-op while the owning registry is disabled).
    pub fn set(&self, value: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) to the gauge via a CAS loop on the
    /// f64 bit pattern — safe for concurrent up/down counting such as
    /// busy-worker tracking (no-op while the owning registry is disabled).
    pub fn add(&self, delta: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Adds `delta` now and subtracts it again when the returned guard
    /// drops — including during a panic unwind. Up/down gauges tracking
    /// in-flight work (busy workers, queue occupancy) must use this instead
    /// of paired `add(+d)`/`add(-d)` calls, which leak the increment if the
    /// code between them unwinds and leave the gauge drifted forever.
    #[must_use = "dropping the guard immediately undoes the increment"]
    pub fn add_scoped(&self, delta: f64) -> GaugeGuard {
        self.add(delta);
        GaugeGuard {
            gauge: self.clone(),
            delta,
        }
    }
}

/// RAII guard from [`Gauge::add_scoped`]: undoes the increment on drop, on
/// the normal path and the unwind path alike.
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Gauge,
    delta: f64,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.add(-self.delta);
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing. An implicit
    /// +Inf bucket catches everything above the last bound.
    bounds: Vec<f64>,
    /// One slot per finite bound plus the +Inf overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, stored as f64 bits updated via CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram (Prometheus-style cumulative export).
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
    enabled: Arc<AtomicBool>,
}

impl Histogram {
    fn with_bounds(bounds: &[f64], enabled: Arc<AtomicBool>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
            enabled,
        }
    }

    /// Records one observation (no-op while the owning registry is
    /// disabled). NaN observations land in the +Inf bucket and are
    /// excluded from `sum`.
    pub fn observe(&self, value: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let inner = &self.inner;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            let mut cur = inner.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + value).to_bits();
                match inner.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.inner.bounds.clone(),
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; last entry is the +Inf bucket.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

/// Point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Registry of named metrics. Lookup by name is mutex-guarded; returned
/// handles update shared atomics without further locking.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether collection through this registry's handles is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables collection for every handle this registry has
    /// handed out (or will hand out).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock_metrics(&self.counters);
        map.entry(name.to_string())
            .or_insert_with(|| Counter::new(self.enabled.clone()))
            .clone()
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock_metrics(&self.gauges);
        map.entry(name.to_string())
            .or_insert_with(|| Gauge::new(self.enabled.clone()))
            .clone()
    }

    /// Returns (registering on first use) the histogram named `name` with
    /// the given finite bucket upper bounds. Bounds passed on subsequent
    /// lookups of an existing name are ignored.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut map = lock_metrics(&self.histograms);
        map.entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds, self.enabled.clone()))
            .clone()
    }

    /// Copies out every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock_metrics(&self.counters)
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let gauges = lock_metrics(&self.gauges)
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let histograms = lock_metrics(&self.histograms)
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every registered metric in place. Existing handles remain
    /// valid (they share the zeroed atomics), so this is safe to call
    /// between benchmark phases or tests.
    pub fn reset(&self) {
        for c in lock_metrics(&self.counters).values() {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in lock_metrics(&self.gauges).values() {
            g.bits.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for h in lock_metrics(&self.histograms).values() {
            for b in &h.inner.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.inner.count.store(0, Ordering::Relaxed);
            h.inner.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_survives_reset() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ticks");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter("ticks").get(), 5, "same handle by name");
        reg.reset();
        assert_eq!(c.get(), 0, "existing handle sees the reset");
        c.inc();
        assert_eq!(reg.counter("ticks").get(), 1);
    }

    #[test]
    fn gauge_holds_last_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(3.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn gauge_add_counts_up_and_down_concurrently() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("busy");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        g.add(1.0);
                        g.add(-1.0);
                    }
                    g.add(2.5);
                });
            }
        });
        assert_eq!(g.get(), 10.0, "4 threads each net +2.5");
    }

    #[test]
    fn gauge_guard_undoes_increment_on_drop_and_unwind() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("inflight");
        {
            let _guard = g.add_scoped(1.0);
            assert_eq!(g.get(), 1.0);
        }
        assert_eq!(g.get(), 0.0, "normal drop restores the gauge");

        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = g.add_scoped(1.0);
            panic!("boom");
        }));
        assert!(res.is_err());
        assert_eq!(g.get(), 0.0, "unwind drop restores the gauge");
    }

    #[test]
    fn disabling_registry_freezes_values() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h", &[1.0, 10.0]);
        c.inc();
        g.set(5.0);
        h.observe(3.0);
        reg.set_enabled(false);
        c.inc();
        c.add(10);
        g.set(9.0);
        g.add(4.0);
        h.observe(3.0);
        assert_eq!(c.get(), 1);
        assert_eq!(g.get(), 5.0);
        assert_eq!(h.count(), 1);
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(10.0); // boundary lands in the <=10 bucket
        h.observe(50.0);
        h.observe(1e9);
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.buckets, vec![2, 1, 1]);
        assert_eq!(hs.count, 4);
        assert!((hs.sum - (5.0 + 10.0 + 50.0 + 1e9)).abs() < 1e-6);
    }

    #[test]
    fn nan_observation_counts_but_skips_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("weird", &[1.0]);
        h.observe(f64::NAN);
        h.observe(0.5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].buckets, vec![1, 1]);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("b");
        reg.counter("a");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("shared");
        let h = reg.histogram("hist", &[0.5]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe((i % 2) as f64);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 2000.0).abs() < 1e-9);
    }
}
