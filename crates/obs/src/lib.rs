//! Observability layer for the KWO reproduction.
//!
//! The paper's KWO runs as a managed service whose operators live off
//! real-time monitoring and a customer-facing savings dashboard (§6). This
//! crate provides the in-process half of that story:
//!
//! - [`MetricsRegistry`]: named counters, gauges, and fixed-bucket
//!   histograms with lock-free hot paths, safe to update from fleet worker
//!   threads concurrently. A process-global registry ([`global`]) lets deep
//!   call sites (billing, replay, actuation) record without plumbing a
//!   handle through every constructor.
//! - [`DecisionTrace`]: a bounded ring buffer of per-control-tick
//!   [`DecisionEvent`]s — observed state features, the full action mask with
//!   per-action masking reasons, the chosen action, and the reward — enough
//!   to answer "why did WH_A downsize at hour 412?".
//! - Exporters: [`prometheus_text`] renders a registry snapshot in the
//!   Prometheus text exposition format; [`DecisionTrace::to_jsonl`] emits
//!   one JSON object per event.
//!
//! # Zero perturbation
//!
//! Nothing in this crate consumes randomness or feeds back into simulation
//! or control-plane state: metric updates are fire-and-forget atomics and
//! trace recording only copies values out. Disabling collection via
//! [`set_enabled`]`(false)` therefore yields bit-identical simulation
//! results (pinned by `keebo::fleet` digest tests).

mod export;
mod registry;
mod trace;

pub use export::prometheus_text;
pub use registry::{
    Counter, Gauge, GaugeGuard, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{DecisionEvent, DecisionTrace, MaskEntry, TraceFeatures};

use std::sync::OnceLock;

/// Returns whether collection on the [`global`] registry is enabled.
pub fn enabled() -> bool {
    global().enabled()
}

/// Enables or disables collection on the [`global`] registry. Every handle
/// it has handed out (or will hand out) becomes a no-op while disabled;
/// registration and snapshots are unaffected. Registries created with
/// [`MetricsRegistry::new`] carry their own independent switch.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// The process-global registry. Instrumented crates register their metrics
/// here; exporters snapshot it.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("obs.test.shared");
        let before = c.get();
        global().counter("obs.test.shared").inc();
        assert_eq!(c.get(), before + 1);
    }
}
