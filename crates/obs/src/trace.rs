//! Decision trace: a bounded ring buffer of per-control-tick events.
//!
//! Every orchestrator tick appends one [`DecisionEvent`] capturing what the
//! controller saw (state features), what it was allowed to do (the action
//! mask with per-action masking reasons), what it chose, and the reward it
//! received for its previous action. The buffer is bounded so a fleet-scale
//! run cannot grow without bound; once full, the oldest events are dropped
//! (and counted).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Observed state features snapshot for one tick.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceFeatures {
    pub arrival_rate_per_hour: f64,
    pub mean_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub mean_queue_ms: f64,
    pub mean_concurrency: f64,
    pub queue_depth: usize,
    pub load_zscore: f64,
    pub latency_ratio: f64,
}

impl TraceFeatures {
    /// Replaces non-finite fields with 0.0 so the JSONL export stays
    /// round-trippable (JSON has no NaN/Inf literal).
    pub fn sanitized(mut self) -> Self {
        for f in [
            &mut self.arrival_rate_per_hour,
            &mut self.mean_latency_ms,
            &mut self.p99_latency_ms,
            &mut self.mean_queue_ms,
            &mut self.mean_concurrency,
            &mut self.load_zscore,
            &mut self.latency_ratio,
        ] {
            if !f.is_finite() {
                *f = 0.0;
            }
        }
        self
    }
}

/// One action's entry in the tick's mask: was it allowed, and if not, why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskEntry {
    pub action: String,
    pub allowed: bool,
    /// Masking reasons, e.g. a constraint rule name (C1–C4), `slider-floor`,
    /// `perf-unhealthy`, `health:degraded-fallback`. Empty when allowed.
    pub reasons: Vec<String>,
}

/// One control tick's decision record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionEvent {
    /// Simulation time of the tick (ms).
    pub t_ms: u64,
    /// Hour index from simulation start (t_ms / 3_600_000) — the unit an
    /// operator asks in ("why did WH_A downsize at hour 412?").
    pub hour: u64,
    pub warehouse: String,
    /// Health state at decision time (`healthy`, `degraded(...)`, `frozen`).
    pub health: String,
    /// Warehouse size at decision time (e.g. `Small`).
    pub size: String,
    pub min_clusters: u32,
    pub max_clusters: u32,
    pub auto_suspend_ms: u64,
    pub features: TraceFeatures,
    /// Full action mask. Empty on ticks that never reached masking
    /// (paused, frozen, degraded-without-fallback).
    pub mask: Vec<MaskEntry>,
    /// The action taken this tick (an `AgentAction` debug name, or `NoOp`).
    pub chosen: String,
    /// Why: `policy`, `degraded-fallback`, `backoff-rollback`, `backoff`,
    /// `capacity-decay`, `paused:external-change`, `frozen`, ...
    pub reason: String,
    /// Reward credited this tick for the *previous* action (None while
    /// onboarding or when no transition was observed).
    pub reward: Option<f64>,
}

/// Bounded ring buffer of [`DecisionEvent`]s. A capacity of 0 disables
/// recording entirely.
#[derive(Debug, Clone, Default)]
pub struct DecisionTrace {
    capacity: usize,
    events: VecDeque<DecisionEvent>,
    dropped: u64,
}

impl DecisionTrace {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Whether this trace records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, evicting the oldest when full. No-op when
    /// capacity is 0.
    pub fn record(&mut self, event: DecisionEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Oldest-to-newest iteration.
    pub fn events(&self) -> impl Iterator<Item = &DecisionEvent> {
        self.events.iter()
    }

    /// All events for the given hour index.
    pub fn events_at_hour(&self, hour: u64) -> Vec<&DecisionEvent> {
        self.events.iter().filter(|e| e.hour == hour).collect()
    }

    /// Serializes the buffer as JSON Lines (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            // lint: allow(D5) — serializing a plain in-memory struct cannot fail
            out.push_str(&serde_json::to_string(e).expect("trace event serializes"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL export back into events (for validation round-trips).
    pub fn parse_jsonl(text: &str) -> Result<Vec<DecisionEvent>, String> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str::<DecisionEvent>(l).map_err(|e| format!("{e:?}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t_ms: u64, chosen: &str) -> DecisionEvent {
        DecisionEvent {
            t_ms,
            hour: t_ms / 3_600_000,
            warehouse: "WH_A".into(),
            health: "healthy".into(),
            size: "Small".into(),
            min_clusters: 1,
            max_clusters: 3,
            auto_suspend_ms: 600_000,
            features: TraceFeatures {
                arrival_rate_per_hour: 120.0,
                mean_latency_ms: 850.0,
                p99_latency_ms: 4_000.0,
                mean_queue_ms: 12.0,
                mean_concurrency: 1.5,
                queue_depth: 0,
                load_zscore: 0.2,
                latency_ratio: 1.01,
            },
            mask: vec![
                MaskEntry {
                    action: "NoOp".into(),
                    allowed: true,
                    reasons: vec![],
                },
                MaskEntry {
                    action: "SizeDown".into(),
                    allowed: false,
                    reasons: vec!["slider-floor".into()],
                },
            ],
            chosen: chosen.into(),
            reason: "policy".into(),
            reward: Some(0.42),
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut tr = DecisionTrace::new(2);
        tr.record(event(0, "NoOp"));
        tr.record(event(1, "SizeUp"));
        tr.record(event(2, "SizeDown"));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 1);
        let ts: Vec<u64> = tr.events().map(|e| e.t_ms).collect();
        assert_eq!(ts, vec![1, 2]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut tr = DecisionTrace::new(0);
        assert!(!tr.is_enabled());
        tr.record(event(0, "NoOp"));
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0);
        assert_eq!(tr.to_jsonl(), "");
    }

    #[test]
    fn jsonl_round_trips() {
        let mut tr = DecisionTrace::new(8);
        tr.record(event(0, "NoOp"));
        tr.record(event(3_600_000, "SizeDown"));
        let text = tr.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let parsed = DecisionTrace::parse_jsonl(&text).expect("parses back");
        let original: Vec<DecisionEvent> = tr.events().cloned().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn events_at_hour_filters() {
        let mut tr = DecisionTrace::new(8);
        tr.record(event(0, "NoOp"));
        tr.record(event(3_600_000, "SizeDown"));
        tr.record(event(3_600_001, "NoOp"));
        assert_eq!(tr.events_at_hour(1).len(), 2);
        assert_eq!(tr.events_at_hour(0).len(), 1);
        assert!(tr.events_at_hour(412).is_empty());
    }

    #[test]
    fn sanitized_clears_non_finite_features() {
        let f = TraceFeatures {
            latency_ratio: f64::NAN,
            load_zscore: f64::INFINITY,
            mean_latency_ms: 10.0,
            ..TraceFeatures::default()
        }
        .sanitized();
        assert_eq!(f.latency_ratio, 0.0);
        assert_eq!(f.load_zscore, 0.0);
        assert_eq!(f.mean_latency_ms, 10.0);
    }
}
