//! Simulation time.
//!
//! Time is a `u64` count of milliseconds since the start of the simulation.
//! Milliseconds are fine-grained enough for sub-second query latencies (the
//! paper's Fig. 7 reports average latencies around 1.4 s) while keeping all
//! arithmetic exact and deterministic.

/// Milliseconds since simulation start.
pub type SimTime = u64;

/// One second in [`SimTime`] units.
pub const SECOND_MS: SimTime = 1_000;
/// One minute in [`SimTime`] units.
pub const MINUTE_MS: SimTime = 60 * SECOND_MS;
/// One hour in [`SimTime`] units.
pub const HOUR_MS: SimTime = 60 * MINUTE_MS;
/// One day in [`SimTime`] units.
pub const DAY_MS: SimTime = 24 * HOUR_MS;

/// Index of the hour bucket containing `t` (hour 0 = [0, 1h)).
#[inline]
pub fn hour_index(t: SimTime) -> u64 {
    t / HOUR_MS
}

/// Index of the day containing `t` (day 0 = [0, 24h)).
#[inline]
pub fn day_index(t: SimTime) -> u64 {
    t / DAY_MS
}

/// Fraction of the day elapsed at `t`, in [0, 1).
#[inline]
pub fn time_of_day_fraction(t: SimTime) -> f64 {
    crate::billing::ms_fraction(t % DAY_MS, DAY_MS)
}

/// Hour of day in [0, 24).
#[inline]
pub fn hour_of_day(t: SimTime) -> f64 {
    time_of_day_fraction(t) * 24.0
}

/// Day of week in [0, 7), with day 0 of the simulation being weekday 0.
#[inline]
pub fn day_of_week(t: SimTime) -> u8 {
    (day_index(t) % 7) as u8
}

/// True when `t` falls on a weekend (weekdays 5 and 6 of the sim week).
#[inline]
pub fn is_weekend(t: SimTime) -> bool {
    day_of_week(t) >= 5
}

/// Converts milliseconds to whole billing seconds, rounding up (Snowflake
/// bills any started second).
#[inline]
pub fn ms_to_billing_seconds(ms: SimTime) -> u64 {
    ms.div_ceil(SECOND_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_index_buckets_boundaries_correctly() {
        assert_eq!(hour_index(0), 0);
        assert_eq!(hour_index(HOUR_MS - 1), 0);
        assert_eq!(hour_index(HOUR_MS), 1);
        assert_eq!(hour_index(25 * HOUR_MS + 1), 25);
    }

    #[test]
    fn day_index_and_week_wrap() {
        assert_eq!(day_index(0), 0);
        assert_eq!(day_index(DAY_MS), 1);
        assert_eq!(day_of_week(6 * DAY_MS), 6);
        assert_eq!(day_of_week(7 * DAY_MS), 0);
    }

    #[test]
    fn weekend_detection() {
        assert!(!is_weekend(0));
        assert!(!is_weekend(4 * DAY_MS));
        assert!(is_weekend(5 * DAY_MS));
        assert!(is_weekend(6 * DAY_MS + HOUR_MS));
        assert!(!is_weekend(7 * DAY_MS));
    }

    #[test]
    fn time_of_day_fraction_is_periodic() {
        assert_eq!(time_of_day_fraction(0), 0.0);
        assert!((time_of_day_fraction(12 * HOUR_MS) - 0.5).abs() < 1e-12);
        assert!((time_of_day_fraction(DAY_MS + 6 * HOUR_MS) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hour_of_day_spans_24() {
        assert!((hour_of_day(23 * HOUR_MS) - 23.0).abs() < 1e-9);
        assert!(hour_of_day(DAY_MS - 1) < 24.0);
    }

    #[test]
    fn billing_seconds_round_up() {
        assert_eq!(ms_to_billing_seconds(0), 0);
        assert_eq!(ms_to_billing_seconds(1), 1);
        assert_eq!(ms_to_billing_seconds(999), 1);
        assert_eq!(ms_to_billing_seconds(1000), 1);
        assert_eq!(ms_to_billing_seconds(1001), 2);
    }
}
