//! Multi-cluster scale-out policies.
//!
//! Snowflake offers two dynamic policies — Standard (scale out aggressively
//! to prevent queuing) and Economy (keep clusters fully occupied, tolerating
//! some queuing) — plus the static Maximized mode where min == max clusters
//! (§3 of the paper).

use serde::{Deserialize, Serialize};

/// Scale-out policy for a multi-cluster warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ScalingPolicy {
    /// Start a new cluster as soon as a query queues.
    #[default]
    Standard,
    /// Start a new cluster only when the queued work would keep it busy for
    /// at least [`ECONOMY_MIN_BUSY_MS`] of estimated execution time.
    Economy,
    /// All clusters run whenever the warehouse is running (caller should set
    /// min == max clusters; the warehouse enforces it on resume).
    Maximized,
}

/// Economy only adds a cluster when queued work is estimated to keep it busy
/// for at least this long (Snowflake documents ~6 minutes).
pub const ECONOMY_MIN_BUSY_MS: u64 = 6 * 60 * 1000;

/// How long a cluster must sit idle before the policy retires it (clusters
/// above `min_clusters` only).
pub const STANDARD_IDLE_RETIRE_MS: u64 = 2 * 60 * 1000;
/// Economy keeps idle clusters longer to avoid churn.
pub const ECONOMY_IDLE_RETIRE_MS: u64 = 5 * 60 * 1000;

impl ScalingPolicy {
    /// Decides whether a new cluster should be started, given the current
    /// queue depth and an estimate of per-query execution time.
    ///
    /// `queued` counts queries waiting with no free slot anywhere;
    /// `est_exec_ms` is a recent-average execution time used to estimate how
    /// long the queue would keep a new cluster busy.
    pub fn should_scale_out(self, queued: usize, est_exec_ms: f64) -> bool {
        match self {
            ScalingPolicy::Standard => queued > 0,
            ScalingPolicy::Economy => queued as f64 * est_exec_ms >= ECONOMY_MIN_BUSY_MS as f64,
            // Maximized never scales dynamically; all clusters are already up.
            ScalingPolicy::Maximized => false,
        }
    }

    /// Idle time after which a surplus cluster is retired.
    pub fn idle_retire_ms(self) -> u64 {
        match self {
            ScalingPolicy::Standard => STANDARD_IDLE_RETIRE_MS,
            ScalingPolicy::Economy => ECONOMY_IDLE_RETIRE_MS,
            // Maximized clusters are never retired while running.
            ScalingPolicy::Maximized => u64::MAX,
        }
    }

    /// Snowflake's SQL spelling.
    pub fn sql_name(self) -> &'static str {
        match self {
            ScalingPolicy::Standard => "STANDARD",
            ScalingPolicy::Economy => "ECONOMY",
            ScalingPolicy::Maximized => "MAXIMIZED",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scales_on_any_queue() {
        assert!(ScalingPolicy::Standard.should_scale_out(1, 10.0));
        assert!(!ScalingPolicy::Standard.should_scale_out(0, 10.0));
    }

    #[test]
    fn economy_requires_sustained_work() {
        let p = ScalingPolicy::Economy;
        // 2 queries x 30 s = 60 s of work: far less than 6 minutes.
        assert!(!p.should_scale_out(2, 30_000.0));
        // 8 queries x 60 s = 8 minutes of work: scale out.
        assert!(p.should_scale_out(8, 60_000.0));
        // Exactly at the threshold counts.
        assert!(p.should_scale_out(6, 60_000.0));
    }

    #[test]
    fn maximized_never_scales_dynamically() {
        assert!(!ScalingPolicy::Maximized.should_scale_out(100, 60_000.0));
    }

    #[test]
    fn economy_retires_more_lazily_than_standard() {
        assert!(ScalingPolicy::Economy.idle_retire_ms() > ScalingPolicy::Standard.idle_retire_ms());
        assert_eq!(ScalingPolicy::Maximized.idle_retire_ms(), u64::MAX);
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(ScalingPolicy::default(), ScalingPolicy::Standard);
    }
}
