//! Warehouse configuration — the knobs KWO optimizes.

use crate::policy::ScalingPolicy;
use crate::size::WarehouseSize;
use crate::time::{SimTime, SECOND_MS};
use serde::{Deserialize, Serialize};

/// The user-settable configuration of one virtual warehouse. These are
/// exactly the knobs §3 of the paper discusses: size (memory optimization via
/// resize), auto-suspend interval (memory optimization), and the min/max
/// cluster range plus scaling policy (warehouse parallelism).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseConfig {
    /// T-shirt size; applies to every cluster of the warehouse.
    pub size: WarehouseSize,
    /// Idle time after which the warehouse auto-suspends.
    pub auto_suspend_ms: SimTime,
    /// Whether the warehouse resumes automatically when a query arrives.
    pub auto_resume: bool,
    /// Minimum clusters kept running while the warehouse is resumed.
    pub min_clusters: u32,
    /// Maximum clusters the warehouse may scale out to.
    pub max_clusters: u32,
    /// Dynamic scale-out policy.
    pub scaling_policy: ScalingPolicy,
    /// Concurrent queries one cluster can run before queuing (Snowflake's
    /// MAX_CONCURRENCY_LEVEL, default 8).
    pub max_concurrency: u32,
}

impl WarehouseConfig {
    /// Snowflake's default auto-suspend: 10 minutes.
    pub const DEFAULT_AUTO_SUSPEND_MS: SimTime = 600 * SECOND_MS;

    /// Creates a single-cluster warehouse of `size` with Snowflake-ish
    /// defaults (auto-suspend 10 min, auto-resume on, concurrency 8).
    pub fn new(size: WarehouseSize) -> Self {
        Self {
            size,
            auto_suspend_ms: Self::DEFAULT_AUTO_SUSPEND_MS,
            auto_resume: true,
            min_clusters: 1,
            max_clusters: 1,
            scaling_policy: ScalingPolicy::Standard,
            max_concurrency: 8,
        }
    }

    /// Sets the auto-suspend interval in seconds.
    pub fn with_auto_suspend_secs(mut self, secs: u64) -> Self {
        self.auto_suspend_ms = secs * SECOND_MS;
        self
    }

    /// Sets the multi-cluster range.
    pub fn with_clusters(mut self, min: u32, max: u32) -> Self {
        self.min_clusters = min;
        self.max_clusters = max;
        self
    }

    /// Sets the scale-out policy.
    pub fn with_policy(mut self, policy: ScalingPolicy) -> Self {
        self.scaling_policy = policy;
        self
    }

    /// Sets per-cluster concurrency.
    pub fn with_max_concurrency(mut self, c: u32) -> Self {
        self.max_concurrency = c;
        self
    }

    /// Checks structural invariants, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_clusters == 0 {
            return Err("min_clusters must be at least 1".into());
        }
        if self.max_clusters < self.min_clusters {
            return Err(format!(
                "max_clusters ({}) < min_clusters ({})",
                self.max_clusters, self.min_clusters
            ));
        }
        if self.max_clusters > 10 {
            return Err(format!(
                "max_clusters ({}) exceeds the product limit of 10",
                self.max_clusters
            ));
        }
        if self.max_concurrency == 0 {
            return Err("max_concurrency must be at least 1".into());
        }
        if self.scaling_policy == ScalingPolicy::Maximized && self.min_clusters != self.max_clusters
        {
            return Err("Maximized mode requires min_clusters == max_clusters".into());
        }
        Ok(())
    }

    /// Total compute throughput when `n` clusters are running, relative to a
    /// single X-Small cluster.
    pub fn throughput_with_clusters(&self, n: u32) -> f64 {
        self.size.relative_throughput() * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_snowflake_conventions() {
        let c = WarehouseConfig::new(WarehouseSize::Medium);
        assert_eq!(c.auto_suspend_ms, 600_000);
        assert!(c.auto_resume);
        assert_eq!(c.min_clusters, 1);
        assert_eq!(c.max_clusters, 1);
        assert_eq!(c.max_concurrency, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_compose() {
        let c = WarehouseConfig::new(WarehouseSize::Large)
            .with_auto_suspend_secs(60)
            .with_clusters(2, 5)
            .with_policy(ScalingPolicy::Economy)
            .with_max_concurrency(4);
        assert_eq!(c.auto_suspend_ms, 60_000);
        assert_eq!((c.min_clusters, c.max_clusters), (2, 5));
        assert_eq!(c.scaling_policy, ScalingPolicy::Economy);
        assert_eq!(c.max_concurrency, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_min_clusters() {
        let mut c = WarehouseConfig::new(WarehouseSize::XSmall);
        c.min_clusters = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_inverted_cluster_range() {
        let c = WarehouseConfig::new(WarehouseSize::XSmall).with_clusters(5, 2);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_maximized_with_unequal_range() {
        let c = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(1, 3)
            .with_policy(ScalingPolicy::Maximized);
        assert!(c.validate().is_err());
        let ok = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(3, 3)
            .with_policy(ScalingPolicy::Maximized);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validate_rejects_excessive_clusters() {
        let c = WarehouseConfig::new(WarehouseSize::XSmall).with_clusters(1, 11);
        assert!(c.validate().is_err());
    }

    #[test]
    fn throughput_scales_with_size_and_clusters() {
        let c = WarehouseConfig::new(WarehouseSize::Medium).with_clusters(1, 4);
        assert_eq!(c.throughput_with_clusters(1), 4.0);
        assert_eq!(c.throughput_with_clusters(4), 16.0);
    }
}
