//! Telemetry metadata records — the only thing KWO is allowed to see (C6).
//!
//! These mirror Snowflake's ACCOUNT_USAGE views at the granularity the paper
//! describes in §6.1: system information (warehouse name, size, cluster
//! count), timeseries data (arrival times), and performance metrics (latency,
//! queuing delay, bytes scanned). Query text appears only as hashes.

use crate::policy::ScalingPolicy;
use crate::size::WarehouseSize;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Who initiated a configuration change — needed by the monitoring component
/// to detect *external* modifications that conflict with KWO's actions
/// (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionSource {
    /// Keebo's actuator.
    Keebo,
    /// A human or application outside Keebo.
    External,
    /// The warehouse itself (auto-suspend, auto-resume, auto scale-out).
    System,
}

/// One completed query, as it appears in the query history view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Query id.
    pub query_id: u64,
    /// Warehouse the query ran on.
    pub warehouse: String,
    /// Warehouse size at execution time.
    pub size: WarehouseSize,
    /// Number of clusters running when the query started.
    pub cluster_count: u32,
    /// Hash of the query text (never plaintext, per C6).
    pub text_hash: u64,
    /// Hash of the query template (text stripped of constants).
    pub template_hash: u64,
    /// Submission time.
    pub arrival: SimTime,
    /// Execution start (arrival + queue + resume waits).
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// Bytes scanned.
    pub bytes_scanned: u64,
    /// Cache warm fraction seen at start (diagnostic; a real CDW exposes
    /// the closely related `percentage_scanned_from_cache`).
    pub cache_warm_fraction: f64,
}

impl QueryRecord {
    /// Time spent queued (and waiting for resume) before execution.
    pub fn queued_ms(&self) -> SimTime {
        self.start - self.arrival
    }

    /// Pure execution time.
    pub fn execution_ms(&self) -> SimTime {
        self.end - self.start
    }

    /// End-to-end latency as the user experiences it.
    pub fn total_latency_ms(&self) -> SimTime {
        self.end - self.arrival
    }
}

/// Kind of warehouse lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WarehouseEventKind {
    Created,
    Suspended,
    Resumed,
    /// Size changed; payload in [`WarehouseEventRecord::size`].
    Resized,
    /// A cluster started (scale-out or resume).
    ClusterStarted,
    /// A cluster stopped (scale-in or suspend).
    ClusterStopped,
    /// Auto-suspend interval changed.
    AutoSuspendChanged,
    /// Cluster min/max range changed.
    ClusterRangeChanged,
    /// Scaling policy changed.
    PolicyChanged,
}

/// One warehouse lifecycle event, used for action auditing and for the
/// monitoring component's external-change detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseEventRecord {
    pub warehouse: String,
    pub at: SimTime,
    pub kind: WarehouseEventKind,
    pub source: ActionSource,
    /// Size after the event.
    pub size: WarehouseSize,
    /// Running cluster count after the event.
    pub running_clusters: u32,
    /// Auto-suspend setting after the event (ms).
    pub auto_suspend_ms: SimTime,
    /// Cluster range after the event.
    pub min_clusters: u32,
    pub max_clusters: u32,
    /// Scaling policy after the event.
    pub scaling_policy: ScalingPolicy,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> QueryRecord {
        QueryRecord {
            query_id: 1,
            warehouse: "WH".into(),
            size: WarehouseSize::Small,
            cluster_count: 2,
            text_hash: 10,
            template_hash: 20,
            arrival: 1_000,
            start: 3_500,
            end: 9_500,
            bytes_scanned: 1 << 30,
            cache_warm_fraction: 0.8,
        }
    }

    #[test]
    fn derived_durations_are_consistent() {
        let r = record();
        assert_eq!(r.queued_ms(), 2_500);
        assert_eq!(r.execution_ms(), 6_000);
        assert_eq!(r.total_latency_ms(), 8_500);
        assert_eq!(r.queued_ms() + r.execution_ms(), r.total_latency_ms());
    }

    #[test]
    fn query_record_serde_round_trip() {
        let r = record();
        let json = serde_json::to_string(&r).unwrap();
        let back: QueryRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn event_record_serde_round_trip() {
        let e = WarehouseEventRecord {
            warehouse: "WH".into(),
            at: 42,
            kind: WarehouseEventKind::Resized,
            source: ActionSource::Keebo,
            size: WarehouseSize::Medium,
            running_clusters: 1,
            auto_suspend_ms: 60_000,
            min_clusters: 1,
            max_clusters: 3,
            scaling_policy: ScalingPolicy::Economy,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: WarehouseEventRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
