//! Warehouse-local cache model.
//!
//! The central tension in the paper's "memory optimization" (§3): every
//! suspend drops the warehouse's local cache, so the next queries read from
//! cold storage and run slower — which itself keeps the warehouse running
//! longer and costs more. We model the cache as a scalar *warm fraction* in
//! [0, 1] that rises exponentially while queries execute and drops to zero
//! on suspend (and on resize, since resizing provisions fresh clusters).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Scalar cache-warmness model for one warehouse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheState {
    /// Warm fraction in [0, 1]; 1.0 = fully warm working set.
    warm_fraction: f64,
    /// Time constant (ms of active execution) for warming: after `tau_ms` of
    /// query execution the warehouse is ~63% warm.
    tau_ms: f64,
}

impl CacheState {
    /// A cold cache with the given warm-up time constant.
    ///
    /// # Panics
    /// Panics if `tau_ms` is not positive and finite.
    pub fn cold(tau_ms: f64) -> Self {
        assert!(tau_ms.is_finite() && tau_ms > 0.0, "tau must be positive");
        Self {
            warm_fraction: 0.0,
            tau_ms,
        }
    }

    /// Default warm-up constant: ~2 minutes of execution reaches 63% warm.
    pub fn with_default_tau() -> Self {
        Self::cold(120_000.0)
    }

    /// Current warm fraction in [0, 1].
    #[inline]
    pub fn warm_fraction(&self) -> f64 {
        self.warm_fraction
    }

    /// Records `active_ms` of query execution, warming the cache.
    pub fn record_execution(&mut self, active_ms: SimTime) {
        let delta = 1.0 - (-(active_ms as f64) / self.tau_ms).exp();
        self.warm_fraction += (1.0 - self.warm_fraction) * delta;
        // Guard against accumulation drift.
        self.warm_fraction = self.warm_fraction.clamp(0.0, 1.0);
    }

    /// Drops the cache (suspend or resize).
    pub fn drop_cache(&mut self) {
        self.warm_fraction = 0.0;
    }

    /// Partially invalidates the cache, e.g. after underlying data changes.
    /// `fraction` of the warm set is lost.
    pub fn invalidate(&mut self, fraction: f64) {
        let f = fraction.clamp(0.0, 1.0);
        self.warm_fraction *= 1.0 - f;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_cold() {
        assert_eq!(CacheState::with_default_tau().warm_fraction(), 0.0);
    }

    #[test]
    fn warms_monotonically_with_execution() {
        let mut c = CacheState::cold(60_000.0);
        let mut last = 0.0;
        for _ in 0..10 {
            c.record_execution(30_000);
            assert!(c.warm_fraction() > last);
            last = c.warm_fraction();
        }
        assert!(last < 1.0 + 1e-12);
    }

    #[test]
    fn one_tau_of_execution_is_about_63_percent() {
        let mut c = CacheState::cold(60_000.0);
        c.record_execution(60_000);
        assert!(
            (c.warm_fraction() - 0.632).abs() < 0.01,
            "{}",
            c.warm_fraction()
        );
    }

    #[test]
    fn warming_is_composable() {
        // Two 30 s executions warm the same as one 60 s execution.
        let mut a = CacheState::cold(60_000.0);
        a.record_execution(60_000);
        let mut b = CacheState::cold(60_000.0);
        b.record_execution(30_000);
        b.record_execution(30_000);
        assert!((a.warm_fraction() - b.warm_fraction()).abs() < 1e-12);
    }

    #[test]
    fn drop_resets_to_cold() {
        let mut c = CacheState::with_default_tau();
        c.record_execution(1_000_000);
        assert!(c.warm_fraction() > 0.9);
        c.drop_cache();
        assert_eq!(c.warm_fraction(), 0.0);
    }

    #[test]
    fn invalidate_scales_warmness() {
        let mut c = CacheState::cold(1.0);
        c.record_execution(1_000_000);
        let before = c.warm_fraction();
        c.invalidate(0.5);
        assert!((c.warm_fraction() - before * 0.5).abs() < 1e-12);
    }

    #[test]
    fn warm_fraction_never_exceeds_one() {
        let mut c = CacheState::cold(1.0);
        for _ in 0..100 {
            c.record_execution(1_000_000);
        }
        assert!(c.warm_fraction() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn zero_tau_panics() {
        let _ = CacheState::cold(0.0);
    }
}
