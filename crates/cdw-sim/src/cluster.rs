//! A single compute cluster within a (possibly multi-cluster) warehouse.

use crate::size::WarehouseSize;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Lifecycle state of one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterState {
    /// Provisioning; becomes Running at `ready_at`. Not yet billed.
    Starting { ready_at: SimTime },
    /// Serving queries and accruing credits.
    Running,
}

/// One cluster: a bundle of query slots with its own billing meter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Stable id within the owning warehouse (never reused).
    pub id: u32,
    pub state: ClusterState,
    /// Queries currently executing on this cluster.
    pub running_queries: u32,
    /// When the current billing session began (valid while Running).
    pub session_start: SimTime,
    /// Size (and thus credit rate) of the current billing session.
    pub session_size: WarehouseSize,
    /// Set when the cluster last became idle; None while busy or starting.
    pub idle_since: Option<SimTime>,
}

impl Cluster {
    /// A cluster that starts provisioning now and is ready at `ready_at`.
    pub fn starting(id: u32, size: WarehouseSize, ready_at: SimTime) -> Self {
        Self {
            id,
            state: ClusterState::Starting { ready_at },
            running_queries: 0,
            session_start: 0,
            session_size: size,
            idle_since: None,
        }
    }

    /// A cluster that is immediately running (warehouse resume starts its
    /// minimum clusters as part of the resume itself).
    pub fn running(id: u32, size: WarehouseSize, now: SimTime) -> Self {
        Self {
            id,
            state: ClusterState::Running,
            running_queries: 0,
            session_start: now,
            session_size: size,
            idle_since: Some(now),
        }
    }

    /// True when the cluster can accept another query.
    pub fn has_free_slot(&self, max_concurrency: u32) -> bool {
        matches!(self.state, ClusterState::Running) && self.running_queries < max_concurrency
    }

    /// True when running with no queries.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ClusterState::Running) && self.running_queries == 0
    }

    /// Marks a query as started on this cluster.
    ///
    /// # Panics
    /// Panics if the cluster is not running.
    pub fn begin_query(&mut self) {
        assert!(
            matches!(self.state, ClusterState::Running),
            "cannot run a query on a non-running cluster"
        );
        self.running_queries += 1;
        self.idle_since = None;
    }

    /// Marks a query as finished; records idleness when the last one ends.
    ///
    /// # Panics
    /// Panics if no query was running.
    pub fn end_query(&mut self, now: SimTime) {
        assert!(
            self.running_queries > 0,
            "no query to end on cluster {}",
            self.id
        );
        self.running_queries -= 1;
        if self.running_queries == 0 {
            self.idle_since = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starting_cluster_has_no_free_slots() {
        let c = Cluster::starting(0, WarehouseSize::Small, 1_000);
        assert!(!c.has_free_slot(8));
        assert!(!c.is_idle());
    }

    #[test]
    fn running_cluster_accepts_up_to_concurrency() {
        let mut c = Cluster::running(0, WarehouseSize::Small, 0);
        for _ in 0..8 {
            assert!(c.has_free_slot(8));
            c.begin_query();
        }
        assert!(!c.has_free_slot(8));
    }

    #[test]
    fn idleness_tracks_last_query_end() {
        let mut c = Cluster::running(0, WarehouseSize::Small, 0);
        c.begin_query();
        c.begin_query();
        assert_eq!(c.idle_since, None);
        c.end_query(100);
        assert_eq!(c.idle_since, None, "still one query running");
        c.end_query(250);
        assert_eq!(c.idle_since, Some(250));
        assert!(c.is_idle());
    }

    #[test]
    #[should_panic(expected = "no query to end")]
    fn ending_without_running_panics() {
        let mut c = Cluster::running(0, WarehouseSize::Small, 0);
        c.end_query(1);
    }

    #[test]
    #[should_panic(expected = "non-running cluster")]
    fn begin_on_starting_cluster_panics() {
        let mut c = Cluster::starting(0, WarehouseSize::Small, 500);
        c.begin_query();
    }
}
