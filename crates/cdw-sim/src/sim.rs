//! The discrete-event engine.
//!
//! The simulator owns an [`Account`] and a time-ordered event queue. Callers
//! (workload traces, the KWO orchestration loop) submit query arrivals and
//! `ALTER WAREHOUSE` commands, then advance virtual time with
//! [`Simulator::run_until`]. Ties are broken by insertion sequence number, so
//! runs are fully deterministic.

use crate::account::{Account, WarehouseId};
use crate::api::{AlterError, WarehouseCommand};
use crate::faults::{AlterFault, FaultInjector, FaultPlan, FaultStats, TelemetryFault};
use crate::query::QuerySpec;
use crate::records::ActionSource;
use crate::time::SimTime;
use crate::warehouse::WhEvent;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// An event addressed to one warehouse.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    Arrival {
        wh: WarehouseId,
        spec: QuerySpec,
    },
    /// A query arrival referencing a shared trace arena instead of carrying
    /// the spec inline: `traces[trace][idx]`. Keeps heap nodes small and
    /// lets the fleet share one immutable trace across shards without
    /// deep-cloning every [`QuerySpec`].
    TraceArrival {
        wh: WarehouseId,
        trace: u32,
        idx: u32,
    },
    Warehouse {
        wh: WarehouseId,
        ev: WhEvent,
    },
    /// An `ALTER` the fault injector acknowledged but delayed; applied when
    /// this event fires. The original caller already saw `Ok`, so a failure
    /// here only surfaces in [`FaultStats::deferred_apply_errors`].
    Deferred {
        wh: WarehouseId,
        cmd: WarehouseCommand,
        source: ActionSource,
    },
}

// QuerySpec contains f64s, so Event can't derive Ord; the heap orders only
// by (time, seq) and never compares Event payloads.
#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// An observer invoked after every processed event with the account state
/// and the clock at that instant. Installed via
/// [`Simulator::set_post_event_hook`]; the verification layer uses it to run
/// invariant checks at every event boundary without the simulator depending
/// on the checker.
pub struct PostEventHook(HookFn);

/// `Send` so a simulator can migrate between worker threads (the serving
/// gateway parks shards between control ticks and any pool worker may pick
/// one up); hooks observing shared state should capture `Arc`-based
/// handles.
type HookFn = Box<dyn FnMut(&Account, SimTime) + Send>;

impl fmt::Debug for PostEventHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PostEventHook")
    }
}

/// Discrete-event simulator over one account.
#[derive(Debug)]
pub struct Simulator {
    account: Account,
    clock: SimTime,
    queue: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
    processed_events: u64,
    injector: FaultInjector,
    post_event_hook: Option<PostEventHook>,
    /// Immutable traces referenced by [`Event::TraceArrival`] events.
    traces: Vec<Arc<[QuerySpec]>>,
    /// Reusable scratch buffer for the per-event effect schedule: the event
    /// hot path drains it back into the heap instead of allocating a fresh
    /// `Vec` per event.
    scratch: Vec<(SimTime, WhEvent)>,
}

impl Simulator {
    /// Wraps an account in a simulator starting at t = 0, with no faults.
    pub fn new(account: Account) -> Self {
        Self::with_faults(account, FaultPlan::none(), 0)
    }

    /// Wraps an account in a simulator with a fault schedule. The injector
    /// has its own RNG seeded from `fault_seed`, so the same
    /// `(workload, fault_seed, plan)` reproduces the same run and an empty
    /// plan is bit-identical to [`Simulator::new`].
    pub fn with_faults(account: Account, plan: FaultPlan, fault_seed: u64) -> Self {
        Self {
            account,
            clock: 0,
            queue: BinaryHeap::new(),
            next_seq: 0,
            processed_events: 0,
            injector: FaultInjector::new(plan, fault_seed),
            post_event_hook: None,
            traces: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Installs an observer called after every processed event (any previous
    /// hook is replaced). The hook sees the account in its post-event state
    /// and the event's timestamp — the clock may still advance to the
    /// `run_until` horizon afterwards without a further call.
    pub fn set_post_event_hook(&mut self, hook: impl FnMut(&Account, SimTime) + Send + 'static) {
        self.post_event_hook = Some(PostEventHook(Box::new(hook)));
    }

    /// Removes the post-event observer, if any.
    pub fn clear_post_event_hook(&mut self) {
        self.post_event_hook = None;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total events processed (diagnostics).
    pub fn processed_events(&self) -> u64 {
        self.processed_events
    }

    /// Read access to the account (telemetry, billing, descriptions).
    pub fn account(&self) -> &Account {
        &self.account
    }

    /// Mutable access for overhead charging; configuration changes must go
    /// through [`Simulator::alter_warehouse`] so their effects are scheduled.
    pub fn account_mut(&mut self) -> &mut Account {
        &mut self.account
    }

    /// Consumes the simulator, returning the account.
    pub fn into_account(self) -> Account {
        self.account
    }

    fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules a warehouse event, letting the injector stretch resumes
    /// (a slow-resume fault adds delay to the `ResumeDone` completion).
    fn push_wh(&mut self, wh: WarehouseId, at: SimTime, ev: WhEvent) {
        let at = if matches!(ev, WhEvent::ResumeDone { .. }) {
            at + self.injector.on_resume(self.clock)
        } else {
            at
        };
        self.push(at, Event::Warehouse { wh, ev });
    }

    /// Counters of faults the injector has realized so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.injector.plan()
    }

    /// Asks the injector whether a telemetry fetch attempted *now* is
    /// faulted. The telemetry layer calls this once per fetch attempt;
    /// with an empty plan it performs no RNG draws and returns
    /// [`TelemetryFault::None`].
    pub fn poll_telemetry_fault(&mut self) -> TelemetryFault {
        self.injector.on_telemetry_fetch(self.clock)
    }

    /// Schedules a query arrival at `spec.arrival` (which must not be in the
    /// simulated past).
    ///
    /// # Panics
    /// Panics if the arrival time is before the current clock.
    pub fn submit_query(&mut self, wh: WarehouseId, spec: QuerySpec) {
        assert!(
            spec.arrival >= self.clock,
            "query {} arrival {} is in the past (now {})",
            spec.id,
            spec.arrival,
            self.clock
        );
        self.push(spec.arrival, Event::Arrival { wh, spec });
    }

    /// Schedules a whole trace of (warehouse, query) arrivals.
    pub fn submit_trace(&mut self, trace: impl IntoIterator<Item = (WarehouseId, QuerySpec)>) {
        for (wh, spec) in trace {
            self.submit_query(wh, spec);
        }
    }

    /// Schedules a whole trace for one warehouse from a *shared* immutable
    /// buffer. The specs are never cloned into the event heap: each arrival
    /// event carries only `(trace, index)` into an arena slot holding the
    /// `Arc`, so many shards can replay the same trace with one allocation
    /// fleet-wide. Event ordering (arrival time, then submission sequence)
    /// is identical to feeding the same specs through
    /// [`Simulator::submit_trace`], so results are bit-identical.
    ///
    /// # Panics
    /// Panics if any arrival time is in the simulated past, like
    /// [`Simulator::submit_query`].
    pub fn submit_trace_shared(&mut self, wh: WarehouseId, trace: Arc<[QuerySpec]>) {
        assert!(
            self.traces.len() < u32::MAX as usize && trace.len() <= u32::MAX as usize,
            "trace arena overflow"
        );
        let slot = self.traces.len() as u32;
        self.queue.reserve(trace.len());
        self.account.reserve_query_records(trace.len());
        for (idx, spec) in trace.iter().enumerate() {
            assert!(
                spec.arrival >= self.clock,
                "query {} arrival {} is in the past (now {})",
                spec.id,
                spec.arrival,
                self.clock
            );
            self.push(
                spec.arrival,
                Event::TraceArrival {
                    wh,
                    trace: slot,
                    idx: idx as u32,
                },
            );
        }
        self.traces.push(trace);
    }

    /// Applies an `ALTER WAREHOUSE` command right now.
    ///
    /// Under an active fault plan the command may instead fail with a
    /// transient [`AlterError::ServiceUnavailable`]/[`AlterError::Throttled`]
    /// (nothing applied) or be acknowledged with `Ok` but applied after a
    /// delay. Malformed commands are rejected up front, before the injector
    /// is consulted — a real CDW validates the statement before its control
    /// plane can flake on it.
    pub fn alter_warehouse(
        &mut self,
        wh: WarehouseId,
        cmd: WarehouseCommand,
        source: ActionSource,
    ) -> Result<(), AlterError> {
        cmd.validate()?;
        match self.injector.on_alter(self.clock) {
            AlterFault::Fail(kind) => return Err(kind.to_error()),
            AlterFault::Delay { delay_ms } => {
                self.push(self.clock + delay_ms, Event::Deferred { wh, cmd, source });
                return Ok(());
            }
            AlterFault::None => {}
        }
        let mut schedule = std::mem::take(&mut self.scratch);
        debug_assert!(schedule.is_empty());
        let res = self
            .account
            .apply_command(wh, self.clock, cmd, source, &mut schedule);
        for (at, ev) in schedule.drain(..) {
            self.push_wh(wh, at, ev);
        }
        self.scratch = schedule;
        res
    }

    /// Advances the clock, processing every event with `at <= until`, and
    /// leaves the clock at `until`.
    ///
    /// # Panics
    /// Panics if `until` is before the current clock.
    pub fn run_until(&mut self, until: SimTime) {
        assert!(until >= self.clock, "cannot run backwards");
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > until {
                break;
            }
            let Some(Reverse(sch)) = self.queue.pop() else {
                break;
            };
            debug_assert!(sch.at >= self.clock, "event from the past");
            self.clock = sch.at;
            self.processed_events += 1;
            // Reuse the scratch schedule buffer across events: take it out,
            // fill it while the account is borrowed, then drain it back into
            // the heap and return its capacity. Zero allocations at steady
            // state.
            let mut schedule = std::mem::take(&mut self.scratch);
            debug_assert!(schedule.is_empty());
            let target = match sch.event {
                Event::Arrival { wh, spec } => {
                    self.account
                        .with_warehouse(wh, self.clock, &mut schedule, |w, ctx| {
                            w.submit(ctx, spec)
                        });
                    wh
                }
                Event::TraceArrival { wh, trace, idx } => {
                    let spec = self.traces[trace as usize][idx as usize].clone();
                    self.account
                        .with_warehouse(wh, self.clock, &mut schedule, |w, ctx| {
                            w.submit(ctx, spec)
                        });
                    wh
                }
                Event::Warehouse { wh, ev } => {
                    self.account
                        .with_warehouse(wh, self.clock, &mut schedule, |w, ctx| match ev {
                            WhEvent::QueryDone { run_id } => w.on_query_done(ctx, run_id),
                            WhEvent::ResumeDone { generation } => w.on_resume_done(ctx, generation),
                            WhEvent::ClusterReady { cluster_id } => {
                                w.on_cluster_ready(ctx, cluster_id)
                            }
                            WhEvent::IdleCheck { generation } => w.on_idle_check(ctx, generation),
                            WhEvent::RetireCheck { cluster_id } => {
                                w.on_retire_check(ctx, cluster_id)
                            }
                        });
                    wh
                }
                Event::Deferred { wh, cmd, source } => {
                    let res =
                        self.account
                            .apply_command(wh, self.clock, cmd, source, &mut schedule);
                    if res.is_err() {
                        self.injector.note_deferred_apply_error();
                    }
                    wh
                }
            };
            for (at, ev) in schedule.drain(..) {
                self.push_wh(target, at, ev);
            }
            self.scratch = schedule;
            if let Some(hook) = self.post_event_hook.as_mut() {
                (hook.0)(&self.account, self.clock);
            }
        }
        self.clock = until;
    }

    /// Runs until the event queue is empty, returning the final clock. Use
    /// for "drain the workload" style tests; unbounded workloads should use
    /// [`Simulator::run_until`].
    pub fn run_to_completion(&mut self) -> SimTime {
        while let Some(Reverse(head)) = self.queue.peek() {
            let at = head.at;
            self.run_until(at);
        }
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::billing::MIN_BILL_SECONDS;
    use crate::config::WarehouseConfig;
    use crate::policy::ScalingPolicy;
    use crate::records::WarehouseEventKind;
    use crate::size::WarehouseSize;
    use crate::time::{HOUR_MS, MINUTE_MS, SECOND_MS};
    use crate::warehouse::{WarehouseState, RESUME_DELAY_MS};

    fn single_wh_sim(config: WarehouseConfig) -> (Simulator, WarehouseId) {
        let mut acc = Account::new();
        let id = acc.create_warehouse("WH", config);
        (Simulator::new(acc), id)
    }

    fn q(id: u64, arrival: SimTime, work_ms: f64) -> QuerySpec {
        QuerySpec::builder(id)
            .work_ms_xs(work_ms)
            .cache_affinity(0.0)
            .arrival_ms(arrival)
            .build()
    }

    #[test]
    fn single_query_lifecycle_produces_record_and_bill() {
        let (mut sim, wh) =
            single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(60));
        sim.submit_query(wh, q(1, 1_000, 10_000.0));
        sim.run_until(HOUR_MS);

        let records = sim.account().query_records();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        // Arrival 1s, resume takes 2s, then 10s execution.
        assert_eq!(r.arrival, 1_000);
        assert_eq!(r.start, 1_000 + RESUME_DELAY_MS);
        assert_eq!(r.end, r.start + 10_000);
        assert_eq!(r.queued_ms(), RESUME_DELAY_MS);

        // Warehouse should have auto-suspended 60 s after going idle.
        assert_eq!(
            sim.account().warehouse(wh).state(),
            WarehouseState::Suspended
        );
        // Billing: active from 3 s (resume done) to 13 s (done) + 60 s idle
        // = 70 s of runtime, billed per-second above the 60 s minimum.
        let credits = sim.account().ledger().warehouse("WH").total();
        let expected = 70.0 / 3600.0;
        assert!(
            (credits - expected).abs() < 2.0 / 3600.0,
            "credits {credits} vs expected {expected}"
        );
    }

    #[test]
    fn short_burst_bills_minimum_sixty_seconds() {
        let mut cfg = WarehouseConfig::new(WarehouseSize::XSmall);
        cfg.auto_suspend_ms = SECOND_MS; // suspend almost immediately
        let (mut sim, wh) = single_wh_sim(cfg);
        sim.submit_query(wh, q(1, 0, 1_000.0));
        sim.run_until(10 * MINUTE_MS);
        let credits = sim.account().ledger().warehouse("WH").total();
        let min = MIN_BILL_SECONDS as f64 / 3600.0;
        assert!(
            credits >= min - 1e-12,
            "credits {credits} below the 60 s minimum {min}"
        );
    }

    #[test]
    fn warehouse_resumes_and_suspends_repeatedly() {
        let (mut sim, wh) =
            single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(30));
        // Two bursts separated by well over the auto-suspend interval.
        sim.submit_query(wh, q(1, 0, 5_000.0));
        sim.submit_query(wh, q(2, 20 * MINUTE_MS, 5_000.0));
        sim.run_until(HOUR_MS);

        let kinds: Vec<WarehouseEventKind> = sim
            .account()
            .event_records()
            .iter()
            .map(|e| e.kind)
            .collect();
        let resumed = kinds
            .iter()
            .filter(|k| **k == WarehouseEventKind::Resumed)
            .count();
        let suspended = kinds
            .iter()
            .filter(|k| **k == WarehouseEventKind::Suspended)
            .count();
        assert_eq!(resumed, 2, "one resume per burst: {kinds:?}");
        assert_eq!(suspended, 2, "one suspend per burst: {kinds:?}");
    }

    #[test]
    fn cold_cache_slows_queries_after_resume() {
        let (mut sim, wh) =
            single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(30));
        let cache_sensitive = |id, t| {
            QuerySpec::builder(id)
                .work_ms_xs(10_000.0)
                .cache_affinity(1.0)
                .arrival_ms(t)
                .build()
        };
        // First query cold, second query right after (warm-ish), third after
        // a suspend (cold again).
        sim.submit_query(wh, cache_sensitive(1, 0));
        sim.submit_query(wh, cache_sensitive(2, 40 * SECOND_MS));
        sim.submit_query(wh, cache_sensitive(3, 30 * MINUTE_MS));
        sim.run_until(HOUR_MS);
        let rec = sim.account().query_records();
        assert_eq!(rec.len(), 3);
        let (e1, e2, e3) = (
            rec[0].execution_ms(),
            rec[1].execution_ms(),
            rec[2].execution_ms(),
        );
        assert!(
            e2 < e1,
            "second query benefits from warmed cache: {e1} vs {e2}"
        );
        assert!(
            e3 > e2,
            "third query is cold again after suspend: {e2} vs {e3}"
        );
        assert_eq!(e1, e3, "both fully cold runs take the same time");
    }

    #[test]
    fn standard_policy_scales_out_under_queueing() {
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(1, 3)
            .with_max_concurrency(1)
            .with_auto_suspend_secs(600);
        let (mut sim, wh) = single_wh_sim(cfg);
        // Three long queries arriving together: with concurrency 1, standard
        // policy should fan out to 3 clusters.
        for i in 0..3 {
            sim.submit_query(wh, q(i, 0, 60_000.0));
        }
        sim.run_until(30 * SECOND_MS);
        assert_eq!(
            sim.account().warehouse(wh).running_clusters()
                + sim.account().warehouse(wh).starting_clusters(),
            3
        );
        sim.run_until(HOUR_MS);
        // All queries completed and overlapped (started within the startup
        // window rather than serially).
        let rec = sim.account().query_records();
        assert_eq!(rec.len(), 3);
        let max_start = rec.iter().map(|r| r.start).max().unwrap();
        assert!(
            max_start < 10 * SECOND_MS,
            "queries should start nearly together, last at {max_start}"
        );
    }

    #[test]
    fn economy_policy_queues_instead_of_scaling_for_small_bursts() {
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(1, 3)
            .with_policy(ScalingPolicy::Economy)
            .with_max_concurrency(1)
            .with_auto_suspend_secs(600);
        let (mut sim, wh) = single_wh_sim(cfg);
        // Two 10 s queries: 10 s of queued work << 6 min threshold.
        sim.submit_query(wh, q(1, 0, 10_000.0));
        sim.submit_query(wh, q(2, 0, 10_000.0));
        sim.run_until(5 * SECOND_MS);
        assert_eq!(
            sim.account().warehouse(wh).running_clusters()
                + sim.account().warehouse(wh).starting_clusters(),
            1,
            "economy should not scale out for 20 s of work"
        );
        sim.run_until(HOUR_MS);
        let rec = sim.account().query_records();
        assert_eq!(rec.len(), 2);
        assert!(
            rec[1].queued_ms() >= 10_000,
            "second query waited for the first"
        );
    }

    #[test]
    fn maximized_policy_runs_all_clusters() {
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(3, 3)
            .with_policy(ScalingPolicy::Maximized)
            .with_auto_suspend_secs(600);
        let (mut sim, wh) = single_wh_sim(cfg);
        sim.submit_query(wh, q(1, 0, 1_000.0));
        sim.run_until(10 * SECOND_MS);
        assert_eq!(sim.account().warehouse(wh).running_clusters(), 3);
    }

    #[test]
    fn surplus_clusters_retire_after_idle_period() {
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(1, 3)
            .with_max_concurrency(1)
            .with_auto_suspend_secs(3600);
        let (mut sim, wh) = single_wh_sim(cfg);
        for i in 0..3 {
            sim.submit_query(wh, q(i, 0, 30_000.0));
        }
        // After the burst, keep a trickle of work so the warehouse stays
        // resumed but only needs one cluster.
        for i in 0..10 {
            sim.submit_query(wh, q(100 + i, MINUTE_MS + i * MINUTE_MS, 1_000.0));
        }
        sim.run_until(20 * MINUTE_MS);
        assert_eq!(
            sim.account().warehouse(wh).running_clusters(),
            1,
            "surplus clusters should have retired"
        );
    }

    #[test]
    fn resize_takes_effect_for_new_queries() {
        let (mut sim, wh) =
            single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(3600));
        sim.submit_query(wh, q(1, 0, 16_000.0));
        sim.run_until(30 * SECOND_MS);
        sim.alter_warehouse(
            wh,
            WarehouseCommand::SetSize(WarehouseSize::Medium),
            ActionSource::Keebo,
        )
        .unwrap();
        sim.submit_query(wh, q(2, 31 * SECOND_MS, 16_000.0));
        sim.run_until(10 * MINUTE_MS);
        let rec = sim.account().query_records();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[0].execution_ms(), 16_000, "XS run");
        assert_eq!(rec[1].execution_ms(), 4_000, "Medium = 4x throughput");
        assert_eq!(rec[0].size, WarehouseSize::XSmall);
        assert_eq!(rec[1].size, WarehouseSize::Medium);
    }

    #[test]
    fn resize_closes_and_reopens_billing_sessions() {
        let (mut sim, wh) =
            single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(3600));
        sim.submit_query(wh, q(1, 0, 1_000.0));
        sim.run_until(2 * MINUTE_MS);
        sim.alter_warehouse(
            wh,
            WarehouseCommand::SetSize(WarehouseSize::Small),
            ActionSource::Keebo,
        )
        .unwrap();
        sim.run_until(4 * MINUTE_MS);
        sim.alter_warehouse(wh, WarehouseCommand::Suspend, ActionSource::Keebo)
            .unwrap();
        sim.run_until(5 * MINUTE_MS);
        // Session 1: resume (2s) to 2 min at XS rate (~118 s). Session 2:
        // 2 min to 4 min at Small rate (120 s, doubled rate).
        let credits = sim.account().ledger().warehouse("WH").total();
        let expected = 118.0 / 3600.0 + 120.0 * 2.0 / 3600.0;
        assert!(
            (credits - expected).abs() < 3.0 / 3600.0,
            "credits {credits} vs {expected}"
        );
    }

    #[test]
    fn manual_suspend_waits_for_running_queries() {
        let (mut sim, wh) =
            single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(3600));
        sim.submit_query(wh, q(1, 0, 60_000.0));
        sim.run_until(10 * SECOND_MS);
        sim.alter_warehouse(wh, WarehouseCommand::Suspend, ActionSource::Keebo)
            .unwrap();
        // Query still running: warehouse not suspended yet.
        assert_eq!(sim.account().warehouse(wh).state(), WarehouseState::Running);
        sim.run_until(2 * MINUTE_MS);
        assert_eq!(
            sim.account().warehouse(wh).state(),
            WarehouseState::Suspended
        );
        assert_eq!(
            sim.account().query_records().len(),
            1,
            "query completed first"
        );
    }

    #[test]
    fn suspend_when_already_suspended_errors() {
        let (mut sim, wh) = single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall));
        let err = sim
            .alter_warehouse(wh, WarehouseCommand::Suspend, ActionSource::External)
            .unwrap_err();
        assert_eq!(err, AlterError::AlreadySuspended);
    }

    #[test]
    fn auto_suspend_zero_disables_suspension() {
        let mut cfg = WarehouseConfig::new(WarehouseSize::XSmall);
        cfg.auto_suspend_ms = 0;
        let (mut sim, wh) = single_wh_sim(cfg);
        sim.submit_query(wh, q(1, 0, 1_000.0));
        sim.run_until(2 * HOUR_MS);
        assert_eq!(sim.account().warehouse(wh).state(), WarehouseState::Running);
        // Billing keeps accruing for the whole window.
        let credits = sim.account().ledger().warehouse("WH").total();
        assert_eq!(credits, 0.0, "session still open; nothing billed yet");
    }

    #[test]
    fn events_process_in_deterministic_order() {
        let run = || {
            let cfg = WarehouseConfig::new(WarehouseSize::XSmall)
                .with_clusters(1, 4)
                .with_max_concurrency(2)
                .with_auto_suspend_secs(120);
            let (mut sim, wh) = single_wh_sim(cfg);
            for i in 0..50 {
                sim.submit_query(
                    wh,
                    q(i, (i % 7) * 10 * SECOND_MS, 5_000.0 + i as f64 * 100.0),
                );
            }
            sim.run_until(HOUR_MS);
            (
                sim.account().ledger().warehouse("WH").total(),
                sim.account()
                    .query_records()
                    .iter()
                    .map(|r| (r.query_id, r.start, r.end))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_grows_when_scale_out_capped() {
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(1, 1)
            .with_max_concurrency(1)
            .with_auto_suspend_secs(3600);
        let (mut sim, wh) = single_wh_sim(cfg);
        for i in 0..5 {
            sim.submit_query(wh, q(i, 0, 10_000.0));
        }
        sim.run_until(5 * SECOND_MS);
        assert_eq!(sim.account().warehouse(wh).queued_queries(), 4);
        sim.run_until(HOUR_MS);
        let rec = sim.account().query_records();
        assert_eq!(rec.len(), 5);
        // Serial execution: each query's queue time grows by ~10 s.
        let mut sorted: Vec<_> = rec.iter().map(|r| r.queued_ms()).collect();
        sorted.sort_unstable();
        assert!(sorted[4] >= 40_000, "last query queued {} ms", sorted[4]);
    }

    #[test]
    fn dropped_queries_counted_when_auto_resume_off() {
        let mut cfg = WarehouseConfig::new(WarehouseSize::XSmall);
        cfg.auto_resume = false;
        let (mut sim, wh) = single_wh_sim(cfg);
        sim.submit_query(wh, q(1, 0, 1_000.0));
        sim.run_until(MINUTE_MS);
        assert_eq!(sim.account().warehouse(wh).dropped_queries(), 1);
        assert!(sim.account().query_records().is_empty());
    }

    #[test]
    fn run_to_completion_drains_queue() {
        let (mut sim, wh) =
            single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(60));
        sim.submit_query(wh, q(1, 0, 5_000.0));
        let end = sim.run_to_completion();
        assert!(end > 0);
        assert_eq!(sim.account().query_records().len(), 1);
        assert_eq!(
            sim.account().warehouse(wh).state(),
            WarehouseState::Suspended
        );
    }

    #[test]
    fn post_event_hook_fires_once_per_event_with_monotone_clock() {
        use std::sync::{Arc, Mutex, PoisonError};
        let (mut sim, wh) =
            single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(60));
        let seen: Arc<Mutex<Vec<SimTime>>> = Arc::default();
        let sink = Arc::clone(&seen);
        sim.set_post_event_hook(move |_, now| {
            sink.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(now)
        });
        sim.submit_query(wh, q(1, 1_000, 10_000.0));
        sim.submit_query(wh, q(2, 5_000, 2_000.0));
        sim.run_until(HOUR_MS);
        let seen = seen.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(seen.len() as u64, sim.processed_events());
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "clock monotone");
        assert!(!seen.is_empty());
    }

    #[test]
    fn clearing_post_event_hook_stops_callbacks() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let (mut sim, wh) =
            single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(60));
        let count = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&count);
        sim.set_post_event_hook(move |_, _| {
            sink.fetch_add(1, Ordering::Relaxed);
        });
        sim.submit_query(wh, q(1, 0, 1_000.0));
        sim.run_until(10 * SECOND_MS);
        let frozen = count.load(Ordering::Relaxed);
        assert!(frozen > 0);
        sim.clear_post_event_hook();
        sim.submit_query(wh, q(2, 11 * SECOND_MS, 1_000.0));
        sim.run_until(HOUR_MS);
        assert_eq!(
            count.load(Ordering::Relaxed),
            frozen,
            "no callbacks after clear"
        );
    }

    #[test]
    #[should_panic(expected = "cannot run backwards")]
    fn run_backwards_panics() {
        let (mut sim, _) = single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall));
        sim.run_until(100);
        sim.run_until(50);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn submitting_into_the_past_panics() {
        let (mut sim, wh) = single_wh_sim(WarehouseConfig::new(WarehouseSize::XSmall));
        sim.run_until(10_000);
        sim.submit_query(wh, q(1, 5_000, 1_000.0));
    }
}

#[cfg(test)]
mod command_tests {
    use super::*;
    use crate::config::WarehouseConfig;
    use crate::policy::ScalingPolicy;
    use crate::size::WarehouseSize;
    use crate::time::{HOUR_MS, MINUTE_MS, SECOND_MS};
    use crate::warehouse::WarehouseState;

    fn sim_one(config: WarehouseConfig) -> (Simulator, WarehouseId) {
        let mut acc = Account::new();
        let id = acc.create_warehouse("WH", config);
        (Simulator::new(acc), id)
    }

    fn q(id: u64, arrival: SimTime, work_ms: f64) -> QuerySpec {
        QuerySpec::builder(id)
            .work_ms_xs(work_ms)
            .cache_affinity(0.0)
            .arrival_ms(arrival)
            .build()
    }

    #[test]
    fn switching_to_maximized_widens_min_and_starts_all_clusters() {
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(1, 3)
            .with_auto_suspend_secs(3600);
        let (mut sim, wh) = sim_one(cfg);
        sim.submit_query(wh, q(1, 0, 5_000.0));
        sim.run_until(10 * SECOND_MS);
        sim.alter_warehouse(
            wh,
            WarehouseCommand::SetScalingPolicy(ScalingPolicy::Maximized),
            ActionSource::External,
        )
        .unwrap();
        sim.run_until(20 * SECOND_MS);
        let desc = sim.account().describe(wh);
        assert_eq!(desc.config.min_clusters, 3, "Maximized widens min to max");
        assert_eq!(desc.running_clusters, 3, "all clusters start");
    }

    #[test]
    fn shrinking_cluster_range_stops_idle_surplus() {
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(3, 3)
            .with_policy(ScalingPolicy::Maximized)
            .with_auto_suspend_secs(3600);
        let (mut sim, wh) = sim_one(cfg);
        sim.submit_query(wh, q(1, 0, 5_000.0));
        sim.run_until(MINUTE_MS);
        assert_eq!(sim.account().warehouse(wh).running_clusters(), 3);
        // Back to a single-cluster standard warehouse.
        sim.alter_warehouse(
            wh,
            WarehouseCommand::SetScalingPolicy(ScalingPolicy::Standard),
            ActionSource::External,
        )
        .unwrap();
        sim.alter_warehouse(
            wh,
            WarehouseCommand::SetClusterRange { min: 1, max: 1 },
            ActionSource::External,
        )
        .unwrap();
        sim.run_until(2 * MINUTE_MS);
        assert_eq!(sim.account().warehouse(wh).running_clusters(), 1);
    }

    #[test]
    fn invalid_cluster_range_is_rejected_without_side_effects() {
        let (mut sim, wh) = sim_one(WarehouseConfig::new(WarehouseSize::Small));
        let before = sim.account().describe(wh).config.clone();
        let err = sim
            .alter_warehouse(
                wh,
                WarehouseCommand::SetClusterRange { min: 5, max: 2 },
                ActionSource::External,
            )
            .unwrap_err();
        assert!(matches!(err, AlterError::InvalidConfig(_)));
        assert_eq!(sim.account().describe(wh).config, before);
    }

    #[test]
    fn manual_resume_starts_billing_without_queries() {
        let cfg = WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(0);
        let (mut sim, wh) = sim_one(cfg);
        sim.alter_warehouse(wh, WarehouseCommand::Resume, ActionSource::External)
            .unwrap();
        sim.run_until(HOUR_MS);
        assert_eq!(sim.account().warehouse(wh).state(), WarehouseState::Running);
        // Nothing in the ledger (session still open) but credits accrue.
        let accrued = sim.account().accrued_credits(wh, HOUR_MS);
        assert!(
            (accrued - 2.0).abs() < 0.01,
            "one Small cluster for an hour: {accrued}"
        );
    }

    #[test]
    fn resume_while_running_errors() {
        let (mut sim, wh) = sim_one(WarehouseConfig::new(WarehouseSize::Small));
        sim.alter_warehouse(wh, WarehouseCommand::Resume, ActionSource::External)
            .unwrap();
        sim.run_until(10 * SECOND_MS);
        let err = sim
            .alter_warehouse(wh, WarehouseCommand::Resume, ActionSource::External)
            .unwrap_err();
        assert_eq!(err, AlterError::AlreadyRunning);
    }

    #[test]
    fn resize_while_suspended_costs_nothing() {
        let (mut sim, wh) = sim_one(WarehouseConfig::new(WarehouseSize::Small));
        sim.alter_warehouse(
            wh,
            WarehouseCommand::SetSize(WarehouseSize::X2Large),
            ActionSource::External,
        )
        .unwrap();
        sim.run_until(HOUR_MS);
        assert_eq!(sim.account().ledger().total_credits(), 0.0);
        assert_eq!(
            sim.account().describe(wh).config.size,
            WarehouseSize::X2Large
        );
    }

    #[test]
    fn auto_suspend_change_while_idle_reschedules_suspension() {
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(3600);
        let (mut sim, wh) = sim_one(cfg);
        sim.submit_query(wh, q(1, 0, 1_000.0));
        sim.run_until(MINUTE_MS);
        assert_eq!(sim.account().warehouse(wh).state(), WarehouseState::Running);
        // Tighten auto-suspend to 30 s; the idle warehouse should suspend
        // promptly instead of waiting out the original hour.
        sim.alter_warehouse(
            wh,
            WarehouseCommand::SetAutoSuspend { ms: 30_000 },
            ActionSource::Keebo,
        )
        .unwrap();
        sim.run_until(3 * MINUTE_MS);
        assert_eq!(
            sim.account().warehouse(wh).state(),
            WarehouseState::Suspended
        );
    }

    #[test]
    fn longest_running_tracks_in_flight_queries() {
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(3600);
        let (mut sim, wh) = sim_one(cfg);
        sim.submit_query(wh, q(1, 0, 600_000.0));
        sim.run_until(5 * MINUTE_MS);
        let running = sim.account().warehouse(wh).longest_running_ms(sim.now());
        assert!(
            (4 * MINUTE_MS..=5 * MINUTE_MS).contains(&running),
            "got {running}"
        );
        sim.run_until(HOUR_MS);
        assert_eq!(sim.account().warehouse(wh).longest_running_ms(sim.now()), 0);
    }

    #[test]
    fn shared_trace_is_bit_identical_to_per_query_submission() {
        let cfg = WarehouseConfig::new(WarehouseSize::Small)
            .with_auto_suspend_secs(120)
            .with_clusters(1, 3)
            .with_policy(ScalingPolicy::Standard);
        let trace: Vec<QuerySpec> = (0..40)
            .map(|i| {
                q(
                    i,
                    (i as SimTime) * 1_700 % 50_000,
                    500.0 + 137.0 * (i % 7) as f64,
                )
            })
            .collect();

        let (mut cloned, wh_a) = sim_one(cfg.clone());
        cloned.submit_trace(trace.iter().cloned().map(|spec| (wh_a, spec)));
        cloned.run_to_completion();

        let (mut shared, wh_b) = sim_one(cfg);
        shared.submit_trace_shared(wh_b, trace.into());
        shared.run_to_completion();

        assert_eq!(cloned.now(), shared.now());
        assert_eq!(
            cloned.account().query_records(),
            shared.account().query_records()
        );
        assert_eq!(
            cloned.account().event_records(),
            shared.account().event_records()
        );
        assert_eq!(
            cloned.account().ledger().warehouse("WH").total().to_bits(),
            shared.account().ledger().warehouse("WH").total().to_bits()
        );
    }
}
