//! Query specifications submitted to the simulator.
//!
//! A [`QuerySpec`] carries everything the execution model needs: intrinsic
//! work (expressed as warm-cache X-Small milliseconds), how well the query
//! scales with warehouse size, how cache-sensitive it is, and the hashed
//! identifiers that stand in for query text (the paper's C6 forbids KWO from
//! ever seeing plaintext).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A query to be executed by the simulated warehouse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Unique id assigned by the workload generator.
    pub id: u64,
    /// Hash of the full query text (never the text itself).
    pub text_hash: u64,
    /// Hash of the query template, i.e. text stripped of constants. Queries
    /// sharing a template are "similar" in the paper's sense (§5.2 fn. 4).
    pub template_hash: u64,
    /// Execution time in milliseconds on an X-Small warehouse with a fully
    /// warm cache and no concurrency interference.
    pub work_ms_xs: f64,
    /// Bytes this query scans from storage; reported in telemetry.
    pub bytes_scanned: u64,
    /// Fraction of the runtime that is scan-bound and therefore benefits
    /// from the local cache, in [0, 1]. BI queries are near 1; compute-heavy
    /// transforms near 0.
    pub cache_affinity: f64,
    /// Scaling exponent: latency ∝ work / throughput^scale_exponent.
    /// 1.0 = perfectly parallelizable; 0.0 = does not speed up with size.
    pub scale_exponent: f64,
    /// Arrival (submission) time.
    pub arrival: SimTime,
}

impl QuerySpec {
    /// Starts building a query with the given id and sane defaults.
    pub fn builder(id: u64) -> QuerySpecBuilder {
        QuerySpecBuilder::new(id)
    }

    /// Validates invariant ranges; called on submission.
    ///
    /// # Panics
    /// Panics when a field is out of its documented range. Workload
    /// generators construct specs through the builder, which clamps, so a
    /// panic here indicates a programming error rather than bad data.
    pub fn validate(&self) {
        assert!(
            self.work_ms_xs.is_finite() && self.work_ms_xs > 0.0,
            "query {} work must be positive, got {}",
            self.id,
            self.work_ms_xs
        );
        assert!(
            (0.0..=1.0).contains(&self.cache_affinity),
            "query {} cache_affinity out of [0,1]: {}",
            self.id,
            self.cache_affinity
        );
        assert!(
            (0.0..=1.5).contains(&self.scale_exponent),
            "query {} scale_exponent out of [0,1.5]: {}",
            self.id,
            self.scale_exponent
        );
    }
}

/// Builder for [`QuerySpec`]. Clamps continuous fields into valid ranges.
#[derive(Debug, Clone)]
pub struct QuerySpecBuilder {
    spec: QuerySpec,
}

impl QuerySpecBuilder {
    fn new(id: u64) -> Self {
        Self {
            spec: QuerySpec {
                id,
                text_hash: id, // distinct by default; generators override
                template_hash: 0,
                work_ms_xs: 1_000.0,
                bytes_scanned: 1 << 20,
                cache_affinity: 0.5,
                scale_exponent: 1.0,
                arrival: 0,
            },
        }
    }

    pub fn text_hash(mut self, h: u64) -> Self {
        self.spec.text_hash = h;
        self
    }

    pub fn template_hash(mut self, h: u64) -> Self {
        self.spec.template_hash = h;
        self
    }

    pub fn work_ms_xs(mut self, ms: f64) -> Self {
        self.spec.work_ms_xs = ms.max(1.0);
        self
    }

    pub fn bytes_scanned(mut self, b: u64) -> Self {
        self.spec.bytes_scanned = b;
        self
    }

    pub fn cache_affinity(mut self, a: f64) -> Self {
        self.spec.cache_affinity = a.clamp(0.0, 1.0);
        self
    }

    pub fn scale_exponent(mut self, e: f64) -> Self {
        self.spec.scale_exponent = e.clamp(0.0, 1.5);
        self
    }

    pub fn arrival_ms(mut self, t: SimTime) -> Self {
        self.spec.arrival = t;
        self
    }

    pub fn build(self) -> QuerySpec {
        let spec = self.spec;
        spec.validate();
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let q = QuerySpec::builder(7).build();
        assert_eq!(q.id, 7);
        q.validate();
    }

    #[test]
    fn builder_clamps_out_of_range_values() {
        let q = QuerySpec::builder(1)
            .cache_affinity(3.0)
            .scale_exponent(-1.0)
            .work_ms_xs(-5.0)
            .build();
        assert_eq!(q.cache_affinity, 1.0);
        assert_eq!(q.scale_exponent, 0.0);
        assert_eq!(q.work_ms_xs, 1.0);
    }

    #[test]
    fn builder_sets_all_fields() {
        let q = QuerySpec::builder(2)
            .text_hash(11)
            .template_hash(22)
            .work_ms_xs(500.0)
            .bytes_scanned(42)
            .cache_affinity(0.9)
            .scale_exponent(0.8)
            .arrival_ms(1234)
            .build();
        assert_eq!(q.text_hash, 11);
        assert_eq!(q.template_hash, 22);
        assert_eq!(q.work_ms_xs, 500.0);
        assert_eq!(q.bytes_scanned, 42);
        assert_eq!(q.cache_affinity, 0.9);
        assert_eq!(q.scale_exponent, 0.8);
        assert_eq!(q.arrival, 1234);
    }

    #[test]
    #[should_panic(expected = "work must be positive")]
    fn validate_rejects_nan_work() {
        let mut q = QuerySpec::builder(1).build();
        q.work_ms_xs = f64::NAN;
        q.validate();
    }

    #[test]
    fn serde_round_trip() {
        let q = QuerySpec::builder(3).work_ms_xs(250.0).build();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuerySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
