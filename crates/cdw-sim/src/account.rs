//! A customer account: a set of named warehouses plus the billing ledger and
//! telemetry record streams shared by all of them.

use crate::api::{AlterError, WarehouseCommand};
use crate::billing::BillingLedger;
use crate::config::WarehouseConfig;
use crate::records::{ActionSource, QueryRecord, WarehouseEventKind, WarehouseEventRecord};
use crate::time::SimTime;
use crate::warehouse::{Warehouse, WhContext, WhEvent};
use std::collections::BTreeMap;

/// Opaque handle to a warehouse within an [`Account`]. Indexes are stable
/// for the lifetime of the account (warehouses are never removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WarehouseId(pub(crate) usize);

impl WarehouseId {
    /// Raw index (useful for dense per-warehouse arrays in callers).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Snapshot of a warehouse's externally visible configuration and state,
/// as a monitoring component would read it via `SHOW WAREHOUSES`.
#[derive(Debug, Clone, PartialEq)]
pub struct WarehouseDescription {
    pub name: String,
    pub config: WarehouseConfig,
    pub is_suspended: bool,
    pub running_clusters: u32,
    pub queued_queries: usize,
    pub running_queries: usize,
}

/// A customer account holding warehouses, billing, and telemetry streams.
#[derive(Debug, Default)]
pub struct Account {
    warehouses: Vec<Warehouse>,
    by_name: BTreeMap<String, WarehouseId>,
    ledger: BillingLedger,
    query_records: Vec<QueryRecord>,
    event_records: Vec<WarehouseEventRecord>,
}

impl Account {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an account holding `warehouses` in one shot — the fleet
    /// controller stamps out many shard-local accounts from spec lists, so
    /// construction takes `(name, config)` pairs directly.
    ///
    /// # Panics
    /// Panics on duplicate names or invalid configs, like
    /// [`Account::create_warehouse`].
    pub fn with_warehouses<'a, I>(warehouses: I) -> (Self, Vec<WarehouseId>)
    where
        I: IntoIterator<Item = (&'a str, WarehouseConfig)>,
    {
        let mut account = Self::new();
        let ids = warehouses
            .into_iter()
            .map(|(name, config)| account.create_warehouse(name, config))
            .collect();
        (account, ids)
    }

    /// Creates a warehouse. Names must be unique.
    ///
    /// # Panics
    /// Panics on duplicate names or invalid configs (programming errors in
    /// experiment setup).
    pub fn create_warehouse(&mut self, name: &str, config: WarehouseConfig) -> WarehouseId {
        assert!(
            !self.by_name.contains_key(name),
            "warehouse {name} already exists"
        );
        let id = WarehouseId(self.warehouses.len());
        let wh = Warehouse::new(name, config);
        self.warehouses.push(wh);
        self.by_name.insert(name.to_string(), id);
        self.event_records.push(WarehouseEventRecord {
            warehouse: name.to_string(),
            at: 0,
            kind: WarehouseEventKind::Created,
            source: ActionSource::External,
            size: self.warehouses[id.0].config().size,
            running_clusters: 0,
            auto_suspend_ms: self.warehouses[id.0].config().auto_suspend_ms,
            min_clusters: self.warehouses[id.0].config().min_clusters,
            max_clusters: self.warehouses[id.0].config().max_clusters,
            scaling_policy: self.warehouses[id.0].config().scaling_policy,
        });
        id
    }

    /// Looks up a warehouse id by name.
    pub fn warehouse_id(&self, name: &str) -> Option<WarehouseId> {
        self.by_name.get(name).copied()
    }

    /// All warehouse ids in creation order.
    pub fn warehouse_ids(&self) -> impl Iterator<Item = WarehouseId> {
        (0..self.warehouses.len()).map(WarehouseId)
    }

    /// Borrow a warehouse.
    pub fn warehouse(&self, id: WarehouseId) -> &Warehouse {
        &self.warehouses[id.0]
    }

    /// The billing ledger (usage + overhead).
    pub fn ledger(&self) -> &BillingLedger {
        &self.ledger
    }

    /// Completed-query telemetry, in completion order.
    pub fn query_records(&self) -> &[QueryRecord] {
        &self.query_records
    }

    /// Warehouse lifecycle events, in order.
    pub fn event_records(&self) -> &[WarehouseEventRecord] {
        &self.event_records
    }

    /// Pre-sizes the query-record log for `additional` more completions, so
    /// bulk trace submission amortizes the log's growth up front instead of
    /// reallocating on the event hot path.
    pub fn reserve_query_records(&mut self, additional: usize) {
        self.query_records.reserve(additional);
    }

    /// Records metadata/actuation overhead credits (charged by the
    /// telemetry fetcher and actuator in the keebo crate).
    pub fn charge_overhead(&mut self, at: SimTime, credits: f64) {
        self.ledger.record_overhead(at, credits);
    }

    /// Total credits a warehouse has accrued up to `now`: closed sessions
    /// from the ledger plus open sessions pro-rated. This is what a
    /// real-time spend dashboard (or a reward computation) sees.
    pub fn accrued_credits(&self, id: WarehouseId, now: SimTime) -> f64 {
        let wh = &self.warehouses[id.0];
        self.ledger
            .warehouse_ref(wh.name())
            .map_or(0.0, |h| h.total())
            + wh.open_session_credits(now)
    }

    /// `SHOW WAREHOUSES`-style description, used by monitoring for
    /// external-change detection.
    pub fn describe(&self, id: WarehouseId) -> WarehouseDescription {
        let wh = &self.warehouses[id.0];
        WarehouseDescription {
            name: wh.name().to_string(),
            config: wh.config().clone(),
            is_suspended: matches!(wh.state(), crate::warehouse::WarehouseState::Suspended),
            running_clusters: wh.running_clusters(),
            queued_queries: wh.queued_queries(),
            running_queries: wh.running_queries(),
        }
    }

    /// Applies an `ALTER WAREHOUSE` command at `now`, returning events the
    /// caller (the simulator) must enqueue.
    pub(crate) fn apply_command(
        &mut self,
        id: WarehouseId,
        now: SimTime,
        cmd: WarehouseCommand,
        source: ActionSource,
        schedule: &mut Vec<(SimTime, WhEvent)>,
    ) -> Result<(), AlterError> {
        let mut ctx = WhContext {
            now,
            ledger: &mut self.ledger,
            query_records: &mut self.query_records,
            event_records: &mut self.event_records,
            schedule,
        };
        self.warehouses[id.0].apply_command(&mut ctx, cmd, source)
    }

    /// Runs `f` against one warehouse with a full effect context.
    pub(crate) fn with_warehouse<R>(
        &mut self,
        id: WarehouseId,
        now: SimTime,
        schedule: &mut Vec<(SimTime, WhEvent)>,
        f: impl FnOnce(&mut Warehouse, &mut WhContext<'_>) -> R,
    ) -> R {
        let mut ctx = WhContext {
            now,
            ledger: &mut self.ledger,
            query_records: &mut self.query_records,
            event_records: &mut self.event_records,
            schedule,
        };
        f(&mut self.warehouses[id.0], &mut ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::WarehouseSize;

    #[test]
    fn create_and_lookup() {
        let mut acc = Account::new();
        let id = acc.create_warehouse("BI_WH", WarehouseConfig::new(WarehouseSize::Small));
        assert_eq!(acc.warehouse_id("BI_WH"), Some(id));
        assert_eq!(acc.warehouse_id("NOPE"), None);
        assert_eq!(acc.warehouse(id).name(), "BI_WH");
    }

    #[test]
    fn with_warehouses_builds_in_order() {
        let (acc, ids) = Account::with_warehouses([
            ("WH_A", WarehouseConfig::new(WarehouseSize::Small)),
            ("WH_B", WarehouseConfig::new(WarehouseSize::Large)),
        ]);
        assert_eq!(ids.len(), 2);
        assert_eq!(acc.warehouse_id("WH_A"), Some(ids[0]));
        assert_eq!(acc.warehouse_id("WH_B"), Some(ids[1]));
        assert_eq!(acc.warehouse(ids[1]).name(), "WH_B");
    }

    #[test]
    fn creation_emits_audit_event() {
        let mut acc = Account::new();
        acc.create_warehouse("WH", WarehouseConfig::new(WarehouseSize::Large));
        assert_eq!(acc.event_records().len(), 1);
        assert_eq!(acc.event_records()[0].kind, WarehouseEventKind::Created);
        assert_eq!(acc.event_records()[0].size, WarehouseSize::Large);
    }

    #[test]
    fn describe_reflects_initial_state() {
        let mut acc = Account::new();
        let id = acc.create_warehouse("WH", WarehouseConfig::new(WarehouseSize::Medium));
        let d = acc.describe(id);
        assert!(d.is_suspended);
        assert_eq!(d.running_clusters, 0);
        assert_eq!(d.config.size, WarehouseSize::Medium);
    }

    #[test]
    fn overhead_flows_to_ledger() {
        let mut acc = Account::new();
        acc.charge_overhead(0, 0.25);
        assert_eq!(acc.ledger().overhead().total(), 0.25);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_names_panic() {
        let mut acc = Account::new();
        acc.create_warehouse("WH", WarehouseConfig::new(WarehouseSize::XSmall));
        acc.create_warehouse("WH", WarehouseConfig::new(WarehouseSize::XSmall));
    }
}
