//! Warehouse T-shirt sizes.
//!
//! Snowflake sizes warehouses from X-Small to 6X-Large; both the hourly
//! credit rate and (per the widely held assumption the paper cites) the
//! compute capacity double with each step.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Snowflake-style warehouse size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WarehouseSize {
    XSmall,
    Small,
    Medium,
    Large,
    XLarge,
    X2Large,
    X3Large,
    X4Large,
    X5Large,
    X6Large,
}

impl WarehouseSize {
    /// All sizes, smallest first.
    pub const ALL: [WarehouseSize; 10] = [
        WarehouseSize::XSmall,
        WarehouseSize::Small,
        WarehouseSize::Medium,
        WarehouseSize::Large,
        WarehouseSize::XLarge,
        WarehouseSize::X2Large,
        WarehouseSize::X3Large,
        WarehouseSize::X4Large,
        WarehouseSize::X5Large,
        WarehouseSize::X6Large,
    ];

    /// Zero-based index: XSmall = 0 ... X6Large = 9.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Size from index, `None` when out of range.
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }

    /// Credits consumed per hour by **one cluster** of this size. X-Small is
    /// 1 credit/hour and each step doubles, matching Snowflake's pricing.
    #[inline]
    pub fn credits_per_hour(self) -> f64 {
        (1u64 << self.index()) as f64
    }

    /// Credits per second for one cluster.
    #[inline]
    pub fn credits_per_second(self) -> f64 {
        self.credits_per_hour() / 3600.0
    }

    /// Relative compute throughput versus X-Small (doubles per step).
    #[inline]
    pub fn relative_throughput(self) -> f64 {
        (1u64 << self.index()) as f64
    }

    /// One size larger, saturating at 6X-Large.
    pub fn step_up(self) -> Self {
        Self::from_index(self.index() + 1).unwrap_or(self)
    }

    /// One size smaller, saturating at X-Small.
    pub fn step_down(self) -> Self {
        if self.index() == 0 {
            self
        } else {
            Self::ALL[self.index() - 1]
        }
    }

    /// Snowflake's SQL spelling for `ALTER WAREHOUSE ... SET WAREHOUSE_SIZE=`.
    pub fn sql_name(self) -> &'static str {
        match self {
            WarehouseSize::XSmall => "XSMALL",
            WarehouseSize::Small => "SMALL",
            WarehouseSize::Medium => "MEDIUM",
            WarehouseSize::Large => "LARGE",
            WarehouseSize::XLarge => "XLARGE",
            WarehouseSize::X2Large => "XXLARGE",
            WarehouseSize::X3Large => "XXXLARGE",
            WarehouseSize::X4Large => "X4LARGE",
            WarehouseSize::X5Large => "X5LARGE",
            WarehouseSize::X6Large => "X6LARGE",
        }
    }
}

impl fmt::Display for WarehouseSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WarehouseSize::XSmall => "X-Small",
            WarehouseSize::Small => "Small",
            WarehouseSize::Medium => "Medium",
            WarehouseSize::Large => "Large",
            WarehouseSize::XLarge => "X-Large",
            WarehouseSize::X2Large => "2X-Large",
            WarehouseSize::X3Large => "3X-Large",
            WarehouseSize::X4Large => "4X-Large",
            WarehouseSize::X5Large => "5X-Large",
            WarehouseSize::X6Large => "6X-Large",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_rate_doubles_per_step() {
        for pair in WarehouseSize::ALL.windows(2) {
            assert_eq!(
                pair[1].credits_per_hour(),
                2.0 * pair[0].credits_per_hour(),
                "{} -> {}",
                pair[0],
                pair[1]
            );
        }
        assert_eq!(WarehouseSize::XSmall.credits_per_hour(), 1.0);
        assert_eq!(WarehouseSize::X6Large.credits_per_hour(), 512.0);
    }

    #[test]
    fn throughput_doubles_per_step() {
        assert_eq!(WarehouseSize::Medium.relative_throughput(), 4.0);
        assert_eq!(WarehouseSize::XSmall.relative_throughput(), 1.0);
    }

    #[test]
    fn step_up_and_down_saturate() {
        assert_eq!(WarehouseSize::XSmall.step_down(), WarehouseSize::XSmall);
        assert_eq!(WarehouseSize::X6Large.step_up(), WarehouseSize::X6Large);
        assert_eq!(WarehouseSize::Small.step_up(), WarehouseSize::Medium);
        assert_eq!(WarehouseSize::Medium.step_down(), WarehouseSize::Small);
    }

    #[test]
    fn index_round_trips() {
        for s in WarehouseSize::ALL {
            assert_eq!(WarehouseSize::from_index(s.index()), Some(s));
        }
        assert_eq!(WarehouseSize::from_index(10), None);
    }

    #[test]
    fn ordering_follows_capacity() {
        assert!(WarehouseSize::XSmall < WarehouseSize::X6Large);
        assert!(WarehouseSize::Large > WarehouseSize::Medium);
    }

    #[test]
    fn credits_per_second_consistent_with_hourly() {
        let s = WarehouseSize::Large;
        assert!((s.credits_per_second() * 3600.0 - s.credits_per_hour()).abs() < 1e-12);
    }
}
