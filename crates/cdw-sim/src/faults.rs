//! Deterministic fault injection — the simulator's chaos layer.
//!
//! A real CDW's control API is flaky: `ALTER WAREHOUSE` calls get throttled
//! or bounce off transient service errors, commands are acknowledged but
//! applied late, metadata (telemetry) reads time out or return partial
//! batches, and resumes occasionally take far longer than the nominal couple
//! of seconds. The paper's control plane is explicitly built to survive this
//! (§4.4 monitoring backs off and freezes optimization, §4.5's actuator
//! "reports errors"), so the simulator must be able to produce it.
//!
//! Faults are scheduled by a [`FaultPlan`] — a list of time windows, each
//! with a fault kind and a per-attempt probability — and realized by a
//! [`FaultInjector`] holding its own seeded RNG. Determinism contract:
//!
//! * a `(workload seed, fault seed, plan)` triple fully reproduces a run;
//! * an **empty plan never consults the RNG**, so a simulator with an empty
//!   injector is bit-identical to one with no injector at all.

use crate::api::AlterError;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a fault window does to the world while it is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// `ALTER WAREHOUSE` fails with [`AlterError::ServiceUnavailable`].
    AlterServiceUnavailable,
    /// `ALTER WAREHOUSE` fails with [`AlterError::Throttled`].
    AlterThrottled,
    /// `ALTER WAREHOUSE` is acknowledged but takes effect `delay_ms` later.
    AlterDelayed { delay_ms: SimTime },
    /// Telemetry reads fail outright (metadata query timeout).
    TelemetryOutage,
    /// Telemetry reads return only a prefix of the new records; the rest
    /// arrive on a later fetch. `keep_fraction` is the fraction kept.
    TelemetryPartial { keep_fraction: f64 },
    /// Warehouse resumes take `extra_ms` longer than the nominal delay.
    SlowResume { extra_ms: SimTime },
}

/// One scheduled fault window: `kind` applies to attempts in
/// `[from, until)` with probability `probability` each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub from: SimTime,
    pub until: SimTime,
    pub kind: FaultKind,
    /// Per-attempt probability in `[0, 1]`; `1.0` means every attempt.
    pub probability: f64,
}

impl FaultWindow {
    fn covers(&self, now: SimTime) -> bool {
        (self.from..self.until).contains(&now)
    }
}

/// A reproducible schedule of fault windows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// A plan with no faults (bit-identical behavior to no injector).
    pub fn none() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Adds an arbitrary window (builder-style).
    pub fn with_window(mut self, window: FaultWindow) -> Self {
        self.windows.push(window);
        self
    }

    /// A burst of transient `ALTER` failures.
    pub fn with_alter_burst(self, from: SimTime, until: SimTime, probability: f64) -> Self {
        self.with_window(FaultWindow {
            from,
            until,
            kind: FaultKind::AlterServiceUnavailable,
            probability,
        })
    }

    /// A window of `ALTER` throttling.
    pub fn with_throttle(self, from: SimTime, until: SimTime, probability: f64) -> Self {
        self.with_window(FaultWindow {
            from,
            until,
            kind: FaultKind::AlterThrottled,
            probability,
        })
    }

    /// A total telemetry outage.
    pub fn with_telemetry_outage(self, from: SimTime, until: SimTime) -> Self {
        self.with_window(FaultWindow {
            from,
            until,
            kind: FaultKind::TelemetryOutage,
            probability: 1.0,
        })
    }

    /// A window of partial telemetry batches.
    pub fn with_partial_telemetry(self, from: SimTime, until: SimTime, keep_fraction: f64) -> Self {
        self.with_window(FaultWindow {
            from,
            until,
            kind: FaultKind::TelemetryPartial { keep_fraction },
            probability: 1.0,
        })
    }

    /// A window of slow warehouse resumes.
    pub fn with_slow_resumes(
        self,
        from: SimTime,
        until: SimTime,
        extra_ms: SimTime,
        probability: f64,
    ) -> Self {
        self.with_window(FaultWindow {
            from,
            until,
            kind: FaultKind::SlowResume { extra_ms },
            probability,
        })
    }

    /// A window of delayed command application.
    pub fn with_delayed_alters(
        self,
        from: SimTime,
        until: SimTime,
        delay_ms: SimTime,
        probability: f64,
    ) -> Self {
        self.with_window(FaultWindow {
            from,
            until,
            kind: FaultKind::AlterDelayed { delay_ms },
            probability,
        })
    }
}

/// What the injector decided for one `ALTER` attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlterFault {
    /// Command goes through normally.
    None,
    /// Command fails with the given transient error.
    Fail(AlterErrorKind),
    /// Command is acknowledged now but applied `delay_ms` later.
    Delay { delay_ms: SimTime },
}

/// Which transient error to surface (kept separate from [`AlterError`] so
/// the injector stays `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlterErrorKind {
    ServiceUnavailable,
    Throttled,
}

impl AlterErrorKind {
    pub fn to_error(self) -> AlterError {
        match self {
            AlterErrorKind::ServiceUnavailable => AlterError::ServiceUnavailable,
            AlterErrorKind::Throttled => AlterError::Throttled,
        }
    }
}

/// What the injector decided for one telemetry fetch attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryFault {
    /// Fetch proceeds normally.
    None,
    /// Fetch fails outright.
    Outage,
    /// Fetch returns only this fraction (prefix) of the new records.
    Partial { keep_fraction: f64 },
}

/// Counters of what the injector actually did (diagnostics / chaos KPIs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    pub alter_failures: u64,
    pub alter_delays: u64,
    pub telemetry_outages: u64,
    pub telemetry_partials: u64,
    pub slow_resumes: u64,
    /// Deferred commands whose eventual application errored (the original
    /// caller already saw `Ok`; the error is only visible here).
    pub deferred_apply_errors: u64,
}

/// Realizes a [`FaultPlan`] with a private seeded RNG.
///
/// The injector never draws from the RNG unless a window covers the current
/// time and matches the attempted operation class, which keeps the empty
/// plan bit-identical to a fault-free run and keeps fault draws from
/// perturbing workload randomness (the workload has its own seeds).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, fault_seed: u64) -> Self {
        Self {
            plan,
            rng: StdRng::seed_from_u64(fault_seed),
            stats: FaultStats::default(),
        }
    }

    /// An injector that never fires.
    pub fn disabled() -> Self {
        Self::new(FaultPlan::none(), 0)
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    pub(crate) fn note_deferred_apply_error(&mut self) {
        self.stats.deferred_apply_errors += 1;
    }

    /// Rolls the window's probability; only called for covering windows so
    /// an empty plan performs no draws.
    fn roll(&mut self, probability: f64) -> bool {
        if probability >= 1.0 {
            return true;
        }
        if probability <= 0.0 {
            return false;
        }
        self.rng.gen::<f64>() < probability
    }

    /// Decides the fate of an `ALTER WAREHOUSE` attempt at `now`. The first
    /// covering window (plan order) that rolls true wins.
    pub fn on_alter(&mut self, now: SimTime) -> AlterFault {
        for i in 0..self.plan.windows.len() {
            let w = self.plan.windows[i].clone();
            if !w.covers(now) {
                continue;
            }
            match w.kind {
                FaultKind::AlterServiceUnavailable if self.roll(w.probability) => {
                    self.stats.alter_failures += 1;
                    return AlterFault::Fail(AlterErrorKind::ServiceUnavailable);
                }
                FaultKind::AlterThrottled if self.roll(w.probability) => {
                    self.stats.alter_failures += 1;
                    return AlterFault::Fail(AlterErrorKind::Throttled);
                }
                FaultKind::AlterDelayed { delay_ms } if self.roll(w.probability) => {
                    self.stats.alter_delays += 1;
                    return AlterFault::Delay { delay_ms };
                }
                _ => {}
            }
        }
        AlterFault::None
    }

    /// Decides the fate of a telemetry fetch at `now`.
    pub fn on_telemetry_fetch(&mut self, now: SimTime) -> TelemetryFault {
        for i in 0..self.plan.windows.len() {
            let w = self.plan.windows[i].clone();
            if !w.covers(now) {
                continue;
            }
            match w.kind {
                FaultKind::TelemetryOutage if self.roll(w.probability) => {
                    self.stats.telemetry_outages += 1;
                    return TelemetryFault::Outage;
                }
                FaultKind::TelemetryPartial { keep_fraction } if self.roll(w.probability) => {
                    self.stats.telemetry_partials += 1;
                    return TelemetryFault::Partial {
                        keep_fraction: keep_fraction.clamp(0.0, 1.0),
                    };
                }
                _ => {}
            }
        }
        TelemetryFault::None
    }

    /// Extra delay to add to a warehouse resume scheduled at `now`.
    pub fn on_resume(&mut self, now: SimTime) -> SimTime {
        for i in 0..self.plan.windows.len() {
            let w = self.plan.windows[i].clone();
            if !w.covers(now) {
                continue;
            }
            if let FaultKind::SlowResume { extra_ms } = w.kind {
                if self.roll(w.probability) {
                    self.stats.slow_resumes += 1;
                    return extra_ms;
                }
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOUR_MS;

    #[test]
    fn empty_plan_never_fires() {
        let mut inj = FaultInjector::disabled();
        for t in [0, HOUR_MS, 100 * HOUR_MS] {
            assert_eq!(inj.on_alter(t), AlterFault::None);
            assert_eq!(inj.on_telemetry_fetch(t), TelemetryFault::None);
            assert_eq!(inj.on_resume(t), 0);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn windows_only_fire_inside_their_interval() {
        let plan = FaultPlan::none().with_alter_burst(HOUR_MS, 2 * HOUR_MS, 1.0);
        let mut inj = FaultInjector::new(plan, 7);
        assert_eq!(inj.on_alter(HOUR_MS - 1), AlterFault::None);
        assert_eq!(
            inj.on_alter(HOUR_MS),
            AlterFault::Fail(AlterErrorKind::ServiceUnavailable)
        );
        assert_eq!(
            inj.on_alter(2 * HOUR_MS - 1),
            AlterFault::Fail(AlterErrorKind::ServiceUnavailable)
        );
        assert_eq!(inj.on_alter(2 * HOUR_MS), AlterFault::None);
        assert_eq!(inj.stats().alter_failures, 2);
    }

    #[test]
    fn probability_zero_never_fires_and_one_always_fires() {
        let plan = FaultPlan::none()
            .with_window(FaultWindow {
                from: 0,
                until: HOUR_MS,
                kind: FaultKind::AlterThrottled,
                probability: 0.0,
            })
            .with_throttle(0, HOUR_MS, 1.0);
        let mut inj = FaultInjector::new(plan, 1);
        // The zero-probability window is skipped; the certain one fires.
        assert_eq!(
            inj.on_alter(10),
            AlterFault::Fail(AlterErrorKind::Throttled)
        );
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::none().with_alter_burst(0, HOUR_MS, 0.5);
        let decisions = |seed: u64| -> Vec<AlterFault> {
            let mut inj =
                FaultInjector::new(FaultPlan::none().with_alter_burst(0, HOUR_MS, 0.5), seed);
            (0..50).map(|i| inj.on_alter(i * 1000)).collect()
        };
        assert_eq!(decisions(42), decisions(42));
        // And a fractional probability actually mixes outcomes.
        let d = decisions(42);
        assert!(d.contains(&AlterFault::None));
        assert!(d.contains(&AlterFault::Fail(AlterErrorKind::ServiceUnavailable)));
        let _ = plan;
    }

    #[test]
    fn telemetry_faults_and_slow_resumes_fire() {
        let plan = FaultPlan::none()
            .with_telemetry_outage(0, HOUR_MS)
            .with_partial_telemetry(HOUR_MS, 2 * HOUR_MS, 0.25)
            .with_slow_resumes(0, HOUR_MS, 30_000, 1.0);
        let mut inj = FaultInjector::new(plan, 3);
        assert_eq!(inj.on_telemetry_fetch(10), TelemetryFault::Outage);
        assert_eq!(
            inj.on_telemetry_fetch(HOUR_MS + 10),
            TelemetryFault::Partial {
                keep_fraction: 0.25
            }
        );
        assert_eq!(inj.on_resume(500), 30_000);
        assert_eq!(inj.on_resume(2 * HOUR_MS), 0);
        let s = inj.stats();
        assert_eq!(s.telemetry_outages, 1);
        assert_eq!(s.telemetry_partials, 1);
        assert_eq!(s.slow_resumes, 1);
    }
}
