//! Per-second billing with a 60-second minimum, rolled up hourly.
//!
//! Snowflake charges for each second a cluster runs, with a minimum of 60
//! billable seconds every time a cluster starts, at an hourly credit rate set
//! by the warehouse size. The paper's warehouse cost model (§5.1) reproduces
//! exactly this arithmetic during query replay, so the simulator and the cost
//! model share the billing semantics defined here.

use crate::size::WarehouseSize;
use crate::time::{hour_index, ms_to_billing_seconds, SimTime, SECOND_MS};
use keebo_obs::Counter;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Minimum billable seconds per cluster start.
pub const MIN_BILL_SECONDS: u64 = 60;

/// Largest integer a f64 represents exactly (2^53). Sim times are
/// milliseconds, so the exact range covers ~285,000 years of simulation;
/// crossing it means an upstream arithmetic bug, not a long run.
pub const F64_EXACT_MAX: u64 = 1 << 53;

/// Counts u64→f64 conversions beyond the exact range and negative-duration
/// spans (see [`exact_f64`] / [`span_ms`]).
fn lossy_cast_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| keebo_obs::global().counter("cdw_sim.billing.lossy_cast"))
}

/// Checked widening of a count/duration to f64.
///
/// Exact for every value up to [`F64_EXACT_MAX`]; beyond that the
/// conversion rounds, which is counted in `cdw_sim.billing.lossy_cast`
/// (and trips a `debug_assert!`) instead of silently corrupting credit
/// arithmetic. This is the funnel the D6 lint points bare `as f64` casts
/// at on billing/costmodel paths.
#[inline]
pub fn exact_f64(n: u64) -> f64 {
    if n > F64_EXACT_MAX {
        lossy_cast_counter().inc();
        debug_assert!(false, "u64→f64 conversion of {n} exceeds the exact range");
    }
    // lint: allow(D6) — this is the checked funnel itself
    n as f64
}

/// [`exact_f64`] for `usize` counts (observation/window tallies).
#[inline]
pub fn count_f64(n: usize) -> f64 {
    // lint: allow(D6) — usize→u64 is lossless on every supported target
    exact_f64(n as u64)
}

/// Credits for `secs` billed seconds at `credits_per_second`.
#[inline]
pub fn credits_from_secs(secs: u64, credits_per_second: f64) -> f64 {
    exact_f64(secs) * credits_per_second
}

/// Duration of the span `[start, end)`, guarding inversion: a negative
/// duration (end before start) indicates an upstream event-ordering bug;
/// it is clamped to zero and counted in `cdw_sim.billing.lossy_cast`
/// rather than wrapping around u64 and billing ~585 million years.
#[inline]
pub fn span_ms(start: SimTime, end: SimTime) -> SimTime {
    match end.checked_sub(start) {
        Some(d) => d,
        None => {
            lossy_cast_counter().inc();
            debug_assert!(false, "span inverted: start {start} > end {end}");
            0
        }
    }
}

/// The ratio `numer_ms / denom_ms` as f64 (0.0 when the denominator is
/// zero), both sides converted through [`exact_f64`].
#[inline]
pub fn ms_fraction(numer_ms: SimTime, denom_ms: SimTime) -> f64 {
    if denom_ms == 0 {
        return 0.0;
    }
    exact_f64(numer_ms) / exact_f64(denom_ms)
}

/// Counts credit amounts rejected by [`HourlyCredits::add`] (non-finite or
/// negative). A production-style run surfaces upstream arithmetic bugs in
/// the metrics snapshot instead of aborting mid-flight.
fn invalid_credit_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| keebo_obs::global().counter("cdw_sim.billing.invalid_credit"))
}

/// Credits billed for one cluster session of `duration_ms` at `size`.
///
/// The 60-second minimum applies per session (per cluster start).
pub fn session_credits(size: WarehouseSize, duration_ms: SimTime) -> f64 {
    let secs = ms_to_billing_seconds(duration_ms).max(MIN_BILL_SECONDS);
    credits_from_secs(secs, size.credits_per_second())
}

/// Credits accumulated per hour bucket for one warehouse (or overhead
/// category). Key is the hour index from simulation start.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HourlyCredits {
    buckets: BTreeMap<u64, f64>,
}

impl HourlyCredits {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `credits` attributed to the hour containing `at`.
    ///
    /// Non-finite or negative amounts indicate an upstream arithmetic bug;
    /// they are dropped and counted in `cdw_sim.billing.invalid_credit`
    /// (and trip a `debug_assert!` in debug builds) rather than aborting a
    /// fleet run mid-flight.
    pub fn add(&mut self, at: SimTime, credits: f64) {
        // lint: allow(D4) — exact-zero is a sentinel for "nothing billed", not a tolerance
        if credits == 0.0 {
            return;
        }
        if !(credits > 0.0 && credits.is_finite()) {
            invalid_credit_counter().inc();
            debug_assert!(false, "bad credit amount {credits}");
            return;
        }
        *self.buckets.entry(hour_index(at)).or_insert(0.0) += credits;
    }

    /// Attributes a session `[start, end)` at `size` across hour buckets:
    /// usage credits are split proportionally to the seconds falling into
    /// each hour; the minimum top-up (if the session ran under 60 s) is
    /// charged to the start hour, which is where Snowflake's bill shows it.
    ///
    /// The final hour slice absorbs the partial-second round-up so that
    /// [`HourlyCredits::total`] equals [`session_credits`] exactly — the
    /// ledger and the cost model's replay arithmetic must never disagree.
    pub fn add_session(&mut self, size: WarehouseSize, start: SimTime, end: SimTime) {
        assert!(end >= start, "session ends before it starts");
        let duration = end - start;
        let billed_secs = ms_to_billing_seconds(duration);
        let min_topup_secs = MIN_BILL_SECONDS.saturating_sub(billed_secs);
        if min_topup_secs > 0 {
            self.add(
                start,
                credits_from_secs(min_topup_secs, size.credits_per_second()),
            );
        }
        // Walk hour boundaries, attributing each slice. Non-final slices
        // bill raw fractional seconds; the final slice takes whatever
        // remains of the rounded-up total, keeping the sum exact.
        let usage_secs = exact_f64(billed_secs);
        let mut attributed = 0.0;
        let mut t = start;
        while t < end {
            let hour_end = (hour_index(t) + 1) * crate::time::HOUR_MS;
            let slice_end = hour_end.min(end);
            let slice_ms = slice_end - t;
            let slice_secs = if slice_end == end {
                (usage_secs - attributed).max(0.0)
            } else {
                ms_fraction(slice_ms, SECOND_MS)
            };
            self.add(t, slice_secs * size.credits_per_second());
            attributed += slice_secs;
            t = slice_end;
        }
        if duration == 0 && min_topup_secs == 0 {
            // Unreachable: zero duration always yields a top-up. Kept as a
            // defensive invariant for future edits.
            unreachable!("zero-duration session must bill the minimum");
        }
    }

    /// Credits in a specific hour bucket.
    pub fn hour(&self, hour: u64) -> f64 {
        self.buckets.get(&hour).copied().unwrap_or(0.0)
    }

    /// Total credits across all hours.
    pub fn total(&self) -> f64 {
        self.buckets.values().sum()
    }

    /// Total credits in the hour range `[from_hour, to_hour)`.
    pub fn range_total(&self, from_hour: u64, to_hour: u64) -> f64 {
        self.buckets.range(from_hour..to_hour).map(|(_, v)| v).sum()
    }

    /// Iterates (hour, credits) in hour order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.buckets.iter().map(|(&h, &c)| (h, c))
    }

    /// Per-day totals (24-hour buckets), keyed by day index.
    pub fn daily_totals(&self) -> BTreeMap<u64, f64> {
        let mut days = BTreeMap::new();
        for (&h, &c) in &self.buckets {
            *days.entry(h / 24).or_insert(0.0) += c;
        }
        days
    }
}

/// One closed cluster billing session as recorded by the ledger. Every
/// credit a warehouse accrues flows through exactly one of these (the
/// `record_session` funnel), which is what makes an independent billing
/// oracle possible: replaying the session log must reproduce the hourly
/// buckets to within float tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Size the session was billed at (resize closes the old-rate session).
    pub size: WarehouseSize,
    /// Cluster start (or resize) time, ms.
    pub start: SimTime,
    /// Cluster stop / suspend / resize time, ms.
    pub end: SimTime,
}

/// Account-wide billing ledger: one [`HourlyCredits`] per warehouse name,
/// plus a separate overhead category for metadata/actuation queries (this
/// separation is what Fig. 6 of the paper plots).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BillingLedger {
    per_warehouse: BTreeMap<String, HourlyCredits>,
    overhead: HourlyCredits,
    sessions: BTreeMap<String, Vec<SessionRecord>>,
}

impl BillingLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a cluster session for a warehouse.
    pub fn record_session(
        &mut self,
        warehouse: &str,
        size: WarehouseSize,
        start: SimTime,
        end: SimTime,
    ) {
        self.per_warehouse
            .entry(warehouse.to_string())
            .or_default()
            .add_session(size, start, end);
        self.sessions
            .entry(warehouse.to_string())
            .or_default()
            .push(SessionRecord { size, start, end });
    }

    /// Records overhead credits (telemetry fetch, actuator commands).
    pub fn record_overhead(&mut self, at: SimTime, credits: f64) {
        self.overhead.add(at, credits);
    }

    /// Hourly credits for one warehouse (empty if unknown).
    pub fn warehouse(&self, name: &str) -> HourlyCredits {
        self.per_warehouse.get(name).cloned().unwrap_or_default()
    }

    /// Borrowed access without cloning.
    pub fn warehouse_ref(&self, name: &str) -> Option<&HourlyCredits> {
        self.per_warehouse.get(name)
    }

    /// Overhead category.
    pub fn overhead(&self) -> &HourlyCredits {
        &self.overhead
    }

    /// Total credits across every warehouse (excluding overhead).
    pub fn total_credits(&self) -> f64 {
        self.per_warehouse.values().map(HourlyCredits::total).sum()
    }

    /// Total including overhead.
    pub fn total_with_overhead(&self) -> f64 {
        self.total_credits() + self.overhead.total()
    }

    /// Warehouse names present in the ledger.
    pub fn warehouse_names(&self) -> impl Iterator<Item = &str> {
        self.per_warehouse.keys().map(String::as_str)
    }

    /// `(name, hourly credits)` pairs for every warehouse, in name order.
    /// Lets batch readers (the telemetry fetcher) walk the ledger without
    /// materializing a name list or cloning any credit history.
    pub fn iter_warehouses(&self) -> impl Iterator<Item = (&str, &HourlyCredits)> {
        self.per_warehouse.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Closed billing sessions for one warehouse, in recording order
    /// (session end times are non-decreasing because the simulator clock
    /// is monotone). Empty for unknown warehouses.
    pub fn sessions(&self, warehouse: &str) -> &[SessionRecord] {
        self.sessions
            .get(warehouse)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOUR_MS;

    #[test]
    fn exact_f64_is_exact_through_2_to_53() {
        assert_eq!(exact_f64(0), 0.0);
        assert_eq!(exact_f64(1), 1.0);
        assert_eq!(exact_f64(F64_EXACT_MAX), 9_007_199_254_740_992.0);
        // The exact boundary round-trips bit-for-bit.
        assert_eq!(exact_f64(F64_EXACT_MAX) as u64, F64_EXACT_MAX);
        // 2^53 - 1 is the last value where every integer below is exact.
        assert_eq!(exact_f64(F64_EXACT_MAX - 1) as u64, F64_EXACT_MAX - 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds the exact range")]
    fn exact_f64_beyond_2_to_53_trips_debug_assert() {
        exact_f64(F64_EXACT_MAX + 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn exact_f64_beyond_2_to_53_is_counted_not_fatal() {
        let counter = keebo_obs::global().counter("cdw_sim.billing.lossy_cast");
        let before = counter.get();
        // 2^53 + 1 is the first unrepresentable integer: it rounds to 2^53.
        assert_eq!(exact_f64(F64_EXACT_MAX + 1), 9_007_199_254_740_992.0);
        assert_eq!(counter.get(), before + 1);
    }

    #[test]
    fn count_f64_matches_exact_f64() {
        assert_eq!(count_f64(12_345).to_bits(), exact_f64(12_345).to_bits());
    }

    #[test]
    fn credits_from_secs_scales_rate() {
        let rate = WarehouseSize::XSmall.credits_per_second();
        assert_eq!(credits_from_secs(0, rate), 0.0);
        assert!((credits_from_secs(3_600, rate) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn span_ms_measures_forward_spans() {
        assert_eq!(span_ms(100, 250), 150);
        assert_eq!(span_ms(7, 7), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "span inverted")]
    fn span_ms_inversion_trips_debug_assert() {
        span_ms(100, 50);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn span_ms_inversion_is_clamped_not_wrapped() {
        let counter = keebo_obs::global().counter("cdw_sim.billing.lossy_cast");
        let before = counter.get();
        assert_eq!(span_ms(100, 50), 0, "negative duration clamps to zero");
        assert_eq!(counter.get(), before + 1);
    }

    #[test]
    fn ms_fraction_guards_zero_denominator() {
        assert_eq!(ms_fraction(500, 1_000), 0.5);
        assert_eq!(ms_fraction(0, 1_000), 0.0);
        assert_eq!(ms_fraction(1_000, 1_000), 1.0);
        assert_eq!(ms_fraction(42, 0), 0.0);
    }

    #[test]
    fn short_session_bills_sixty_second_minimum() {
        // 10 s on an X-Small: billed 60 s = 1/60 credit.
        let c = session_credits(WarehouseSize::XSmall, 10 * SECOND_MS);
        assert!((c - 60.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn long_session_bills_per_second() {
        // 2 h on a Small (2 credits/h) = 4 credits.
        let c = session_credits(WarehouseSize::Small, 2 * HOUR_MS);
        assert!((c - 4.0).abs() < 1e-9);
    }

    #[test]
    fn partial_seconds_round_up() {
        let c = session_credits(WarehouseSize::XSmall, 61 * SECOND_MS + 1);
        assert!((c - 62.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn hourly_attribution_splits_across_boundaries() {
        let mut h = HourlyCredits::new();
        // Session from 0:30:00 to 1:30:00 on X-Small: 0.5 credits per hour bucket.
        h.add_session(WarehouseSize::XSmall, HOUR_MS / 2, HOUR_MS + HOUR_MS / 2);
        assert!((h.hour(0) - 0.5).abs() < 1e-9);
        assert!((h.hour(1) - 0.5).abs() < 1e-9);
        assert!((h.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minimum_topup_lands_in_start_hour() {
        let mut h = HourlyCredits::new();
        // 10 s session just before the hour boundary: 10 s spill into usage,
        // 50 s of top-up charged at the start hour.
        h.add_session(
            WarehouseSize::XSmall,
            HOUR_MS - 5 * SECOND_MS,
            HOUR_MS + 5 * SECOND_MS,
        );
        let per_sec = WarehouseSize::XSmall.credits_per_second();
        assert!((h.hour(0) - 55.0 * per_sec).abs() < 1e-12);
        assert!((h.hour(1) - 5.0 * per_sec).abs() < 1e-12);
        assert!((h.total() - 60.0 * per_sec).abs() < 1e-12);
    }

    #[test]
    fn session_total_matches_session_credits() {
        for dur in [0u64, 500, 59_999, 60_000, 61_500, 3 * HOUR_MS + 17] {
            let mut h = HourlyCredits::new();
            h.add_session(WarehouseSize::Medium, 12_345, 12_345 + dur);
            let direct = session_credits(WarehouseSize::Medium, dur);
            // Exact: the final hour slice absorbs the partial-second
            // round-up, so the ledger agrees with session_credits.
            assert!(
                (h.total() - direct).abs() <= 1e-9,
                "dur {dur}: {} vs {}",
                h.total(),
                direct
            );
        }
    }

    /// Deterministic twin of `prop_session_total_matches_session_credits`:
    /// the proptest dev-stub is a no-op offline, so the property is also
    /// exercised here against a seeded random sample.
    #[test]
    fn session_total_matches_session_credits_random_sample() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x0b5e_cafe);
        for _ in 0..500 {
            let size = WarehouseSize::ALL[rng.gen_range(0..WarehouseSize::ALL.len())];
            let start: SimTime = rng.gen_range(0..48 * HOUR_MS);
            let dur: SimTime = rng.gen_range(0..6 * HOUR_MS);
            let mut h = HourlyCredits::new();
            h.add_session(size, start, start + dur);
            let direct = session_credits(size, dur);
            assert!(
                (h.total() - direct).abs() <= 1e-9,
                "size {size:?} start {start} dur {dur}: {} vs {}",
                h.total(),
                direct
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_session_total_matches_session_credits(
            size_idx in 0usize..WarehouseSize::ALL.len(),
            start in 0u64..48 * HOUR_MS,
            dur in 0u64..6 * HOUR_MS,
        ) {
            let size = WarehouseSize::ALL[size_idx];
            let mut h = HourlyCredits::new();
            h.add_session(size, start, start + dur);
            let direct = session_credits(size, dur);
            proptest::prop_assert!((h.total() - direct).abs() <= 1e-9);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "bad credit amount")]
    fn invalid_credit_trips_debug_assert() {
        let mut h = HourlyCredits::new();
        h.add(0, f64::NAN);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn invalid_credit_is_counted_not_fatal() {
        let counter = keebo_obs::global().counter("cdw_sim.billing.invalid_credit");
        let before = counter.get();
        let mut h = HourlyCredits::new();
        h.add(0, f64::NAN);
        h.add(0, -1.0);
        h.add(0, f64::INFINITY);
        assert_eq!(h.total(), 0.0, "invalid amounts are dropped");
        assert_eq!(counter.get(), before + 3);
    }

    #[test]
    fn daily_totals_aggregate_hours() {
        let mut h = HourlyCredits::new();
        h.add(0, 1.0);
        h.add(23 * HOUR_MS, 2.0);
        h.add(24 * HOUR_MS, 4.0);
        let days = h.daily_totals();
        assert_eq!(days[&0], 3.0);
        assert_eq!(days[&1], 4.0);
    }

    #[test]
    fn range_total_is_half_open() {
        let mut h = HourlyCredits::new();
        h.add(0, 1.0);
        h.add(HOUR_MS, 2.0);
        h.add(2 * HOUR_MS, 4.0);
        assert_eq!(h.range_total(0, 2), 3.0);
        assert_eq!(h.range_total(1, 3), 6.0);
    }

    #[test]
    fn ledger_separates_warehouses_and_overhead() {
        let mut l = BillingLedger::new();
        l.record_session("A", WarehouseSize::XSmall, 0, HOUR_MS);
        l.record_session("B", WarehouseSize::Small, 0, HOUR_MS);
        l.record_overhead(0, 0.01);
        assert!((l.warehouse("A").total() - 1.0).abs() < 1e-9);
        assert!((l.warehouse("B").total() - 2.0).abs() < 1e-9);
        assert!((l.total_credits() - 3.0).abs() < 1e-9);
        assert!((l.total_with_overhead() - 3.01).abs() < 1e-9);
        assert_eq!(l.warehouse("missing").total(), 0.0);
    }

    #[test]
    fn ledger_records_session_log() {
        let mut l = BillingLedger::new();
        l.record_session("A", WarehouseSize::XSmall, 0, HOUR_MS);
        l.record_session("A", WarehouseSize::Small, HOUR_MS, 2 * HOUR_MS);
        let log = l.sessions("A");
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].size, WarehouseSize::XSmall);
        assert_eq!(log[1].start, HOUR_MS);
        assert!(l.sessions("missing").is_empty());
    }

    #[test]
    #[should_panic(expected = "session ends before it starts")]
    fn inverted_session_panics() {
        let mut h = HourlyCredits::new();
        h.add_session(WarehouseSize::XSmall, 100, 50);
    }
}
