//! A discrete-event simulator for a Snowflake-style cloud data warehouse.
//!
//! Keebo's Warehouse Optimization (KWO) never looks inside the warehouse: it
//! observes *telemetry metadata* (query history and billing history) and acts
//! through *`ALTER WAREHOUSE`-style commands*. This crate reproduces exactly
//! that externally observable contract so the rest of the workspace — the
//! warehouse cost model, the smart models, the orchestration loop — can be
//! built and evaluated without access to a production CDW:
//!
//! * **T-shirt sizing** ([`WarehouseSize`]): X-Small through 6X-Large, hourly
//!   credit rate and compute capacity both doubling with each step (§3 of the
//!   paper).
//! * **Multi-cluster warehouses** with Standard / Economy / Maximized
//!   scale-out policies ([`ScalingPolicy`]), query slots per cluster, and FIFO
//!   queuing when no slots are free.
//! * **Auto-suspend / auto-resume**: an idle warehouse suspends after its
//!   auto-suspend interval, *dropping its local cache*; the next query resumes
//!   it and pays cold-read penalties ([`CacheState`]).
//! * **Per-second billing with a 60-second minimum** per cluster start,
//!   rolled up hourly ([`billing`]).
//! * **Telemetry emission**: completed queries produce [`QueryRecord`]s and
//!   warehouse lifecycle changes produce [`WarehouseEventRecord`]s — the same
//!   metadata schema the paper trains on (§6.1), with hashed query text only.
//!
//! The simulation is deterministic: all randomness comes from caller-seeded
//! RNGs in the workload layer; the engine itself is purely event-driven with
//! stable tie-breaking.
//!
//! # Example
//!
//! ```
//! use cdw_sim::{Account, Simulator, WarehouseConfig, WarehouseSize, QuerySpec};
//!
//! let mut account = Account::new();
//! account.create_warehouse(
//!     "ETL_WH",
//!     WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(300),
//! );
//! let mut sim = Simulator::new(account);
//! let wh = sim.account().warehouse_id("ETL_WH").unwrap();
//! sim.submit_query(wh, QuerySpec::builder(1).work_ms_xs(8_000.0).arrival_ms(1_000).build());
//! sim.run_until(3_600_000);
//! let credits = sim.account().ledger().total_credits();
//! assert!(credits > 0.0);
//! ```

pub mod account;
pub mod api;
pub mod billing;
pub mod cache;
pub mod cluster;
pub mod config;
pub mod exec;
pub mod faults;
pub mod policy;
pub mod query;
pub mod records;
pub mod sim;
pub mod size;
pub mod time;
pub mod warehouse;

pub use account::{Account, WarehouseId};
pub use api::{AlterError, WarehouseCommand};
pub use billing::{BillingLedger, HourlyCredits, SessionRecord, MIN_BILL_SECONDS};
pub use cache::CacheState;
pub use cluster::{Cluster, ClusterState};
pub use config::WarehouseConfig;
pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultStats, FaultWindow, TelemetryFault};
pub use policy::ScalingPolicy;
pub use query::{QuerySpec, QuerySpecBuilder};
pub use records::{ActionSource, QueryRecord, WarehouseEventKind, WarehouseEventRecord};
pub use sim::{PostEventHook, Simulator};
pub use size::WarehouseSize;
pub use time::{SimTime, DAY_MS, HOUR_MS, MINUTE_MS, SECOND_MS};
pub use warehouse::{Warehouse, WarehouseState};
