//! Query latency model.
//!
//! Latency is fixed when a query starts (Snowflake lets in-flight queries
//! finish on their original cluster even across a resize), from three
//! multiplicative factors:
//!
//! * **size scaling** — latency ∝ work / throughput^scale_exponent, so a
//!   perfectly parallel query (exponent 1.0) halves its latency with each
//!   size step while a serial one (exponent 0.0) does not speed up at all;
//! * **cold-read penalty** — the scan-bound fraction of the query slows by
//!   [`COLD_READ_MULTIPLIER`] when the cache is cold, interpolated by the
//!   current warm fraction;
//! * **resume penalty** — a query that wakes a suspended warehouse waits for
//!   the resume before it starts (handled by the warehouse state machine, not
//!   here).

use crate::query::QuerySpec;
use crate::size::WarehouseSize;

/// How much slower a fully scan-bound query runs on a completely cold cache.
/// Empirically Snowflake cold reads are 2–5x slower; we pick the middle.
pub const COLD_READ_MULTIPLIER: f64 = 3.0;

/// Execution time in milliseconds for `query` on one cluster of `size` with
/// the given cache `warm_fraction` in [0, 1].
///
/// # Panics
/// Panics (debug) when `warm_fraction` is outside [0, 1].
pub fn execution_ms(query: &QuerySpec, size: WarehouseSize, warm_fraction: f64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&warm_fraction),
        "warm fraction out of range: {warm_fraction}"
    );
    let speedup = size.relative_throughput().powf(query.scale_exponent);
    let base = query.work_ms_xs / speedup;
    let cold_factor =
        1.0 + query.cache_affinity * (COLD_READ_MULTIPLIER - 1.0) * (1.0 - warm_fraction);
    (base * cold_factor).max(1.0)
}

/// The ratio `latency(to) / latency(from)` for the same query and warmness —
/// used by tests and by the analytic fallback in the cost model.
pub fn size_latency_ratio(query: &QuerySpec, from: WarehouseSize, to: WarehouseSize) -> f64 {
    let f = from.relative_throughput().powf(query.scale_exponent);
    let t = to.relative_throughput().powf(query.scale_exponent);
    f / t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(work: f64, affinity: f64, exponent: f64) -> QuerySpec {
        QuerySpec::builder(1)
            .work_ms_xs(work)
            .cache_affinity(affinity)
            .scale_exponent(exponent)
            .build()
    }

    #[test]
    fn warm_latency_on_xsmall_equals_declared_work() {
        let query = q(10_000.0, 0.5, 1.0);
        assert_eq!(execution_ms(&query, WarehouseSize::XSmall, 1.0), 10_000.0);
    }

    #[test]
    fn perfectly_parallel_query_halves_per_size_step() {
        let query = q(8_000.0, 0.0, 1.0);
        assert_eq!(execution_ms(&query, WarehouseSize::XSmall, 1.0), 8_000.0);
        assert_eq!(execution_ms(&query, WarehouseSize::Small, 1.0), 4_000.0);
        assert_eq!(execution_ms(&query, WarehouseSize::Medium, 1.0), 2_000.0);
    }

    #[test]
    fn serial_query_ignores_size() {
        let query = q(5_000.0, 0.0, 0.0);
        assert_eq!(
            execution_ms(&query, WarehouseSize::XSmall, 1.0),
            execution_ms(&query, WarehouseSize::X6Large, 1.0)
        );
    }

    #[test]
    fn sublinear_query_speeds_up_less_than_linear() {
        let sub = q(8_000.0, 0.0, 0.5);
        let lin = q(8_000.0, 0.0, 1.0);
        let sub_gain = execution_ms(&sub, WarehouseSize::XSmall, 1.0)
            / execution_ms(&sub, WarehouseSize::Medium, 1.0);
        let lin_gain = execution_ms(&lin, WarehouseSize::XSmall, 1.0)
            / execution_ms(&lin, WarehouseSize::Medium, 1.0);
        assert!(sub_gain < lin_gain);
        assert!((sub_gain - 2.0).abs() < 1e-9, "4^0.5 = 2, got {sub_gain}");
    }

    #[test]
    fn cold_cache_slows_scan_bound_queries_by_the_multiplier() {
        let query = q(1_000.0, 1.0, 1.0);
        let warm = execution_ms(&query, WarehouseSize::XSmall, 1.0);
        let cold = execution_ms(&query, WarehouseSize::XSmall, 0.0);
        assert!((cold / warm - COLD_READ_MULTIPLIER).abs() < 1e-9);
    }

    #[test]
    fn cold_cache_does_not_affect_compute_bound_queries() {
        let query = q(1_000.0, 0.0, 1.0);
        assert_eq!(
            execution_ms(&query, WarehouseSize::XSmall, 0.0),
            execution_ms(&query, WarehouseSize::XSmall, 1.0)
        );
    }

    #[test]
    fn partial_warmth_interpolates() {
        let query = q(1_000.0, 1.0, 1.0);
        let half = execution_ms(&query, WarehouseSize::XSmall, 0.5);
        assert!(
            (half - 2_000.0).abs() < 1e-9,
            "1 + 1*2*0.5 = 2x, got {half}"
        );
    }

    #[test]
    fn latency_is_floored_at_one_ms() {
        let query = q(1.0, 0.0, 1.0);
        assert_eq!(execution_ms(&query, WarehouseSize::X6Large, 1.0), 1.0);
    }

    #[test]
    fn size_ratio_matches_execution_ratio() {
        let query = q(10_000.0, 0.0, 0.7);
        let direct = execution_ms(&query, WarehouseSize::Large, 1.0)
            / execution_ms(&query, WarehouseSize::Small, 1.0);
        let ratio = size_latency_ratio(&query, WarehouseSize::Small, WarehouseSize::Large);
        assert!((direct - ratio).abs() < 1e-9);
    }
}
