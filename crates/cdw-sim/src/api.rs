//! The command surface KWO's actuator uses — the simulator's equivalent of
//! `ALTER WAREHOUSE` (§4.5 of the paper).

use crate::policy::ScalingPolicy;
use crate::size::WarehouseSize;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A configuration command against one warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WarehouseCommand {
    /// `ALTER WAREHOUSE .. SET WAREHOUSE_SIZE = ..`
    SetSize(WarehouseSize),
    /// `ALTER WAREHOUSE .. SET AUTO_SUSPEND = <seconds>`
    SetAutoSuspend { ms: SimTime },
    /// `ALTER WAREHOUSE .. SET MIN_CLUSTER_COUNT = .. MAX_CLUSTER_COUNT = ..`
    SetClusterRange { min: u32, max: u32 },
    /// `ALTER WAREHOUSE .. SET SCALING_POLICY = ..`
    SetScalingPolicy(ScalingPolicy),
    /// `ALTER WAREHOUSE .. SUSPEND`
    Suspend,
    /// `ALTER WAREHOUSE .. RESUME`
    Resume,
}

impl WarehouseCommand {
    /// Rejects commands that are malformed regardless of the warehouse they
    /// target (the per-warehouse check against the full resulting config
    /// happens later in `apply_command`). A real CDW rejects these at parse
    /// time, before touching any state.
    pub fn validate(&self) -> Result<(), AlterError> {
        match self {
            WarehouseCommand::SetClusterRange { min, max } => {
                if *min == 0 {
                    return Err(AlterError::InvalidConfig(
                        "MIN_CLUSTER_COUNT must be at least 1".into(),
                    ));
                }
                if min > max {
                    return Err(AlterError::InvalidConfig(format!(
                        "MIN_CLUSTER_COUNT ({min}) exceeds MAX_CLUSTER_COUNT ({max})"
                    )));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Renders the command as the SQL the actuator would send to a real CDW.
    /// Purely informational (action logs, dashboards).
    pub fn to_sql(&self, warehouse: &str) -> String {
        match self {
            WarehouseCommand::SetSize(s) => {
                format!(
                    "ALTER WAREHOUSE {warehouse} SET WAREHOUSE_SIZE={}",
                    s.sql_name()
                )
            }
            WarehouseCommand::SetAutoSuspend { ms } => {
                format!("ALTER WAREHOUSE {warehouse} SET AUTO_SUSPEND={}", ms / 1000)
            }
            WarehouseCommand::SetClusterRange { min, max } => format!(
                "ALTER WAREHOUSE {warehouse} SET MIN_CLUSTER_COUNT={min} MAX_CLUSTER_COUNT={max}"
            ),
            WarehouseCommand::SetScalingPolicy(p) => {
                format!(
                    "ALTER WAREHOUSE {warehouse} SET SCALING_POLICY={}",
                    p.sql_name()
                )
            }
            WarehouseCommand::Suspend => format!("ALTER WAREHOUSE {warehouse} SUSPEND"),
            WarehouseCommand::Resume => format!("ALTER WAREHOUSE {warehouse} RESUME"),
        }
    }
}

/// Errors returned by the warehouse API.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlterError {
    /// No warehouse with that name.
    UnknownWarehouse(String),
    /// The command would produce an invalid configuration.
    InvalidConfig(String),
    /// Suspending a warehouse that is already suspended (Snowflake errors
    /// on this; callers treat it as a no-op-with-warning).
    AlreadySuspended,
    /// Resuming a warehouse that is already running.
    AlreadyRunning,
    /// Transient control-plane failure; the command was not applied and
    /// retrying after a backoff is expected to succeed.
    ServiceUnavailable,
    /// The control plane rejected the request due to rate limiting; retry
    /// after a backoff.
    Throttled,
}

impl AlterError {
    /// Whether retrying the same command later can reasonably succeed.
    ///
    /// `AlreadySuspended`/`AlreadyRunning` are benign no-ops, not retryable
    /// failures; `UnknownWarehouse`/`InvalidConfig` are permanent — retrying
    /// the identical command cannot help.
    pub fn is_transient(&self) -> bool {
        matches!(self, AlterError::ServiceUnavailable | AlterError::Throttled)
    }
}

impl fmt::Display for AlterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlterError::UnknownWarehouse(name) => write!(f, "unknown warehouse: {name}"),
            AlterError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AlterError::AlreadySuspended => write!(f, "warehouse is already suspended"),
            AlterError::AlreadyRunning => write!(f, "warehouse is already running"),
            AlterError::ServiceUnavailable => {
                write!(f, "service temporarily unavailable, retry later")
            }
            AlterError::Throttled => write!(f, "request throttled, retry later"),
        }
    }
}

impl std::error::Error for AlterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_size_sql_matches_paper_example() {
        // The paper's §4.5 example: ALTER WAREHOUSE COMPUTE_WH SET WAREHOUSE_SIZE=MEDIUM
        let sql = WarehouseCommand::SetSize(WarehouseSize::Medium).to_sql("COMPUTE_WH");
        assert_eq!(sql, "ALTER WAREHOUSE COMPUTE_WH SET WAREHOUSE_SIZE=MEDIUM");
    }

    #[test]
    fn auto_suspend_sql_uses_seconds() {
        let sql = WarehouseCommand::SetAutoSuspend { ms: 90_000 }.to_sql("WH");
        assert_eq!(sql, "ALTER WAREHOUSE WH SET AUTO_SUSPEND=90");
    }

    #[test]
    fn cluster_range_sql() {
        let sql = WarehouseCommand::SetClusterRange { min: 1, max: 4 }.to_sql("WH");
        assert!(sql.contains("MIN_CLUSTER_COUNT=1"));
        assert!(sql.contains("MAX_CLUSTER_COUNT=4"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = AlterError::UnknownWarehouse("X".into());
        assert!(e.to_string().contains("X"));
        assert!(AlterError::AlreadySuspended
            .to_string()
            .contains("suspended"));
        assert!(AlterError::ServiceUnavailable.to_string().contains("retry"));
        assert!(AlterError::Throttled.to_string().contains("retry"));
    }

    #[test]
    fn transient_classification() {
        assert!(AlterError::ServiceUnavailable.is_transient());
        assert!(AlterError::Throttled.is_transient());
        assert!(!AlterError::UnknownWarehouse("X".into()).is_transient());
        assert!(!AlterError::InvalidConfig("bad".into()).is_transient());
        assert!(!AlterError::AlreadySuspended.is_transient());
        assert!(!AlterError::AlreadyRunning.is_transient());
    }

    #[test]
    fn cluster_range_rejects_zero_min() {
        let err = WarehouseCommand::SetClusterRange { min: 0, max: 3 }
            .validate()
            .unwrap_err();
        assert!(matches!(err, AlterError::InvalidConfig(_)));
        assert!(err.to_string().contains("MIN_CLUSTER_COUNT"));
    }

    #[test]
    fn cluster_range_rejects_min_above_max() {
        let err = WarehouseCommand::SetClusterRange { min: 5, max: 2 }
            .validate()
            .unwrap_err();
        assert!(matches!(err, AlterError::InvalidConfig(_)));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn valid_commands_pass_validation() {
        assert!(WarehouseCommand::SetClusterRange { min: 1, max: 1 }
            .validate()
            .is_ok());
        assert!(WarehouseCommand::SetClusterRange { min: 2, max: 8 }
            .validate()
            .is_ok());
        assert!(WarehouseCommand::SetSize(WarehouseSize::XSmall)
            .validate()
            .is_ok());
        assert!(WarehouseCommand::Suspend.validate().is_ok());
    }
}
