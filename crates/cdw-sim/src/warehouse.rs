//! The virtual-warehouse state machine.
//!
//! A warehouse transitions between Suspended, Resuming, and Running; owns a
//! set of clusters, a FIFO query queue, and a cache; and reacts to query
//! arrivals/completions, timers, and `ALTER WAREHOUSE` commands. All methods
//! are passive: they mutate state and emit *effects* (billing entries,
//! telemetry records, future events) through [`WhContext`]; the event loop in
//! [`crate::sim`] owns time.

use crate::api::{AlterError, WarehouseCommand};
use crate::billing::BillingLedger;
use crate::cache::CacheState;
use crate::cluster::{Cluster, ClusterState};
use crate::config::WarehouseConfig;
use crate::exec::execution_ms;
use crate::policy::ScalingPolicy;
use crate::query::QuerySpec;
use crate::records::{ActionSource, QueryRecord, WarehouseEventKind, WarehouseEventRecord};
use crate::size::WarehouseSize;
use crate::time::SimTime;
use keebo_obs::Histogram;
use std::collections::{BTreeMap, VecDeque};
use std::sync::OnceLock;

/// Queue-wait histogram (ms between arrival and execution start), shared by
/// every warehouse in the process. Observability only: never read back.
fn queue_wait_histogram() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        keebo_obs::global().histogram(
            "cdw_sim.query.queue_wait_ms",
            &[0.0, 100.0, 1_000.0, 5_000.0, 15_000.0, 60_000.0, 300_000.0],
        )
    })
}

/// Warehouse lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarehouseState {
    /// No clusters running, no credits accruing, cache dropped.
    Suspended,
    /// Waking up; becomes Running at `ready_at`.
    Resuming { ready_at: SimTime },
    /// At least `min_clusters` clusters up.
    Running,
}

/// Events a warehouse asks the simulator to deliver later. The simulator
/// attaches the warehouse id when enqueueing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhEvent {
    /// A running query finishes.
    QueryDone { run_id: u64 },
    /// Resume completes (stale if `generation` mismatches).
    ResumeDone { generation: u64 },
    /// A scale-out cluster finishes provisioning.
    ClusterReady { cluster_id: u32 },
    /// Check whether the warehouse should auto-suspend.
    IdleCheck { generation: u64 },
    /// Check whether a surplus cluster should be retired.
    RetireCheck { cluster_id: u32 },
}

/// Mutable context threaded through every warehouse method: the current
/// time plus sinks for billing, telemetry, and future events.
pub struct WhContext<'a> {
    pub now: SimTime,
    pub ledger: &'a mut BillingLedger,
    pub query_records: &'a mut Vec<QueryRecord>,
    pub event_records: &'a mut Vec<WarehouseEventRecord>,
    /// (fire time, event) pairs the simulator will enqueue.
    pub schedule: &'a mut Vec<(SimTime, WhEvent)>,
}

/// How long a suspended warehouse takes to resume. Snowflake resumes are
/// typically 1–3 seconds.
pub const RESUME_DELAY_MS: SimTime = 2_000;
/// How long an additional cluster takes to provision during scale-out.
pub const CLUSTER_START_DELAY_MS: SimTime = 1_000;

/// A query currently executing.
#[derive(Debug, Clone)]
struct RunningQuery {
    spec: QuerySpec,
    cluster_id: u32,
    start: SimTime,
    warm_at_start: f64,
    latency_ms: SimTime,
    /// Warehouse size when the query started (recorded in telemetry; the
    /// query keeps its latency even if the warehouse resizes mid-flight).
    size: WarehouseSize,
}

/// One queued (not yet started) query.
#[derive(Debug, Clone)]
struct QueuedQuery {
    spec: QuerySpec,
}

/// A virtual warehouse.
#[derive(Debug)]
pub struct Warehouse {
    name: String,
    config: WarehouseConfig,
    state: WarehouseState,
    clusters: Vec<Cluster>,
    next_cluster_id: u32,
    queue: VecDeque<QueuedQuery>,
    running: BTreeMap<u64, RunningQuery>,
    next_run_id: u64,
    cache: CacheState,
    /// Bumped on every activity transition; stale IdleCheck/ResumeDone
    /// events are ignored.
    generation: u64,
    /// When the warehouse last became fully idle (Running, no queries).
    idle_start: Option<SimTime>,
    /// A manual Suspend arrived while queries were running; suspend as soon
    /// as the warehouse drains.
    suspend_when_idle: bool,
    /// Queries dropped because the warehouse was suspended with auto-resume
    /// disabled.
    dropped_queries: u64,
    /// EWMA of recent execution times, used by the Economy policy to decide
    /// whether queued work justifies a new cluster.
    exec_ewma_ms: f64,
}

impl Warehouse {
    /// Creates a warehouse in the Suspended state.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(name: impl Into<String>, config: WarehouseConfig) -> Self {
        config
            .validate()
            // lint: allow(D5) — documented panicking constructor; validate() is the fallible path
            .unwrap_or_else(|e| panic!("invalid warehouse config: {e}"));
        Self {
            name: name.into(),
            config,
            state: WarehouseState::Suspended,
            clusters: Vec::new(),
            next_cluster_id: 0,
            queue: VecDeque::new(),
            running: BTreeMap::new(),
            next_run_id: 0,
            cache: CacheState::with_default_tau(),
            generation: 0,
            idle_start: None,
            suspend_when_idle: false,
            dropped_queries: 0,
            exec_ewma_ms: 60_000.0,
        }
    }

    // ---- accessors -------------------------------------------------------

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn state(&self) -> WarehouseState {
        self.state
    }

    pub fn config(&self) -> &WarehouseConfig {
        &self.config
    }

    /// Clusters currently running (billing).
    pub fn running_clusters(&self) -> u32 {
        self.clusters
            .iter()
            .filter(|c| matches!(c.state, ClusterState::Running))
            .count() as u32
    }

    /// Clusters provisioning.
    pub fn starting_clusters(&self) -> u32 {
        self.clusters
            .iter()
            .filter(|c| matches!(c.state, ClusterState::Starting { .. }))
            .count() as u32
    }

    /// Queries waiting for a slot.
    pub fn queued_queries(&self) -> usize {
        self.queue.len()
    }

    /// Queries currently executing.
    pub fn running_queries(&self) -> usize {
        self.running.len()
    }

    /// Queries dropped due to suspended + auto-resume off.
    pub fn dropped_queries(&self) -> u64 {
        self.dropped_queries
    }

    /// Current cache warm fraction.
    pub fn cache_warm_fraction(&self) -> f64 {
        self.cache.warm_fraction()
    }

    /// Elapsed time of the longest-running in-flight query (0 when idle).
    /// Real CDWs expose running-query elapsed times; monitoring uses this
    /// to catch slowdowns before the slow queries ever complete.
    pub fn longest_running_ms(&self, now: SimTime) -> SimTime {
        self.running
            .values()
            .map(|r| now.saturating_sub(r.start))
            .max()
            .unwrap_or(0)
    }

    /// Credits accrued by currently open billing sessions up to `now` (the
    /// ledger only records closed sessions). Includes the 60-second minimum
    /// each open session has already committed to.
    pub fn open_session_credits(&self, now: SimTime) -> f64 {
        self.clusters
            .iter()
            .filter(|c| matches!(c.state, crate::cluster::ClusterState::Running))
            .map(|c| {
                crate::billing::session_credits(c.session_size, now.saturating_sub(c.session_start))
            })
            .sum()
    }

    // ---- query path ------------------------------------------------------

    /// Submits a query. Depending on state this starts it, queues it, or
    /// triggers an auto-resume.
    pub fn submit(&mut self, ctx: &mut WhContext<'_>, spec: QuerySpec) {
        spec.validate();
        match self.state {
            WarehouseState::Suspended => {
                if !self.config.auto_resume {
                    self.dropped_queries += 1;
                    return;
                }
                self.queue.push_back(QueuedQuery { spec });
                self.begin_resume(ctx, ActionSource::System);
            }
            WarehouseState::Resuming { .. } => {
                self.queue.push_back(QueuedQuery { spec });
            }
            WarehouseState::Running => {
                self.idle_start = None;
                self.queue.push_back(QueuedQuery { spec });
                self.drain_queue(ctx);
                self.maybe_scale_out(ctx);
            }
        }
    }

    /// Handles a query completion event.
    pub fn on_query_done(&mut self, ctx: &mut WhContext<'_>, run_id: u64) {
        let Some(rq) = self.running.remove(&run_id) else {
            // Stale event after an external reset; ignore.
            return;
        };
        // Warm the cache by the executed work.
        self.cache.record_execution(rq.latency_ms);
        if let Some(cluster) = self.clusters.iter_mut().find(|c| c.id == rq.cluster_id) {
            cluster.end_query(ctx.now);
        }
        self.exec_ewma_ms = 0.9 * self.exec_ewma_ms + 0.1 * rq.latency_ms as f64;
        queue_wait_histogram().observe((rq.start - rq.spec.arrival) as f64);
        ctx.query_records.push(QueryRecord {
            query_id: rq.spec.id,
            warehouse: self.name.clone(),
            size: rq.size,
            cluster_count: self.running_clusters().max(1),
            text_hash: rq.spec.text_hash,
            template_hash: rq.spec.template_hash,
            arrival: rq.spec.arrival,
            start: rq.start,
            end: ctx.now,
            bytes_scanned: rq.spec.bytes_scanned,
            cache_warm_fraction: rq.warm_at_start,
        });
        self.drain_queue(ctx);
        self.maybe_scale_out(ctx);
        self.enforce_cluster_maximum(ctx);
        self.after_activity(ctx);
    }

    /// Handles resume completion.
    pub fn on_resume_done(&mut self, ctx: &mut WhContext<'_>, generation: u64) {
        if generation != self.generation {
            return; // stale
        }
        let WarehouseState::Resuming { .. } = self.state else {
            return;
        };
        self.state = WarehouseState::Running;
        // Start the minimum cluster count (all clusters for Maximized, since
        // min == max there).
        for _ in 0..self.config.min_clusters {
            self.start_cluster_immediately(ctx);
        }
        self.emit_event(ctx, WarehouseEventKind::Resumed, ActionSource::System);
        self.drain_queue(ctx);
        self.maybe_scale_out(ctx);
        self.after_activity(ctx);
    }

    /// Handles a scale-out cluster becoming ready.
    pub fn on_cluster_ready(&mut self, ctx: &mut WhContext<'_>, cluster_id: u32) {
        if !matches!(self.state, WarehouseState::Running) {
            // Warehouse suspended while the cluster was provisioning; the
            // cluster was already discarded.
            return;
        }
        let Some(cluster) = self.clusters.iter_mut().find(|c| c.id == cluster_id) else {
            return;
        };
        let ClusterState::Starting { .. } = cluster.state else {
            return;
        };
        cluster.state = ClusterState::Running;
        cluster.session_start = ctx.now;
        cluster.session_size = self.config.size;
        cluster.idle_since = Some(ctx.now);
        self.emit_event(
            ctx,
            WarehouseEventKind::ClusterStarted,
            ActionSource::System,
        );
        self.drain_queue(ctx);
        self.maybe_scale_out(ctx);
        self.after_activity(ctx);
    }

    /// Handles an auto-suspend check.
    pub fn on_idle_check(&mut self, ctx: &mut WhContext<'_>, generation: u64) {
        if generation != self.generation {
            return; // activity happened since this was scheduled
        }
        if !matches!(self.state, WarehouseState::Running) {
            return;
        }
        let Some(idle_start) = self.idle_start else {
            return;
        };
        if self.config.auto_suspend_ms == 0 {
            return; // auto-suspend disabled
        }
        if ctx.now >= idle_start + self.config.auto_suspend_ms {
            self.suspend_now(ctx, ActionSource::System);
        }
    }

    /// Handles a cluster-retirement check.
    pub fn on_retire_check(&mut self, ctx: &mut WhContext<'_>, cluster_id: u32) {
        if !matches!(self.state, WarehouseState::Running) {
            return;
        }
        let retire_ms = self.config.scaling_policy.idle_retire_ms();
        if retire_ms == u64::MAX {
            return;
        }
        if self.running_clusters() <= self.config.min_clusters {
            return;
        }
        let Some(pos) = self.clusters.iter().position(|c| c.id == cluster_id) else {
            return;
        };
        let cluster = &self.clusters[pos];
        let Some(idle_since) = cluster.idle_since else {
            return; // busy again
        };
        if ctx.now >= idle_since + retire_ms {
            self.stop_cluster(ctx, pos, ActionSource::System);
            self.after_activity(ctx);
        } else {
            // Became idle more recently; re-check at the new deadline.
            ctx.schedule
                .push((idle_since + retire_ms, WhEvent::RetireCheck { cluster_id }));
        }
    }

    // ---- command surface (the ALTER WAREHOUSE API) ------------------------

    /// Applies a configuration command, emitting audit events tagged with
    /// `source` so the monitoring layer can distinguish Keebo's actions from
    /// external ones.
    pub fn apply_command(
        &mut self,
        ctx: &mut WhContext<'_>,
        cmd: WarehouseCommand,
        source: ActionSource,
    ) -> Result<(), AlterError> {
        match cmd {
            WarehouseCommand::SetSize(size) => {
                if size != self.config.size {
                    self.resize(ctx, size, source);
                }
                Ok(())
            }
            WarehouseCommand::SetAutoSuspend { ms } => {
                self.config.auto_suspend_ms = ms;
                self.emit_event(ctx, WarehouseEventKind::AutoSuspendChanged, source);
                // Re-arm the idle timer under the new interval.
                if let Some(idle_start) = self.idle_start {
                    self.generation += 1;
                    if ms > 0 {
                        let deadline = (idle_start + ms).max(ctx.now);
                        ctx.schedule.push((
                            deadline,
                            WhEvent::IdleCheck {
                                generation: self.generation,
                            },
                        ));
                    }
                }
                Ok(())
            }
            WarehouseCommand::SetClusterRange { min, max } => {
                let mut next = self.config.clone();
                next.min_clusters = min;
                next.max_clusters = max;
                next.validate().map_err(AlterError::InvalidConfig)?;
                self.config = next;
                self.emit_event(ctx, WarehouseEventKind::ClusterRangeChanged, source);
                if matches!(self.state, WarehouseState::Running) {
                    while self.running_clusters() < self.config.min_clusters {
                        self.start_cluster_immediately(ctx);
                    }
                    self.enforce_cluster_maximum(ctx);
                    self.drain_queue(ctx);
                    self.after_activity(ctx);
                }
                Ok(())
            }
            WarehouseCommand::SetScalingPolicy(policy) => {
                let mut next = self.config.clone();
                next.scaling_policy = policy;
                if policy == ScalingPolicy::Maximized {
                    // Maximized requires min == max; widen min to max.
                    next.min_clusters = next.max_clusters;
                }
                next.validate().map_err(AlterError::InvalidConfig)?;
                self.config = next;
                self.emit_event(ctx, WarehouseEventKind::PolicyChanged, source);
                if matches!(self.state, WarehouseState::Running) {
                    while self.running_clusters() < self.config.min_clusters {
                        self.start_cluster_immediately(ctx);
                    }
                }
                Ok(())
            }
            WarehouseCommand::Suspend => match self.state {
                WarehouseState::Suspended => Err(AlterError::AlreadySuspended),
                WarehouseState::Resuming { .. } | WarehouseState::Running => {
                    if self.running.is_empty() && self.queue.is_empty() {
                        self.suspend_now(ctx, source);
                    } else {
                        self.suspend_when_idle = true;
                    }
                    Ok(())
                }
            },
            WarehouseCommand::Resume => match self.state {
                WarehouseState::Suspended => {
                    self.begin_resume(ctx, source);
                    Ok(())
                }
                _ => Err(AlterError::AlreadyRunning),
            },
        }
    }

    // ---- internals -------------------------------------------------------

    fn begin_resume(&mut self, ctx: &mut WhContext<'_>, _source: ActionSource) {
        debug_assert!(matches!(self.state, WarehouseState::Suspended));
        self.generation += 1;
        let ready_at = ctx.now + RESUME_DELAY_MS;
        self.state = WarehouseState::Resuming { ready_at };
        self.idle_start = None;
        ctx.schedule.push((
            ready_at,
            WhEvent::ResumeDone {
                generation: self.generation,
            },
        ));
    }

    /// Starts a cluster that is immediately running (resume path and
    /// min-cluster enforcement).
    fn start_cluster_immediately(&mut self, ctx: &mut WhContext<'_>) {
        let id = self.next_cluster_id;
        self.next_cluster_id += 1;
        self.clusters
            .push(Cluster::running(id, self.config.size, ctx.now));
        self.emit_event(
            ctx,
            WarehouseEventKind::ClusterStarted,
            ActionSource::System,
        );
        self.schedule_retire_check(ctx, id, ctx.now);
    }

    /// Starts a cluster with the scale-out provisioning delay.
    fn start_cluster_delayed(&mut self, ctx: &mut WhContext<'_>) {
        let id = self.next_cluster_id;
        self.next_cluster_id += 1;
        let ready_at = ctx.now + CLUSTER_START_DELAY_MS;
        self.clusters
            .push(Cluster::starting(id, self.config.size, ready_at));
        ctx.schedule
            .push((ready_at, WhEvent::ClusterReady { cluster_id: id }));
    }

    /// Closes the billing session of cluster at `pos` and removes it.
    fn stop_cluster(&mut self, ctx: &mut WhContext<'_>, pos: usize, source: ActionSource) {
        let cluster = self.clusters.remove(pos);
        if matches!(cluster.state, ClusterState::Running) {
            ctx.ledger.record_session(
                &self.name,
                cluster.session_size,
                cluster.session_start,
                ctx.now,
            );
        }
        self.emit_event(ctx, WarehouseEventKind::ClusterStopped, source);
    }

    fn suspend_now(&mut self, ctx: &mut WhContext<'_>, source: ActionSource) {
        debug_assert!(self.running.is_empty(), "suspending with queries in flight");
        // Close every billing session; discard provisioning clusters.
        while let Some(cluster) = self.clusters.pop() {
            if matches!(cluster.state, ClusterState::Running) {
                ctx.ledger.record_session(
                    &self.name,
                    cluster.session_size,
                    cluster.session_start,
                    ctx.now,
                );
            }
        }
        self.state = WarehouseState::Suspended;
        self.cache.drop_cache();
        self.idle_start = None;
        self.suspend_when_idle = false;
        self.generation += 1;
        self.emit_event(ctx, WarehouseEventKind::Suspended, source);
    }

    fn resize(&mut self, ctx: &mut WhContext<'_>, size: WarehouseSize, source: ActionSource) {
        self.config.size = size;
        if matches!(self.state, WarehouseState::Running) {
            // Close sessions at the old rate and restart at the new one; the
            // fresh clusters start cold.
            for cluster in &mut self.clusters {
                if matches!(cluster.state, ClusterState::Running) {
                    ctx.ledger.record_session(
                        &self.name,
                        cluster.session_size,
                        cluster.session_start,
                        ctx.now,
                    );
                    cluster.session_start = ctx.now;
                    cluster.session_size = size;
                } else {
                    cluster.session_size = size;
                }
            }
            self.cache.drop_cache();
        }
        self.emit_event(ctx, WarehouseEventKind::Resized, source);
    }

    /// Starts queued queries on free slots, FIFO.
    fn drain_queue(&mut self, ctx: &mut WhContext<'_>) {
        if !matches!(self.state, WarehouseState::Running) {
            return;
        }
        while let Some(next) = self.queue.front() {
            let Some(pos) = self.find_free_cluster() else {
                break;
            };
            let spec = next.spec.clone();
            self.queue.pop_front();
            let warm = self.cache.warm_fraction();
            let latency = execution_ms(&spec, self.config.size, warm).round().max(1.0) as SimTime;
            let cluster = &mut self.clusters[pos];
            cluster.begin_query();
            let cluster_id = cluster.id;
            let run_id = self.next_run_id;
            self.next_run_id += 1;
            self.running.insert(
                run_id,
                RunningQuery {
                    spec,
                    cluster_id,
                    start: ctx.now,
                    warm_at_start: warm,
                    latency_ms: latency,
                    size: self.config.size,
                },
            );
            ctx.schedule
                .push((ctx.now + latency, WhEvent::QueryDone { run_id }));
            self.idle_start = None;
        }
    }

    /// Picks the running cluster with a free slot and the fewest running
    /// queries (least-loaded placement, deterministic tie-break by id).
    fn find_free_cluster(&self) -> Option<usize> {
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.has_free_slot(self.config.max_concurrency))
            .min_by_key(|(_, c)| (c.running_queries, c.id))
            .map(|(pos, _)| pos)
    }

    /// Scale-out decision per the configured policy.
    fn maybe_scale_out(&mut self, ctx: &mut WhContext<'_>) {
        if !matches!(self.state, WarehouseState::Running) {
            return;
        }
        let total = self.clusters.len() as u32;
        if total >= self.config.max_clusters {
            return;
        }
        if self
            .config
            .scaling_policy
            .should_scale_out(self.queue.len(), self.exec_ewma_ms)
        {
            self.start_cluster_delayed(ctx);
        }
    }

    /// Stops idle clusters above the configured maximum (after the range
    /// shrinks). Busy surplus clusters are retired once their queries drain.
    fn enforce_cluster_maximum(&mut self, ctx: &mut WhContext<'_>) {
        while self.running_clusters() + self.starting_clusters() > self.config.max_clusters {
            if let Some(pos) = self.clusters.iter().position(|c| c.is_idle()) {
                self.stop_cluster(ctx, pos, ActionSource::System);
            } else if let Some(pos) = self
                .clusters
                .iter()
                .position(|c| matches!(c.state, ClusterState::Starting { .. }))
            {
                // Cancel provisioning clusters that are no longer allowed.
                self.clusters.remove(pos);
            } else {
                break; // all surplus clusters are busy; they retire on drain
            }
        }
    }

    /// Common bookkeeping after any state-changing event: idle detection,
    /// deferred suspension, retire scheduling.
    fn after_activity(&mut self, ctx: &mut WhContext<'_>) {
        if !matches!(self.state, WarehouseState::Running) {
            return;
        }
        let fully_idle = self.running.is_empty() && self.queue.is_empty();
        if fully_idle {
            if self.suspend_when_idle {
                self.suspend_now(ctx, ActionSource::Keebo);
                return;
            }
            if self.idle_start.is_none() {
                self.idle_start = Some(ctx.now);
                self.generation += 1;
                if self.config.auto_suspend_ms > 0 {
                    ctx.schedule.push((
                        ctx.now + self.config.auto_suspend_ms,
                        WhEvent::IdleCheck {
                            generation: self.generation,
                        },
                    ));
                }
            }
            // Schedule retirement checks for surplus idle clusters.
            let retire_ms = self.config.scaling_policy.idle_retire_ms();
            if retire_ms != u64::MAX && self.running_clusters() > self.config.min_clusters {
                let ids: Vec<(u32, SimTime)> = self
                    .clusters
                    .iter()
                    .filter_map(|c| c.idle_since.map(|t| (c.id, t)))
                    .collect();
                for (id, idle_since) in ids {
                    self.schedule_retire_check_at(ctx, id, idle_since + retire_ms);
                }
            }
        } else {
            self.idle_start = None;
            // Individual clusters may still be idle while others work.
            let retire_ms = self.config.scaling_policy.idle_retire_ms();
            if retire_ms != u64::MAX && self.running_clusters() > self.config.min_clusters {
                let ids: Vec<(u32, SimTime)> = self
                    .clusters
                    .iter()
                    .filter(|c| c.is_idle())
                    .filter_map(|c| c.idle_since.map(|t| (c.id, t)))
                    .collect();
                for (id, idle_since) in ids {
                    self.schedule_retire_check_at(ctx, id, idle_since + retire_ms);
                }
            }
        }
    }

    fn schedule_retire_check(&mut self, ctx: &mut WhContext<'_>, cluster_id: u32, from: SimTime) {
        let retire_ms = self.config.scaling_policy.idle_retire_ms();
        if retire_ms == u64::MAX {
            return;
        }
        self.schedule_retire_check_at(ctx, cluster_id, from + retire_ms);
    }

    fn schedule_retire_check_at(&mut self, ctx: &mut WhContext<'_>, cluster_id: u32, at: SimTime) {
        ctx.schedule
            .push((at.max(ctx.now), WhEvent::RetireCheck { cluster_id }));
    }

    fn emit_event(&self, ctx: &mut WhContext<'_>, kind: WarehouseEventKind, source: ActionSource) {
        ctx.event_records.push(WarehouseEventRecord {
            warehouse: self.name.clone(),
            at: ctx.now,
            kind,
            source,
            size: self.config.size,
            running_clusters: self.running_clusters(),
            auto_suspend_ms: self.config.auto_suspend_ms,
            min_clusters: self.config.min_clusters,
            max_clusters: self.config.max_clusters,
            scaling_policy: self.config.scaling_policy,
        });
    }
}
