//! Deterministic structured fuzzer for the public `cdw-sim` API.
//!
//! A seed drives [`SplitMix64`] to a raw byte buffer (the *genome*); a
//! structured decoder turns the bytes into warehouse configs plus an
//! interleaved sequence of `ALTER WAREHOUSE` / query-submission /
//! clock-advance operations; a runner drives a real [`Simulator`] through
//! the sequence with the invariant [`Validator`] installed after every
//! event and the billing oracle checked at the end. Because every stage is
//! a pure function of the bytes, a failure reproduces from `(seed, bytes)`
//! alone, and shrinking works at the byte level: drop chunks / zero bytes,
//! re-decode, re-run, keep the transformation while the same failure kind
//! still fires.
//!
//! Grammar (see DESIGN.md "Verification" for the byte layout):
//!
//! ```text
//! case      := wh_count config{wh_count} op*
//! op        := submit | alter | advance        (opcode = byte % 16)
//! submit    := wh delay work affinity          (opcodes 0–8)
//! alter     := wh cmd                          (opcodes 9–13; cmd covers all
//!                                               six WarehouseCommand arms,
//!                                               invalid ranges included)
//! advance   := dt                              (opcodes 14–15)
//! ```
//!
//! Benign `AlterError`s (AlreadySuspended, AlreadyRunning, InvalidConfig)
//! are expected outcomes, not failures; failures are panics, invariant
//! violations, and oracle divergence.

use crate::invariants::{Validator, Violation};
use crate::oracle;
use crate::rng::{to_hex, SplitMix64};
use cdw_sim::{
    Account, ActionSource, AlterError, QuerySpec, ScalingPolicy, SimTime, Simulator,
    WarehouseCommand, WarehouseConfig, WarehouseSize, HOUR_MS,
};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

/// Auto-suspend settings the decoder picks from (ms); includes 0 (never).
const AUTO_SUSPEND_CHOICES_MS: [u64; 6] = [0, 30_000, 60_000, 120_000, 300_000, 600_000];

/// Fuzzer tuning knobs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Genome length in bytes per case.
    pub bytes_per_case: usize,
    /// Upper bound on decoded operations per case.
    pub max_ops: usize,
    /// Upper bound on candidate executions during shrinking.
    pub max_shrink_runs: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            bytes_per_case: 192,
            max_ops: 48,
            max_shrink_runs: 300,
        }
    }
}

/// One decoded operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzOp {
    /// Submit a query `delay_ms` after the current clock.
    Submit {
        wh: usize,
        delay_ms: u64,
        work_ms: f64,
        affinity: f64,
    },
    /// Apply an `ALTER WAREHOUSE` command now.
    Alter { wh: usize, cmd: WarehouseCommand },
    /// Advance the clock by `dt_ms`, processing due events.
    Advance { dt_ms: u64 },
}

/// A fully decoded fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    pub seed: u64,
    pub configs: Vec<WarehouseConfig>,
    pub ops: Vec<FuzzOp>,
}

/// How a case failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    Panic,
    Invariant,
    OracleDivergence,
}

/// A failing case, before or after shrinking.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    pub kind: FailureKind,
    pub message: String,
}

/// Statistics from a passing case.
#[derive(Debug, Clone, Default)]
pub struct CaseStats {
    pub ops_applied: usize,
    pub events_processed: u64,
    pub completed_queries: usize,
    pub total_credits: f64,
}

/// Shrunk reproduction artifact; serialized to `FUZZ_repro.json` by the
/// bench `fuzz` bin on failure.
#[derive(Debug, Clone, Serialize)]
pub struct FailureReport {
    pub seed: u64,
    pub kind: String,
    pub message: String,
    pub original_len: usize,
    pub shrunk_len: usize,
    /// Hex-encoded shrunk genome; decode with `rng::from_hex` and replay
    /// via `decode` + `run_case`.
    pub shrunk_bytes_hex: String,
    /// Human-readable decoded shrunk case.
    pub shrunk_case: String,
}

/// Campaign summary; serialized to `BENCH_fuzz.json`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CampaignReport {
    pub start_seed: u64,
    pub cases: usize,
    pub ops_applied: usize,
    pub events_processed: u64,
    pub completed_queries: usize,
    pub failure_count: usize,
    #[serde(skip)]
    pub failures: Vec<FailureReport>,
}

/// Expands a seed into the raw genome.
pub fn generate_bytes(seed: u64, len: usize) -> Vec<u8> {
    SplitMix64::new(seed).bytes(len)
}

/// Byte-stream cursor; yields 0 once exhausted so truncation during
/// shrinking degrades gracefully instead of changing earlier decisions.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn exhausted(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn u8(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn u16(&mut self) -> u16 {
        u16::from_le_bytes([self.u8(), self.u8()])
    }
}

fn decode_config(c: &mut Cursor<'_>) -> WarehouseConfig {
    let size = WarehouseSize::ALL[c.u8() as usize % WarehouseSize::ALL.len()];
    let policy = match c.u8() % 3 {
        0 => ScalingPolicy::Standard,
        1 => ScalingPolicy::Economy,
        _ => ScalingPolicy::Maximized,
    };
    let mut min = 1 + (c.u8() % 3) as u32;
    let max = min + (c.u8() % 3) as u32;
    if policy == ScalingPolicy::Maximized {
        min = max;
    }
    let auto_ms = AUTO_SUSPEND_CHOICES_MS[c.u8() as usize % AUTO_SUSPEND_CHOICES_MS.len()];
    let concurrency = 1 + (c.u8() % 4) as u32;
    let mut cfg = WarehouseConfig::new(size)
        .with_policy(policy)
        .with_clusters(min, max)
        .with_max_concurrency(concurrency);
    cfg.auto_suspend_ms = auto_ms;
    cfg
}

fn decode_command(c: &mut Cursor<'_>) -> WarehouseCommand {
    match c.u8() % 6 {
        0 => WarehouseCommand::SetSize(WarehouseSize::ALL[c.u8() as usize % 10]),
        1 => WarehouseCommand::SetAutoSuspend {
            ms: AUTO_SUSPEND_CHOICES_MS[c.u8() as usize % AUTO_SUSPEND_CHOICES_MS.len()],
        },
        // Deliberately allows invalid ranges (min 0, min > max): the API
        // must reject them without side effects.
        2 => WarehouseCommand::SetClusterRange {
            min: (c.u8() % 5) as u32,
            max: (c.u8() % 5) as u32,
        },
        3 => WarehouseCommand::SetScalingPolicy(match c.u8() % 3 {
            0 => ScalingPolicy::Standard,
            1 => ScalingPolicy::Economy,
            _ => ScalingPolicy::Maximized,
        }),
        4 => WarehouseCommand::Suspend,
        _ => WarehouseCommand::Resume,
    }
}

/// Decodes a genome into a structured case. Total function: every byte
/// string decodes to a valid case (invalid *commands* are kept — exercising
/// rejection paths is part of the point — but warehouse *configs* are
/// always valid, since `create_warehouse` rejects invalid ones up front).
pub fn decode(seed: u64, bytes: &[u8], cfg: &FuzzConfig) -> FuzzCase {
    let mut c = Cursor::new(bytes);
    let wh_count = 1 + (c.u8() % 2) as usize;
    let configs = (0..wh_count).map(|_| decode_config(&mut c)).collect();
    let mut ops = Vec::new();
    while !c.exhausted() && ops.len() < cfg.max_ops {
        match c.u8() % 16 {
            0..=8 => ops.push(FuzzOp::Submit {
                wh: c.u8() as usize % wh_count,
                delay_ms: c.u16() as u64 * 7,
                work_ms: 500.0 + c.u16() as f64 * 40.0,
                affinity: (c.u8() % 11) as f64 / 10.0,
            }),
            9..=13 => ops.push(FuzzOp::Alter {
                wh: c.u8() as usize % wh_count,
                cmd: decode_command(&mut c),
            }),
            _ => ops.push(FuzzOp::Advance {
                dt_ms: c.u16() as u64 * 10,
            }),
        }
    }
    FuzzCase { seed, configs, ops }
}

/// Drives a real simulator through the case with invariants checked after
/// every event and the oracle checked at the end. Does NOT catch panics;
/// see [`run_case_catching`].
pub fn run_case(case: &FuzzCase) -> Result<CaseStats, CaseFailure> {
    let mut acc = Account::new();
    let ids: Vec<_> = case
        .configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| acc.create_warehouse(&format!("F{i}"), cfg.clone()))
        .collect();
    let mut sim = Simulator::new(acc);

    // Arc<Mutex> rather than Rc<RefCell>: the hook slot is `Send` so shards
    // can migrate across fleet pool workers, even though this case runs on
    // one thread.
    let violations: Arc<Mutex<Vec<Violation>>> = Arc::default();
    let sink = Arc::clone(&violations);
    sim.set_post_event_hook(move |account, now| {
        let mut sink = sink.lock().unwrap_or_else(PoisonError::into_inner);
        if sink.is_empty() {
            sink.extend(Validator::check_account(account, now));
        }
    });

    let mut stats = CaseStats::default();
    let mut next_query_id = 0u64;
    for op in &case.ops {
        if !violations
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
        {
            break;
        }
        match *op {
            FuzzOp::Submit {
                wh,
                delay_ms,
                work_ms,
                affinity,
            } => {
                let spec = QuerySpec::builder(next_query_id)
                    .work_ms_xs(work_ms)
                    .cache_affinity(affinity)
                    .arrival_ms(sim.now() + delay_ms)
                    .build();
                next_query_id += 1;
                sim.submit_query(ids[wh], spec);
            }
            FuzzOp::Alter { wh, cmd } => {
                match sim.alter_warehouse(ids[wh], cmd, ActionSource::External) {
                    Ok(())
                    | Err(AlterError::AlreadySuspended)
                    | Err(AlterError::AlreadyRunning)
                    | Err(AlterError::InvalidConfig(_)) => {}
                    Err(e) => {
                        return Err(CaseFailure {
                            kind: FailureKind::Panic,
                            message: format!("unexpected alter error without faults: {e:?}"),
                        })
                    }
                }
            }
            FuzzOp::Advance { dt_ms } => {
                sim.run_until(sim.now() + dt_ms);
            }
        }
        stats.ops_applied += 1;
    }

    // Settle: drain in-flight work, then suspend everything so every open
    // billing session closes and the oracle sees the complete log.
    if violations
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_empty()
    {
        sim.run_until(sim.now() + 2 * HOUR_MS);
        for &id in &ids {
            let _ = sim.alter_warehouse(id, WarehouseCommand::Suspend, ActionSource::External);
        }
        let _: SimTime = sim.run_to_completion();
    }

    {
        let seen = violations.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(v) = seen.first() {
            return Err(CaseFailure {
                kind: FailureKind::Invariant,
                message: format!("{v} (+{} more)", seen.len() - 1),
            });
        }
    }
    let final_violations = Validator::check_account(sim.account(), sim.now());
    if let Some(v) = final_violations.first() {
        return Err(CaseFailure {
            kind: FailureKind::Invariant,
            message: format!("final state: {v}"),
        });
    }

    let report = oracle::check_account(sim.account());
    if !report.is_clean() {
        return Err(CaseFailure {
            kind: FailureKind::OracleDivergence,
            message: format!(
                "max |diff| {:.3e}, first: {:?}",
                report.max_abs_diff,
                report.divergences.first()
            ),
        });
    }

    stats.events_processed = sim.processed_events();
    stats.completed_queries = sim.account().query_records().len();
    stats.total_credits = sim.account().ledger().total_credits();
    Ok(stats)
}

/// Drives the durable control plane's persistence decoders with the raw
/// genome bytes. The decoders advertise totality — arbitrary input yields a
/// value or an error, never a panic — and this probe holds them to it on
/// every fuzz case: the frame scanner over the whole genome, the
/// record/snapshot decoders over the genome itself, and the record decoder
/// again over each checksum-valid payload the scanner recovered.
pub fn probe_persist_decoders(bytes: &[u8]) -> Result<(), CaseFailure> {
    catch_unwind(AssertUnwindSafe(|| {
        let scan = keebo::scan_frames(bytes);
        assert!(
            scan.valid_bytes <= bytes.len(),
            "frame scanner overran its input"
        );
        for payload in &scan.payloads {
            let _ = keebo::persist::decode_record(payload);
        }
        let _ = keebo::persist::decode_record(bytes);
        let _ = keebo::persist::decode_snapshot(bytes);
    }))
    .map_err(|payload| {
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        CaseFailure {
            kind: FailureKind::Panic,
            message: format!("persist decoder panicked on genome bytes: {message}"),
        }
    })
}

/// Drives [`keebo::StoreFaultPlan::from_genome`] and a [`keebo::RemoteKvStore`]
/// under the decoded plan with the raw genome bytes. Three contracts, all
/// checked under `catch_unwind` so any panic becomes a shrinkable failure:
///
/// 1. genome decode is total and deterministic, and the advertised rate
///    caps hold for any input;
/// 2. the store is atomic under injected faults: a failed append stores
///    nothing, a failed snapshot replaces nothing — a simple in-probe model
///    (surviving appends, last landed snapshot) must match `load` exactly;
/// 3. a faulted `load` is always `ErrorKind::TimedOut` (the only injected
///    read failure), never corruption.
pub fn probe_store_fault_plan(bytes: &[u8]) -> Result<(), CaseFailure> {
    catch_unwind(AssertUnwindSafe(|| {
        use keebo::{RemoteKvStore, StateStore, StoreFaultPlan};
        let plan = StoreFaultPlan::from_genome(bytes);
        assert!(plan.append_error_ppm <= 120_000, "append cap violated");
        assert!(plan.snapshot_error_ppm <= 500_000, "snapshot cap violated");
        assert!(plan.read_timeout_ppm <= 200_000, "read cap violated");
        assert!(plan.latency_us <= 5_000, "latency cap violated");
        assert_eq!(
            plan,
            StoreFaultPlan::from_genome(bytes),
            "genome decode must be deterministic"
        );

        let mut store = RemoteKvStore::new(plan);
        let mut model_wal: Vec<Vec<u8>> = Vec::new();
        let mut model_snapshot: Option<Vec<u8>> = None;
        for (i, chunk) in bytes.chunks(5).enumerate().take(64) {
            match chunk[0] % 4 {
                0 | 1 => {
                    let payload = vec![chunk[0], i as u8, 0xAB];
                    if store.append(&payload).is_ok() {
                        model_wal.push(payload);
                    }
                }
                2 => {
                    let snap = vec![i as u8; 1 + (chunk[0] as usize % 9)];
                    if store.write_snapshot(&snap).is_ok() {
                        model_snapshot = Some(snap);
                        model_wal.clear();
                    }
                }
                _ => match store.load() {
                    Ok(contents) => {
                        assert_eq!(contents.records, model_wal, "WAL diverged from model");
                        assert_eq!(
                            contents.snapshot, model_snapshot,
                            "snapshot diverged from model"
                        );
                        assert_eq!(contents.truncated_bytes, 0, "remote WAL never tears");
                    }
                    Err(e) => assert_eq!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut,
                        "only injected timeouts may fail a load"
                    ),
                },
            }
            assert_eq!(
                store.wal_records(),
                model_wal.len() as u64,
                "record count diverged from model"
            );
        }
    }))
    .map_err(|payload| {
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        CaseFailure {
            kind: FailureKind::Panic,
            message: format!("store fault-plan probe failed on genome bytes: {message}"),
        }
    })
}

/// [`run_case`] with panics converted into [`FailureKind::Panic`] failures.
pub fn run_case_catching(case: &FuzzCase) -> Result<CaseStats, CaseFailure> {
    match catch_unwind(AssertUnwindSafe(|| run_case(case))) {
        Ok(res) => res,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            Err(CaseFailure {
                kind: FailureKind::Panic,
                message,
            })
        }
    }
}

/// Byte-level shrinking core: chunk removal at halving granularity, then a
/// zeroing pass, keeping any candidate for which `still_fails` holds.
/// Bounded by `max_runs` predicate evaluations; fully deterministic, so the
/// same failing genome always shrinks to the same result.
pub fn shrink_with(
    bytes: &[u8],
    mut still_fails: impl FnMut(&[u8]) -> bool,
    max_runs: usize,
) -> Vec<u8> {
    let mut runs = 0usize;
    let mut cur = bytes.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i + chunk <= cur.len() {
            if runs >= max_runs {
                return cur;
            }
            let mut cand = cur.clone();
            cand.drain(i..i + chunk);
            runs += 1;
            if still_fails(&cand) {
                cur = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    for i in 0..cur.len() {
        if runs >= max_runs {
            break;
        }
        if cur[i] == 0 {
            continue;
        }
        let mut cand = cur.clone();
        cand[i] = 0;
        runs += 1;
        if still_fails(&cand) {
            cur = cand;
        }
    }
    cur
}

/// Shrinks a failing genome against the real pipeline: a candidate is kept
/// only while decode → run still fails with the same [`FailureKind`].
pub fn shrink_bytes(seed: u64, bytes: &[u8], kind: FailureKind, cfg: &FuzzConfig) -> Vec<u8> {
    shrink_with(
        bytes,
        |candidate| {
            matches!(
                run_case_catching(&decode(seed, candidate, cfg)),
                Err(f) if f.kind == kind
            )
        },
        cfg.max_shrink_runs,
    )
}

/// Runs one seed end to end: generate → decode → run → shrink on failure.
pub fn fuzz_one(seed: u64, cfg: &FuzzConfig) -> Result<CaseStats, FailureReport> {
    let bytes = generate_bytes(seed, cfg.bytes_per_case);
    if let Err(failure) = probe_persist_decoders(&bytes) {
        // Shrink against the probe alone: the simulator pipeline is not
        // involved in a decoder panic.
        let shrunk = shrink_with(
            &bytes,
            |candidate| probe_persist_decoders(candidate).is_err(),
            cfg.max_shrink_runs,
        );
        return Err(FailureReport {
            seed,
            kind: format!("{:?}", failure.kind),
            message: failure.message,
            original_len: bytes.len(),
            shrunk_len: shrunk.len(),
            shrunk_bytes_hex: to_hex(&shrunk),
            shrunk_case: "<persist decoder probe>".to_string(),
        });
    }
    if let Err(failure) = probe_store_fault_plan(&bytes) {
        // Likewise self-contained: shrink against the store probe alone.
        let shrunk = shrink_with(
            &bytes,
            |candidate| probe_store_fault_plan(candidate).is_err(),
            cfg.max_shrink_runs,
        );
        return Err(FailureReport {
            seed,
            kind: format!("{:?}", failure.kind),
            message: failure.message,
            original_len: bytes.len(),
            shrunk_len: shrunk.len(),
            shrunk_bytes_hex: to_hex(&shrunk),
            shrunk_case: "<store fault-plan probe>".to_string(),
        });
    }
    let case = decode(seed, &bytes, cfg);
    match run_case_catching(&case) {
        Ok(stats) => Ok(stats),
        Err(failure) => {
            let shrunk = shrink_bytes(seed, &bytes, failure.kind, cfg);
            let shrunk_case = decode(seed, &shrunk, cfg);
            // Re-run the shrunk case for the final message (it may differ
            // in detail from the original while keeping the same kind).
            let message = match run_case_catching(&shrunk_case) {
                Err(f) => f.message,
                Ok(_) => failure.message,
            };
            Err(FailureReport {
                seed,
                kind: format!("{:?}", failure.kind),
                message,
                original_len: bytes.len(),
                shrunk_len: shrunk.len(),
                shrunk_bytes_hex: to_hex(&shrunk),
                shrunk_case: format!("{shrunk_case:?}"),
            })
        }
    }
}

/// Fuzzes `cases` consecutive seeds starting at `start_seed`.
pub fn run_campaign(start_seed: u64, cases: usize, cfg: &FuzzConfig) -> CampaignReport {
    let mut report = CampaignReport {
        start_seed,
        ..CampaignReport::default()
    };
    for i in 0..cases {
        match fuzz_one(start_seed + i as u64, cfg) {
            Ok(stats) => {
                report.ops_applied += stats.ops_applied;
                report.events_processed += stats.events_processed;
                report.completed_queries += stats.completed_queries;
            }
            Err(failure) => report.failures.push(failure),
        }
        report.cases += 1;
    }
    report.failure_count = report.failures.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_is_total_on_arbitrary_bytes() {
        let cfg = FuzzConfig::default();
        for seed in 0..50u64 {
            let bytes = generate_bytes(seed, 64);
            let case = decode(seed, &bytes, &cfg);
            assert!(!case.configs.is_empty());
            for c in &case.configs {
                c.validate().expect("decoded config must be valid");
            }
        }
        // Degenerate genomes decode too.
        let empty = decode(0, &[], &cfg);
        assert_eq!(empty.configs.len(), 1);
        assert!(empty.ops.is_empty());
        let ones = decode(1, &[0xff; 7], &cfg);
        assert_eq!(ones.configs.len(), 2);
    }

    #[test]
    fn same_seed_same_case() {
        let cfg = FuzzConfig::default();
        let a = decode(9, &generate_bytes(9, cfg.bytes_per_case), &cfg);
        let b = decode(9, &generate_bytes(9, cfg.bytes_per_case), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn passing_cases_report_stats() {
        let cfg = FuzzConfig::default();
        let mut total_ops = 0;
        for seed in 0..10u64 {
            let case = decode(seed, &generate_bytes(seed, cfg.bytes_per_case), &cfg);
            let stats = run_case(&case)
                .unwrap_or_else(|f| panic!("seed {seed} failed: {:?} {}", f.kind, f.message));
            total_ops += stats.ops_applied;
        }
        assert!(total_ops > 0, "cases decoded to actual operations");
    }

    #[test]
    fn persist_decoder_probe_is_clean_on_genomes() {
        for seed in 0..200u64 {
            let bytes = generate_bytes(seed, 256);
            probe_persist_decoders(&bytes).expect("decoders are total on genome bytes");
        }
        probe_persist_decoders(&[]).expect("decoders are total on empty input");
        probe_persist_decoders(&[0xff; 512]).expect("decoders are total on saturated input");
    }

    #[test]
    fn store_fault_plan_probe_is_clean_on_genomes() {
        for seed in 0..200u64 {
            let bytes = generate_bytes(seed, 256);
            probe_store_fault_plan(&bytes).expect("faulty store must stay atomic and total");
        }
        probe_store_fault_plan(&[]).expect("probe is total on empty input");
        probe_store_fault_plan(&[0xff; 512]).expect("probe is total on saturated input");
    }

    #[test]
    fn shrinker_minimizes_synthetic_failure() {
        // Stand-in failure predicate pinned through the real pipeline: a
        // panic inside the runner is simulated by shrinking against a case
        // known to fail. We emulate one by asserting the shrinker respects
        // the kind filter — a case that never fails shrinks to itself.
        let cfg = FuzzConfig::default();
        let bytes = generate_bytes(3, 48);
        let out = shrink_bytes(3, &bytes, FailureKind::Panic, &cfg);
        assert_eq!(out, bytes, "healthy case must not shrink");
    }
}
