//! Scenario helpers for metamorphic relations.
//!
//! A metamorphic relation transforms a workload in a way with a known
//! effect on cost or latency (shift time → identical bill; add load →
//! queue waits cannot shrink; …) and checks the simulator honors it. The
//! relations themselves live in `tests/metamorphic.rs`; this module holds
//! the shared scenario runner so tests and the fuzz bin stay thin.
//!
//! Two relations from the obvious folklore list are *false* in a simulator
//! with caches and billing minimums, and are deliberately tested only on
//! conditioned workload families (see DESIGN.md "Verification"):
//!
//! * "Raising auto-suspend never decreases credits" fails in general: a
//!   longer timeout keeps the cache warm (queries run faster, sessions end
//!   sooner) and merges short sessions (two 60 s minimums can cost more
//!   than one merged ~90 s session). It holds for cache-insensitive
//!   workloads whose busy periods exceed the 60 s minimum.
//! * "Queue waits are monotone under added load" fails in general: an
//!   added early query can pay the resume delay that a later query would
//!   otherwise have paid, and cache warming from added work speeds
//!   everyone up. It holds for cache-insensitive single-cluster workloads
//!   on a warehouse that is already running and never suspends.

use cdw_sim::{
    Account, ActionSource, HourlyCredits, QuerySpec, SimTime, Simulator, WarehouseCommand,
    WarehouseConfig,
};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Everything a metamorphic relation compares between two runs.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Closed-session credits for the warehouse.
    pub total_credits: f64,
    /// Hourly buckets for the warehouse.
    pub hourly: HourlyCredits,
    /// Highest concurrent running-cluster count observed at any event.
    pub peak_clusters: u32,
    /// (query id, queued ms) for every completed query.
    pub queue_waits: Vec<(u64, SimTime)>,
    /// Completed query count.
    pub completed: usize,
}

/// Runs one warehouse named `M` through `queries`, then suspends it and
/// drains so every billing session closes. `resume_at_start` issues an
/// explicit `Resume` at t=0 (used by relations that must exclude resume
/// timing from the comparison).
pub fn run_scenario(
    config: WarehouseConfig,
    queries: &[QuerySpec],
    horizon: SimTime,
    resume_at_start: bool,
) -> ScenarioResult {
    let mut acc = Account::new();
    let wh = acc.create_warehouse("M", config);
    let mut sim = Simulator::new(acc);
    // Atomic rather than Cell: the hook slot is `Send` (shards migrate
    // across fleet pool workers); this scenario itself is single-threaded.
    let peak: Arc<AtomicU32> = Arc::default();
    let sink = Arc::clone(&peak);
    sim.set_post_event_hook(move |account, _| {
        for id in account.warehouse_ids() {
            let running = account.warehouse(id).running_clusters();
            // lint: allow(D11) — peak tracker in a single-threaded scenario; nothing synchronizes on it
            sink.fetch_max(running, Ordering::Relaxed);
        }
    });
    if resume_at_start {
        sim.alter_warehouse(wh, WarehouseCommand::Resume, ActionSource::External)
            // lint: allow(D5) — verification harness must abort loudly on a broken premise
            .expect("resume from suspended");
    }
    for q in queries {
        sim.submit_query(wh, q.clone());
    }
    sim.run_until(horizon);
    let _ = sim.alter_warehouse(wh, WarehouseCommand::Suspend, ActionSource::External);
    sim.run_to_completion();

    let account = sim.account();
    let hourly = account.ledger().warehouse("M");
    let mut queue_waits: Vec<(u64, SimTime)> = account
        .query_records()
        .iter()
        .map(|r| (r.query_id, r.start - r.arrival))
        .collect();
    queue_waits.sort_unstable();
    ScenarioResult {
        total_credits: hourly.total(),
        hourly,
        // lint: allow(D11) — reading the single-threaded peak tracker back out
        peak_clusters: peak.load(Ordering::Relaxed),
        queue_waits,
        completed: account.query_records().len(),
    }
}

/// Shifts every query's arrival by `offset_ms`, keeping ids and work.
pub fn shift_queries(queries: &[QuerySpec], offset_ms: SimTime) -> Vec<QuerySpec> {
    queries
        .iter()
        .map(|q| {
            let mut s = q.clone();
            s.arrival += offset_ms;
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{WarehouseSize, HOUR_MS};

    #[test]
    fn scenario_runner_closes_all_sessions() {
        let queries: Vec<QuerySpec> = (0..5)
            .map(|i| {
                QuerySpec::builder(i)
                    .work_ms_xs(20_000.0)
                    .arrival_ms(i * 60_000)
                    .build()
            })
            .collect();
        let cfg = WarehouseConfig::new(WarehouseSize::XSmall).with_auto_suspend_secs(600);
        let r = run_scenario(cfg, &queries, HOUR_MS, false);
        assert_eq!(r.completed, 5);
        assert!(r.total_credits > 0.0);
        assert!(r.peak_clusters >= 1);
        assert_eq!(r.queue_waits.len(), 5);
    }
}
