//! Simulator verification subsystem.
//!
//! Every number the workspace reports — replay-based cost estimates, RL
//! rewards, savings invoices — rests on `cdw-sim`'s Snowflake semantics.
//! This crate checks those semantics from the outside, three ways:
//!
//! 1. **Differential billing oracle** ([`oracle`]): an independent
//!    reference implementation of per-second/60 s-minimum/hourly-bucketed
//!    billing replayed over the exact session log a simulation produced,
//!    required to agree with the ledger to 1e-9.
//! 2. **Invariant checker** ([`invariants`]): structural invariants
//!    evaluated after every simulator event via the post-event hook, plus
//!    metamorphic scenario helpers ([`metamorphic`]) for relations like
//!    time-translation invariance.
//! 3. **Structured fuzzer** ([`fuzz`]): a no-dependency, seed-driven
//!    generator of interleaved ALTER/query/advance sequences driven through
//!    the public API, checked against the validator and the oracle, with
//!    byte-level shrinking on failure. The bench crate exposes it as the
//!    `fuzz` bin (`--smoke` in CI).

pub mod fuzz;
pub mod invariants;
pub mod metamorphic;
pub mod oracle;
pub mod rng;

pub use fuzz::{
    decode, fuzz_one, generate_bytes, run_campaign, run_case, run_case_catching, shrink_bytes,
    shrink_with, CampaignReport, CaseFailure, CaseStats, FailureKind, FailureReport, FuzzCase,
    FuzzConfig, FuzzOp,
};
pub use invariants::{InvariantKind, Validator, Violation};
pub use metamorphic::{run_scenario, shift_queries, ScenarioResult};
pub use oracle::{
    check_account, check_ledger, diff_warehouse, reference_hours, OracleDivergence, OracleReport,
    ORACLE_TOLERANCE,
};
pub use rng::{from_hex, to_hex, SplitMix64};
