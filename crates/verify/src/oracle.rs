//! Differential billing oracle.
//!
//! A slow, obviously-correct reference implementation of Snowflake billing —
//! per-second accrual, the 60-second minimum per cluster start, hourly
//! bucketing, resize-mid-session (a resize closes the old-rate session and
//! opens a new one, so the oracle only ever sees single-rate sessions), and
//! multi-cluster (one session per cluster start) — replayed over the exact
//! session log a simulation produced ([`cdw_sim::SessionRecord`]).
//!
//! The oracle shares nothing with the production path but the price sheet:
//! it re-derives the per-second rate from `credits_per_hour`, re-implements
//! the ceiling division, and attributes hours by explicit `[lo, hi)` overlap
//! instead of walking slice boundaries. Agreement must be within
//! [`ORACLE_TOLERANCE`] per hour bucket and per warehouse total.

use cdw_sim::{Account, BillingLedger, HourlyCredits, SessionRecord, SimTime};
use keebo_obs::Counter;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Maximum tolerated |ledger − oracle| per hour bucket and per total.
pub const ORACLE_TOLERANCE: f64 = 1e-9;

const HOUR_MS: SimTime = 3_600_000;
const MIN_SECS: u64 = 60;

fn divergence_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| keebo_obs::global().counter("verify.oracle.divergence"))
}

fn checks_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| keebo_obs::global().counter("verify.oracle.checks"))
}

/// One disagreement between the ledger and the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleDivergence {
    pub warehouse: String,
    /// Hour bucket in disagreement, or `None` for the warehouse total.
    pub hour: Option<u64>,
    pub ledger: f64,
    pub oracle: f64,
}

/// Outcome of replaying a full ledger through the oracle.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    pub warehouses: usize,
    pub sessions: usize,
    pub max_abs_diff: f64,
    pub divergences: Vec<OracleDivergence>,
}

impl OracleReport {
    /// True when every bucket and total agreed within tolerance.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Billable seconds for a session duration: ceiling to whole seconds.
/// Deliberately written as explicit quotient/remainder rather than reusing
/// `cdw_sim::time::ms_to_billing_seconds`.
fn ceil_secs(dur_ms: SimTime) -> u64 {
    dur_ms / 1_000 + u64::from(!dur_ms.is_multiple_of(1_000))
}

/// Credits one session bills in total: per-second accrual with the
/// 60-second minimum per cluster start.
fn session_total(s: &SessionRecord) -> f64 {
    let rate = s.size.credits_per_hour() / 3_600.0;
    ceil_secs(s.end - s.start).max(MIN_SECS) as f64 * rate
}

/// Reference hourly attribution for a session log: for each session, the
/// sub-60 s top-up lands in the start hour; every hour overlapped bills its
/// raw overlap seconds except the last, which absorbs the partial-second
/// round-up so the session total is exact.
pub fn reference_hours(sessions: &[SessionRecord]) -> BTreeMap<u64, f64> {
    let mut hours: BTreeMap<u64, f64> = BTreeMap::new();
    for s in sessions {
        debug_assert!(s.end >= s.start, "inverted session in log");
        let rate = s.size.credits_per_hour() / 3_600.0;
        let billed_secs = ceil_secs(s.end - s.start);
        if billed_secs < MIN_SECS {
            *hours.entry(s.start / HOUR_MS).or_insert(0.0) +=
                (MIN_SECS - billed_secs) as f64 * rate;
        }
        if s.end == s.start {
            continue;
        }
        let first = s.start / HOUR_MS;
        let last = (s.end - 1) / HOUR_MS;
        let mut attributed = 0.0;
        for h in first..=last {
            let lo = s.start.max(h * HOUR_MS);
            let hi = s.end.min((h + 1) * HOUR_MS);
            let secs = if h == last {
                billed_secs as f64 - attributed
            } else {
                (hi - lo) as f64 / 1_000.0
            };
            *hours.entry(h).or_insert(0.0) += secs * rate;
            attributed += secs;
        }
    }
    hours
}

/// Diffs one warehouse's ledger buckets against the oracle's recomputation
/// of its session log, appending divergences to `report`.
pub fn diff_warehouse(
    warehouse: &str,
    ledger_hours: &HourlyCredits,
    sessions: &[SessionRecord],
    report: &mut OracleReport,
) {
    let oracle = reference_hours(sessions);
    let mut seen: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    for (h, c) in ledger_hours.iter() {
        seen.entry(h).or_insert((0.0, 0.0)).0 = c;
    }
    for (&h, &c) in &oracle {
        seen.entry(h).or_insert((0.0, 0.0)).1 = c;
    }
    for (h, (ledger, oracle)) in seen {
        let diff = (ledger - oracle).abs();
        report.max_abs_diff = report.max_abs_diff.max(diff);
        if diff > ORACLE_TOLERANCE {
            report.divergences.push(OracleDivergence {
                warehouse: warehouse.to_string(),
                hour: Some(h),
                ledger,
                oracle,
            });
        }
    }
    // Independent total: per-session credits summed directly, bypassing the
    // hourly attribution entirely.
    let direct_total: f64 = sessions.iter().map(session_total).sum();
    let ledger_total = ledger_hours.total();
    let diff = (ledger_total - direct_total).abs();
    report.max_abs_diff = report.max_abs_diff.max(diff);
    if diff > ORACLE_TOLERANCE {
        report.divergences.push(OracleDivergence {
            warehouse: warehouse.to_string(),
            hour: None,
            ledger: ledger_total,
            oracle: direct_total,
        });
    }
    report.sessions += sessions.len();
    report.warehouses += 1;
}

/// Replays every warehouse's session log in `ledger` and diffs the result
/// against the recorded hourly buckets. Divergences are also counted in the
/// `verify.oracle.divergence` metric.
pub fn check_ledger(ledger: &BillingLedger) -> OracleReport {
    checks_counter().inc();
    let mut report = OracleReport::default();
    let names: Vec<String> = ledger.warehouse_names().map(str::to_string).collect();
    for name in names {
        let hours = ledger.warehouse_ref(&name).cloned().unwrap_or_default();
        diff_warehouse(&name, &hours, ledger.sessions(&name), &mut report);
    }
    if !report.divergences.is_empty() {
        for _ in &report.divergences {
            divergence_counter().inc();
        }
    }
    report
}

/// Convenience: oracle check over a simulated account's ledger.
pub fn check_account(account: &Account) -> OracleReport {
    check_ledger(account.ledger())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::WarehouseSize;

    fn rec(size: WarehouseSize, start: SimTime, end: SimTime) -> SessionRecord {
        SessionRecord { size, start, end }
    }

    #[test]
    fn reference_matches_ledger_on_handcrafted_sessions() {
        // Resize-mid-session shows up as two back-to-back single-rate
        // sessions; multi-cluster as overlapping ones.
        let sessions = vec![
            rec(WarehouseSize::XSmall, 0, 10_000),            // sub-minimum
            rec(WarehouseSize::Small, 1_800_000, 5_400_000),  // crosses hour 0→1
            rec(WarehouseSize::Small, 5_400_000, 7_200_123),  // resized continuation
            rec(WarehouseSize::Medium, 1_805_500, 1_900_250), // overlapping cluster
            rec(WarehouseSize::X4Large, 3 * HOUR_MS, 3 * HOUR_MS), // zero duration
        ];
        let mut ledger = BillingLedger::new();
        for s in &sessions {
            ledger.record_session("W", s.size, s.start, s.end);
        }
        let mut report = OracleReport::default();
        diff_warehouse(
            "W",
            &ledger.warehouse("W"),
            ledger.sessions("W"),
            &mut report,
        );
        assert!(report.is_clean(), "divergences: {:?}", report.divergences);
        assert!(report.max_abs_diff <= ORACLE_TOLERANCE);
        assert_eq!(report.sessions, sessions.len());
    }

    #[test]
    fn oracle_detects_tampered_attribution() {
        // Hours built from one log, diffed against a different log: the
        // oracle must notice both the bucket and the total disagreement.
        let mut ledger = BillingLedger::new();
        ledger.record_session("W", WarehouseSize::Small, 0, 2 * HOUR_MS);
        let wrong_log = vec![rec(WarehouseSize::Small, 0, HOUR_MS)];
        let mut report = OracleReport::default();
        diff_warehouse("W", &ledger.warehouse("W"), &wrong_log, &mut report);
        assert!(!report.is_clean());
        assert!(report.divergences.iter().any(|d| d.hour.is_none()));
        assert!(report.divergences.iter().any(|d| d.hour == Some(1)));
    }

    #[test]
    fn empty_ledger_is_clean() {
        let report = check_ledger(&BillingLedger::new());
        assert!(report.is_clean());
        assert_eq!(report.warehouses, 0);
    }

    #[test]
    fn ceil_secs_matches_spec() {
        assert_eq!(ceil_secs(0), 0);
        assert_eq!(ceil_secs(1), 1);
        assert_eq!(ceil_secs(999), 1);
        assert_eq!(ceil_secs(1_000), 1);
        assert_eq!(ceil_secs(1_001), 2);
        assert_eq!(ceil_secs(59_999), 60);
    }
}
