//! Metamorphic invariant checker.
//!
//! [`Validator::check_account`] evaluates structural invariants of a
//! simulated account that must hold at every event boundary — the simulator
//! settles each event's full cascade (drain, scale-out, idle bookkeeping)
//! before the post-event hook fires, so the hook always observes a quiescent
//! state. The checks are deliberately cheap (linear in warehouses + open
//! clusters) so the fuzzer can run them after every one of millions of
//! events; the expensive billing cross-check lives in [`crate::oracle`].
//!
//! Invariant catalogue (see DESIGN.md "Verification"):
//! * **I1 finite billing** — every ledger bucket (warehouses + overhead) is
//!   finite and non-negative; open-session accrual likewise.
//! * **I2 suspended quiescence** — a Suspended or Resuming warehouse holds
//!   no clusters and no running queries; Suspended additionally holds no
//!   queued queries.
//! * **I3 cluster bounds** — at most 10 clusters ever (the config hard
//!   cap); above `max_clusters` only while surplus clusters are still busy
//!   draining (a max shrink never kills running queries); at least
//!   `min_clusters` whenever Running.
//! * **I4 telemetry order** — query records respect
//!   `arrival ≤ start ≤ end`; event records and closed billing sessions
//!   carry non-decreasing timestamps bounded by the clock.
//! * **I5 queue sanity** — queued queries imply the warehouse is not
//!   Suspended (a suspended warehouse either resumes or drops on submit).

use cdw_sim::{Account, SimTime, Simulator, WarehouseState};
use keebo_obs::Counter;
use std::sync::OnceLock;

/// Hard cap on clusters per warehouse (mirrors config validation).
const MAX_CLUSTERS_EVER: u32 = 10;

fn violation_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| keebo_obs::global().counter("verify.invariant.violation"))
}

/// Which invariant failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    NonFiniteCredits,
    SuspendedActivity,
    ClusterBounds,
    TelemetryOrder,
    QueueSanity,
}

/// One invariant violation observed at an event boundary.
#[derive(Debug, Clone)]
pub struct Violation {
    pub at: SimTime,
    pub warehouse: String,
    pub kind: InvariantKind,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[t={} wh={}] {:?}: {}",
            self.at, self.warehouse, self.kind, self.detail
        )
    }
}

/// Stateless invariant checker over a simulated account.
#[derive(Debug, Clone, Copy, Default)]
pub struct Validator;

impl Validator {
    /// Evaluates every invariant, returning all violations found (empty on
    /// a healthy account). Violations are also counted in the
    /// `verify.invariant.violation` metric.
    pub fn check_account(account: &Account, now: SimTime) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut push = |at, warehouse: &str, kind, detail: String| {
            out.push(Violation {
                at,
                warehouse: warehouse.to_string(),
                kind,
                detail,
            });
        };

        for id in account.warehouse_ids() {
            let w = account.warehouse(id);
            let name = w.name();
            let cfg = w.config();
            let running = w.running_clusters();
            let starting = w.starting_clusters();
            let total = running + starting;

            match w.state() {
                WarehouseState::Suspended => {
                    if total != 0 || w.running_queries() != 0 || w.queued_queries() != 0 {
                        push(
                            now,
                            name,
                            InvariantKind::SuspendedActivity,
                            format!(
                                "suspended with {total} clusters, {} running, {} queued",
                                w.running_queries(),
                                w.queued_queries()
                            ),
                        );
                    }
                }
                WarehouseState::Resuming { .. } => {
                    if total != 0 || w.running_queries() != 0 {
                        push(
                            now,
                            name,
                            InvariantKind::SuspendedActivity,
                            format!(
                                "resuming with {total} clusters, {} running queries",
                                w.running_queries()
                            ),
                        );
                    }
                }
                WarehouseState::Running => {
                    if total < cfg.min_clusters {
                        push(
                            now,
                            name,
                            InvariantKind::ClusterBounds,
                            format!("{total} clusters below min {}", cfg.min_clusters),
                        );
                    }
                }
            }

            if total > MAX_CLUSTERS_EVER {
                push(
                    now,
                    name,
                    InvariantKind::ClusterBounds,
                    format!("{total} clusters above the hard cap"),
                );
            }
            // A max shrink leaves busy surplus clusters draining, so the
            // configured maximum only binds once no query is running.
            if total > cfg.max_clusters && w.running_queries() == 0 {
                push(
                    now,
                    name,
                    InvariantKind::ClusterBounds,
                    format!(
                        "{total} clusters above max {} with no queries draining",
                        cfg.max_clusters
                    ),
                );
            }

            if w.queued_queries() > 0 && w.state() == WarehouseState::Suspended {
                push(
                    now,
                    name,
                    InvariantKind::QueueSanity,
                    format!("{} queries queued while suspended", w.queued_queries()),
                );
            }

            let open = w.open_session_credits(now);
            if !(open.is_finite() && open >= 0.0) {
                push(
                    now,
                    name,
                    InvariantKind::NonFiniteCredits,
                    format!("open-session accrual {open}"),
                );
            }
        }

        // Ledger: every bucket finite and non-negative; session log ordered.
        let ledger = account.ledger();
        let names: Vec<String> = ledger.warehouse_names().map(str::to_string).collect();
        for name in &names {
            if let Some(hours) = ledger.warehouse_ref(name) {
                for (h, c) in hours.iter() {
                    if !(c.is_finite() && c >= 0.0) {
                        push(
                            now,
                            name,
                            InvariantKind::NonFiniteCredits,
                            format!("hour {h} holds {c} credits"),
                        );
                    }
                }
            }
            let mut prev_end = 0;
            for s in ledger.sessions(name) {
                if s.end < s.start || s.end > now || s.end < prev_end {
                    push(
                        now,
                        name,
                        InvariantKind::TelemetryOrder,
                        format!(
                            "session [{}, {}) out of order (prev end {prev_end}, now {now})",
                            s.start, s.end
                        ),
                    );
                }
                prev_end = s.end;
            }
        }
        for (h, c) in ledger.overhead().iter() {
            if !(c.is_finite() && c >= 0.0) {
                push(
                    now,
                    "<overhead>",
                    InvariantKind::NonFiniteCredits,
                    format!("hour {h} holds {c} credits"),
                );
            }
        }

        for r in account.query_records() {
            if !(r.arrival <= r.start && r.start <= r.end && r.end <= now) {
                push(
                    now,
                    &r.warehouse,
                    InvariantKind::TelemetryOrder,
                    format!(
                        "query {} times arrival={} start={} end={}",
                        r.query_id, r.arrival, r.start, r.end
                    ),
                );
            }
        }
        let mut prev_at = 0;
        for e in account.event_records() {
            if e.at < prev_at || e.at > now {
                push(
                    now,
                    &e.warehouse,
                    InvariantKind::TelemetryOrder,
                    format!("event at {} after {} (now {now})", e.at, prev_at),
                );
            }
            prev_at = e.at;
        }

        for _ in &out {
            violation_counter().inc();
        }
        out
    }

    /// Installs a post-event hook that panics on the first violation,
    /// listing every failed invariant. Use in tests and the fuzzer where a
    /// violation must abort the run.
    pub fn install_panicking(sim: &mut Simulator) {
        sim.set_post_event_hook(|account, now| {
            let violations = Self::check_account(account, now);
            assert!(
                violations.is_empty(),
                "invariant violations:\n{}",
                violations
                    .iter()
                    .map(Violation::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        });
    }

    /// Debug-gated variant: validates after every event in debug builds,
    /// does nothing in release builds (zero overhead in benchmarks).
    pub fn install_debug(sim: &mut Simulator) {
        if cfg!(debug_assertions) {
            Self::install_panicking(sim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdw_sim::{QuerySpec, WarehouseConfig, WarehouseSize, HOUR_MS};

    #[test]
    fn healthy_run_has_no_violations() {
        let mut acc = Account::new();
        let wh = acc.create_warehouse(
            "V",
            WarehouseConfig::new(WarehouseSize::XSmall)
                .with_clusters(1, 3)
                .with_max_concurrency(1)
                .with_auto_suspend_secs(120),
        );
        let mut sim = Simulator::new(acc);
        Validator::install_panicking(&mut sim);
        for i in 0..20 {
            sim.submit_query(
                wh,
                QuerySpec::builder(i)
                    .work_ms_xs(5_000.0 + 1_000.0 * i as f64)
                    .arrival_ms(i * 30_000)
                    .build(),
            );
        }
        sim.run_until(2 * HOUR_MS);
        let final_violations = Validator::check_account(sim.account(), sim.now());
        assert!(final_violations.is_empty(), "{final_violations:?}");
    }

    #[test]
    fn install_debug_is_safe_on_healthy_runs() {
        let mut acc = Account::new();
        let wh = acc.create_warehouse("V", WarehouseConfig::new(WarehouseSize::Small));
        let mut sim = Simulator::new(acc);
        Validator::install_debug(&mut sim);
        sim.submit_query(wh, QuerySpec::builder(1).work_ms_xs(2_000.0).build());
        sim.run_until(HOUR_MS);
        assert_eq!(sim.account().query_records().len(), 1);
    }
}
