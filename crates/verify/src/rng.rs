//! A tiny self-contained PRNG so the fuzzer has no dependencies.
//!
//! SplitMix64 (Steele, Lea & Flood 2014): a 64-bit counter run through a
//! mixing finalizer. It is not cryptographic, but it is fast, passes BigCrush
//! for this use, and — crucially for a fuzzer — its output is a pure function
//! of the seed, so every generated case is reproducible from a single `u64`.

/// Deterministic seed-driven generator; the whole fuzzer's randomness.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero. Modulo bias is
    /// irrelevant at fuzzer bounds (all far below 2^32).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Fills a byte buffer; the fuzzer's raw genome.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let w = self.next_u64();
            for i in 0..8 {
                if out.len() == len {
                    break;
                }
                out.push((w >> (8 * i)) as u8);
            }
        }
        out
    }
}

/// Lowercase hex encoding (repro artifacts embed case bytes as hex).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`to_hex`]; `None` on malformed input.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Reference value for seed 1234567 (pins the algorithm itself).
        let mut r = SplitMix64::new(1_234_567);
        let first = r.next_u64();
        assert_ne!(first, 0);
        let mut r2 = SplitMix64::new(1_234_568);
        assert_ne!(first, r2.next_u64(), "adjacent seeds decorrelate");
    }

    #[test]
    fn hex_round_trips() {
        let mut r = SplitMix64::new(7);
        let bytes = r.bytes(33);
        assert_eq!(bytes.len(), 33);
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert!(from_hex("0g").is_none());
        assert!(from_hex("abc").is_none());
    }
}
