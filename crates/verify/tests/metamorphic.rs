//! Metamorphic relations over the simulator.
//!
//! Each test transforms a workload in a way with a provable effect on the
//! bill or on latencies and checks the simulator honors it. Two folklore
//! relations are false in general (cache warming and the 60 s billing
//! minimum both create legitimate counterexamples); those are tested on
//! conditioned families, and one counterexample is pinned as its own test
//! so the caveat stays documented in executable form. See DESIGN.md
//! "Verification".

use cdw_sim::{QuerySpec, ScalingPolicy, SimTime, WarehouseConfig, WarehouseSize, HOUR_MS};
use verify::{run_scenario, shift_queries, SplitMix64};

const TOL: f64 = 1e-9;

/// Cache-insensitive queries with seeded jitter in work and spacing.
fn jittered_queries(seed: u64, count: u64, base_gap_ms: u64, work_ms: f64) -> Vec<QuerySpec> {
    let mut rng = SplitMix64::new(seed);
    let mut t = 0u64;
    (0..count)
        .map(|i| {
            t += base_gap_ms + rng.next_below(base_gap_ms / 2 + 1);
            QuerySpec::builder(i)
                .work_ms_xs(work_ms + rng.next_below(20_000) as f64)
                .cache_affinity(0.0)
                .arrival_ms(t)
                .build()
        })
        .collect()
}

#[test]
fn time_translation_by_whole_hours_shifts_buckets_exactly() {
    let queries = jittered_queries(1, 24, 4 * 60_000, 45_000.0);
    let cfg = WarehouseConfig::new(WarehouseSize::Small)
        .with_clusters(1, 2)
        .with_auto_suspend_secs(120);
    let base = run_scenario(cfg.clone(), &queries, 6 * HOUR_MS, false);
    let k: u64 = 5;
    let shifted = run_scenario(
        cfg,
        &shift_queries(&queries, k * HOUR_MS),
        (6 + k) * HOUR_MS,
        false,
    );
    assert_eq!(base.completed, shifted.completed);
    assert!(
        (base.total_credits - shifted.total_credits).abs() <= TOL,
        "totals {} vs {}",
        base.total_credits,
        shifted.total_credits
    );
    // Whole-hour translation: bucket h maps exactly to bucket h + k.
    let base_hours: Vec<(u64, f64)> = base.hourly.iter().collect();
    let shifted_hours: Vec<(u64, f64)> = shifted.hourly.iter().collect();
    assert_eq!(base_hours.len(), shifted_hours.len());
    for ((h0, c0), (h1, c1)) in base_hours.iter().zip(&shifted_hours) {
        assert_eq!(h0 + k, *h1, "bucket alignment");
        assert!((c0 - c1).abs() <= TOL, "hour {h0}: {c0} vs {c1}");
    }
}

#[test]
fn time_translation_by_arbitrary_offset_preserves_totals() {
    // Sub-hour shifts redistribute credits across hour buckets, but session
    // durations are shift-invariant, so the total bill is unchanged.
    let queries = jittered_queries(2, 18, 3 * 60_000, 30_000.0);
    let cfg = WarehouseConfig::new(WarehouseSize::Medium).with_auto_suspend_secs(90);
    let base = run_scenario(cfg.clone(), &queries, 4 * HOUR_MS, false);
    let offset = 37 * 60_000 + 123;
    let shifted = run_scenario(cfg, &shift_queries(&queries, offset), 5 * HOUR_MS, false);
    assert_eq!(base.completed, shifted.completed);
    assert!(
        (base.total_credits - shifted.total_credits).abs() <= TOL,
        "totals {} vs {}",
        base.total_credits,
        shifted.total_credits
    );
}

#[test]
fn raising_auto_suspend_never_cheaper_on_conditioned_family() {
    // Conditioned family where monotonicity is provable: cache-insensitive
    // work (no warm-cache speedups), busy periods well above the 60 s
    // minimum (no top-up merging), single cluster, and inter-arrival gaps
    // chosen so the short timeout suspends on every gap while the long one
    // never suspends. The long timeout then bills every full gap; the short
    // one bills only its timeout per gap.
    for seed in 0..5u64 {
        let queries = jittered_queries(seed, 12, 200_000, 95_000.0);
        let horizon = queries.last().unwrap().arrival + HOUR_MS;
        let mk = |auto_secs: u64| {
            WarehouseConfig::new(WarehouseSize::XSmall)
                .with_clusters(1, 1)
                .with_auto_suspend_secs(auto_secs)
        };
        let short = run_scenario(mk(60), &queries, horizon, false);
        let long = run_scenario(mk(3_600), &queries, horizon, false);
        assert_eq!(short.completed, long.completed);
        assert!(
            long.total_credits >= short.total_credits - TOL,
            "seed {seed}: long timeout billed {} < short {}",
            long.total_credits,
            short.total_credits
        );
    }
}

#[test]
fn raising_auto_suspend_can_be_cheaper_sixty_second_minimum_counterexample() {
    // Pinned counterexample to the unconditioned folklore relation: two
    // 5 s queries 40 s apart. A 30 s timeout yields two sessions, each
    // topped up to the 60 s minimum (120 s billed); a 70 s timeout merges
    // them into one ~113 s session. The larger timeout is cheaper.
    let q = |id, at: SimTime| {
        QuerySpec::builder(id)
            .work_ms_xs(5_000.0)
            .cache_affinity(0.0)
            .arrival_ms(at)
            .build()
    };
    let queries = vec![q(1, 0), q(2, 40_000)];
    let mk = |auto_secs: u64| {
        WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(1, 1)
            .with_auto_suspend_secs(auto_secs)
    };
    let short = run_scenario(mk(30), &queries, HOUR_MS, false);
    let long = run_scenario(mk(70), &queries, HOUR_MS, false);
    assert!(
        long.total_credits < short.total_credits - TOL,
        "expected the counterexample to hold: long {} vs short {}",
        long.total_credits,
        short.total_credits
    );
}

#[test]
fn economy_never_bills_more_clusters_than_standard() {
    // Economy's scale-out condition (≥ 6 min of queued work) is strictly
    // harder than Standard's (any queueing), so on the same trace Economy's
    // peak concurrent cluster count cannot exceed Standard's. Pinned on a
    // spread of seeded bursty traces covering both light and heavy load.
    for seed in 0..8u64 {
        let mut rng = SplitMix64::new(seed);
        let burst = 4 + rng.next_below(10);
        let mut queries = Vec::new();
        let mut id = 0;
        for b in 0..4u64 {
            let t0 = b * 20 * 60_000;
            for i in 0..burst {
                queries.push(
                    QuerySpec::builder(id)
                        .work_ms_xs(60_000.0 + rng.next_below(120_000) as f64)
                        .cache_affinity(0.0)
                        .arrival_ms(t0 + i * 500)
                        .build(),
                );
                id += 1;
            }
        }
        let mk = |policy| {
            WarehouseConfig::new(WarehouseSize::XSmall)
                .with_clusters(1, 4)
                .with_policy(policy)
                .with_max_concurrency(1)
                .with_auto_suspend_secs(300)
        };
        let std_run = run_scenario(mk(ScalingPolicy::Standard), &queries, 3 * HOUR_MS, false);
        let eco_run = run_scenario(mk(ScalingPolicy::Economy), &queries, 3 * HOUR_MS, false);
        assert_eq!(std_run.completed, eco_run.completed);
        assert!(
            eco_run.peak_clusters <= std_run.peak_clusters,
            "seed {seed}: economy peaked at {} clusters vs standard {}",
            eco_run.peak_clusters,
            std_run.peak_clusters
        );
    }
}

#[test]
fn queue_waits_monotone_under_added_load_on_conditioned_family() {
    // Conditioned family where added load can only delay: single cluster,
    // one slot, cache-insensitive work, warehouse resumed up front and
    // never suspending (so added queries cannot pay the resume delay on a
    // base query's behalf, nor warm the cache for it). FIFO work
    // conservation then makes every base query's queue wait weakly larger.
    let base_queries = jittered_queries(9, 15, 45_000, 40_000.0);
    let mut added = base_queries.clone();
    let mut rng = SplitMix64::new(10);
    for i in 0..10u64 {
        added.push(
            QuerySpec::builder(1_000 + i)
                .work_ms_xs(15_000.0 + rng.next_below(30_000) as f64)
                .cache_affinity(0.0)
                .arrival_ms(rng.next_below(base_queries.last().unwrap().arrival))
                .build(),
        );
    }
    let cfg = || {
        let mut c = WarehouseConfig::new(WarehouseSize::XSmall)
            .with_clusters(1, 1)
            .with_max_concurrency(1);
        c.auto_suspend_ms = 0; // never suspend
        c
    };
    let horizon = 4 * HOUR_MS;
    let base = run_scenario(cfg(), &base_queries, horizon, true);
    let loaded = run_scenario(cfg(), &added, horizon, true);
    assert_eq!(base.completed, base_queries.len());
    assert_eq!(loaded.completed, added.len());
    for (id, wait) in &base.queue_waits {
        let (_, loaded_wait) = loaded
            .queue_waits
            .iter()
            .find(|(lid, _)| lid == id)
            .expect("base query present in loaded run");
        assert!(
            loaded_wait >= wait,
            "query {id}: wait shrank from {wait} to {loaded_wait} under added load"
        );
    }
}
