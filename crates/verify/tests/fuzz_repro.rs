//! Fuzzer determinism and smoke guarantees.
//!
//! Reproducibility is the contract that makes a fuzz failure actionable:
//! the same seed must expand to the same genome, decode to the same command
//! sequence, produce the same verdict, and shrink to the same minimized
//! genome. The generator output for one seed is pinned byte-for-byte so
//! silent drift in the PRNG or decoder fails loudly here.

use verify::{
    decode, generate_bytes, run_campaign, run_case_catching, shrink_with, to_hex, FuzzConfig,
    FuzzOp,
};

#[test]
fn same_seed_same_genome_same_sequence() {
    let cfg = FuzzConfig::default();
    for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
        let a = generate_bytes(seed, cfg.bytes_per_case);
        let b = generate_bytes(seed, cfg.bytes_per_case);
        assert_eq!(a, b, "seed {seed}: genome not reproducible");
        let ca = decode(seed, &a, &cfg);
        let cb = decode(seed, &b, &cfg);
        assert_eq!(ca, cb, "seed {seed}: decode not reproducible");
        // The verdict is a pure function of the case.
        let ra = run_case_catching(&ca).map(|s| (s.ops_applied, s.events_processed));
        let rb = run_case_catching(&cb).map(|s| (s.ops_applied, s.events_processed));
        assert_eq!(
            ra.as_ref().ok(),
            rb.as_ref().ok(),
            "seed {seed}: verdict not reproducible"
        );
    }
}

#[test]
fn generator_output_is_pinned_for_seed_42() {
    // Byte-for-byte pin of the first 16 genome bytes for seed 42. If this
    // fails, the PRNG or its seeding changed and every recorded repro
    // artifact in the wild is invalidated — bump deliberately or not at all.
    let bytes = generate_bytes(42, 16);
    assert_eq!(to_hex(&bytes), PINNED_SEED_42_HEX, "SplitMix64 drifted");
}

// Computed once from the reference SplitMix64; see rng.rs.
const PINNED_SEED_42_HEX: &str = "956eeb2f2632d7bd03f166b233e3ef28";

#[test]
fn shrinking_is_deterministic_and_minimizing() {
    // Drive the byte-level shrinker with a synthetic failure predicate
    // through the real decoder: "the decoded case still contains at least
    // two Submit ops and one Suspend/Resume alter". The shrinker must be
    // deterministic, must preserve the predicate, and must actually shrink.
    let cfg = FuzzConfig::default();
    let seed = 7u64;
    let bytes = generate_bytes(seed, cfg.bytes_per_case);
    let predicate = |candidate: &[u8]| {
        let case = decode(seed, candidate, &cfg);
        let submits = case
            .ops
            .iter()
            .filter(|o| matches!(o, FuzzOp::Submit { .. }))
            .count();
        let alters = case
            .ops
            .iter()
            .filter(|o| matches!(o, FuzzOp::Alter { .. }))
            .count();
        submits >= 2 && alters >= 1
    };
    assert!(
        predicate(&bytes),
        "seed must satisfy the predicate unshrunk"
    );
    let a = shrink_with(&bytes, predicate, 10_000);
    let b = shrink_with(&bytes, predicate, 10_000);
    assert_eq!(a, b, "shrinking not deterministic");
    assert!(predicate(&a), "shrunk genome no longer fails");
    assert!(
        a.len() < bytes.len(),
        "shrinker failed to reduce the genome"
    );
    // 1-minimality for chunk removal: dropping any single byte breaks it.
    for i in 0..a.len() {
        let mut cand = a.clone();
        cand.remove(i);
        assert!(
            !predicate(&cand),
            "byte {i} of the shrunk genome is removable"
        );
    }
}

#[test]
fn smoke_campaign_runs_clean() {
    // Mirrors the CI `fuzz --smoke` gate at reduced scale: a block of
    // seeds disjoint from the 1000-schedule oracle test, zero failures.
    let report = run_campaign(5_000, 64, &FuzzConfig::default());
    assert_eq!(report.cases, 64);
    assert_eq!(
        report.failure_count,
        0,
        "failures: {:?}",
        report
            .failures
            .iter()
            .map(|f| (f.seed, f.kind.clone()))
            .collect::<Vec<_>>()
    );
    assert!(report.ops_applied > 0);
    assert!(report.events_processed > 0);
}
