//! Pinned differential-oracle guarantees.
//!
//! The headline test replays 1000 seeded randomized schedules through the
//! full pipeline (structured decode → simulate with per-event invariant
//! checks → differential billing oracle) and pins the fact that the ledger
//! and the oracle agree to 1e-9 on every hour bucket and every total, with
//! zero invariant violations. Development surfaced no divergence, so per
//! the issue this test pins that fact; any future billing change that
//! breaks agreement fails here with the offending seed.

use cdw_sim::{
    Account, ActionSource, Simulator, WarehouseCommand, WarehouseConfig, WarehouseSize, DAY_MS,
    HOUR_MS,
};
use costmodel::{ReplayConfig, WarehouseCostModel};
use verify::{check_account, decode, generate_bytes, run_case, FuzzConfig, ORACLE_TOLERANCE};
use workload::{generate_trace, AdhocWorkload, BiWorkload, EtlWorkload, WorkloadGenerator};

#[test]
fn oracle_agrees_on_1000_seeded_randomized_schedules() {
    let cfg = FuzzConfig::default();
    for seed in 0..1000u64 {
        let case = decode(seed, &generate_bytes(seed, cfg.bytes_per_case), &cfg);
        if let Err(f) = run_case(&case) {
            panic!("seed {seed}: {:?}: {}", f.kind, f.message);
        }
    }
}

#[test]
fn oracle_agrees_on_workload_archetype_traces() {
    let generators: [(&str, Box<dyn WorkloadGenerator>); 3] = [
        ("bi", Box::new(BiWorkload::default())),
        ("etl", Box::new(EtlWorkload::default())),
        ("adhoc", Box::new(AdhocWorkload::default())),
    ];
    for (name, g) in generators {
        let queries = generate_trace(g.as_ref(), 0, 2 * DAY_MS, 7);
        let mut acc = Account::new();
        let wh = acc.create_warehouse(
            "W",
            WarehouseConfig::new(WarehouseSize::Small)
                .with_clusters(1, 3)
                .with_auto_suspend_secs(300),
        );
        let mut sim = Simulator::new(acc);
        for q in queries {
            sim.submit_query(wh, q);
        }
        sim.run_until(2 * DAY_MS + HOUR_MS);
        let _ = sim.alter_warehouse(wh, WarehouseCommand::Suspend, ActionSource::External);
        sim.run_to_completion();
        let report = check_account(sim.account());
        assert!(
            report.is_clean(),
            "{name}: oracle divergence {:?}",
            report.divergences
        );
        assert!(report.sessions > 0, "{name}: no sessions recorded");
        assert!(report.max_abs_diff <= ORACLE_TOLERANCE);
    }
}

/// Cross-check of the cost model's replay arithmetic: its hourly
/// attribution must sum to its credit estimate within oracle tolerance,
/// with every bucket finite and non-negative, on records from a real run.
#[test]
fn replay_hourly_attribution_is_internally_consistent() {
    let queries = generate_trace(&BiWorkload::default(), 0, 2 * DAY_MS, 11);
    let mut acc = Account::new();
    let wh = acc.create_warehouse(
        "W",
        WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(600),
    );
    let mut sim = Simulator::new(acc);
    for q in queries {
        sim.submit_query(wh, q);
    }
    sim.run_until(2 * DAY_MS + HOUR_MS);
    let records = sim.account().query_records().to_vec();
    assert!(!records.is_empty());

    let outcome = WarehouseCostModel::default().replay(
        &records,
        &ReplayConfig {
            original: WarehouseConfig::new(WarehouseSize::Small).with_auto_suspend_secs(600),
            window_start: 0,
            window_end: 2 * DAY_MS,
        },
    );
    let diff = (outcome.hourly.total() - outcome.estimated_credits).abs();
    assert!(
        diff <= ORACLE_TOLERANCE,
        "hourly total {} vs estimate {}",
        outcome.hourly.total(),
        outcome.estimated_credits
    );
    for (h, c) in outcome.hourly.iter() {
        assert!(c.is_finite() && c >= 0.0, "hour {h} holds {c}");
    }
}
