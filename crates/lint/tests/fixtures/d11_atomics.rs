// lint-fixture: crates/core/src/fixture_atomics.rs
//! Atomics-ordering fixture (D11). `Ordering::Relaxed` gives no
//! happens-before edge: fine for a write-only statistics counter, wrong
//! for any flag or cursor another thread's reads are ordered against.
//! Outside the obs registry, Relaxed needs an inline justification.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

// Bad: a work-stealing cursor read with Relaxed — consumers can observe
// the bump before the slot write it is supposed to publish.
pub fn bad_relaxed_cursor(next: &AtomicUsize) -> usize {
    next.fetch_add(1, Ordering::Relaxed) //~ D11
}

// Ok: acquire/release pairs order the flag against the data it guards.
pub fn ok_release_store(done: &AtomicBool) {
    done.store(true, Ordering::Release);
}

pub fn ok_acquire_load(done: &AtomicBool) -> bool {
    done.load(Ordering::Acquire)
}

// Ok: a monotonic stats counter that nothing synchronizes on, justified.
pub fn ok_justified_counter(hits: &AtomicU64) {
    // lint: allow(D11) — write-only stats counter, never read for control flow
    hits.fetch_add(1, Ordering::Relaxed);
}

// Trap: `std::cmp::Ordering` is not the atomics enum — comparing values
// relaxedly is a pun the rule must not fall for.
pub fn ok_cmp_ordering(a: u64, b: u64) -> bool {
    matches!(a.cmp(&b), std::cmp::Ordering::Equal)
}
