// lint-fixture: crates/core/src/fixture_d2.rs
//! D2 no-ambient-rng: true positives and false-positive traps.

pub fn bad_thread_rng() {
    let mut _rng = rand::thread_rng(); //~ D2
}

pub fn bad_from_entropy() {
    let _rng = rand::rngs::StdRng::from_entropy(); //~ D2
}

pub fn bad_rand_random() -> f64 {
    rand::random() //~ D2
}

// Trap: a similarly named local identifier is not the ambient constructor.
pub fn ok_similar_names(thread_rng_calls: u64) -> u64 {
    thread_rng_calls + 1
}

// Trap: `thread_rng()` inside a doc comment must not fire.
/// Never use `thread_rng()` here; derive from `derive_stream_seed` instead.
pub fn ok_doc_mention() {}

pub fn ok_string_mention() -> &'static str {
    "thread_rng() and from_entropy() are banned"
}

#[cfg(test)]
mod tests {
    #[test]
    fn trap_tests_may_use_ambient_rng() {
        let _ = rand::thread_rng();
    }
}
