// lint-fixture: crates/core/src/fixture_fp.rs
//! Pure false-positive traps: every banned pattern appears below only in a
//! lexical position where it is NOT code (strings, comments, doc comments)
//! or in test-only scope. This file must produce ZERO diagnostics — any
//! diagnostic here is reported by `--smoke` as unexpected.

// Trap: line comment — Instant::now(), thread_rng(), HashMap, x.unwrap(),
// credits == 0.0, secs as f64.

/* Trap: block comment — SystemTime::now(), from_entropy(), HashSet,
   x.expect("m"), panic!("boom"), /* nested: rand::random() */ still inside. */

/// Trap: doc comment — `Instant::now()`, `thread_rng()`, `HashMap::new()`,
/// `x.unwrap()`, `credits == 0.0`, `ms as u64`.
pub fn traps_in_docs() {}

pub fn traps_in_strings() -> String {
    let a = "Instant::now() thread_rng() HashMap x.unwrap() panic!(no)";
    let b = r#"SystemTime::now() from_entropy() HashSet y.expect("m")"#;
    let c = "credits == 0.0 || x != 1e-9";
    format!("{a}{b}{c}")
}

pub fn traps_in_char_literals() -> [char; 2] {
    // `'a'` must lex as a char literal, not start a lifetime that swallows
    // the rest of the line.
    ['a', '=']
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn traps_in_test_mod() {
        let t = Instant::now();
        let mut m: HashMap<u32, f64> = HashMap::new();
        m.insert(1, 0.5);
        assert!(m.get(&1).copied().unwrap() == 0.5);
        let _ = t.elapsed();
    }
}

#[cfg(test)]
fn trap_cfg_test_fn(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(all(test, feature = "slow-tests"))]
fn trap_cfg_all_test(x: Option<u32>) -> u32 {
    x.expect("gated to test builds")
}
