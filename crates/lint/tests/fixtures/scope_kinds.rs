// lint-fixture: crates/bench/src/bin/driver.rs
//! Rule scoping by file kind: the pretend path is a *binary* driver, where
//! D1 (wall clock) and D5 (panic paths) are tolerated — a CLI may read the
//! clock and abort — but determinism rules D2/D3/D4 still apply.

pub fn ok_bin_may_read_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn ok_bin_may_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_bin_ambient_rng() {
    let _rng = rand::thread_rng(); //~ D2
}

pub fn bad_bin_unordered() -> std::collections::HashMap<u32, u32> { //~ D3
    std::collections::HashMap::new() //~ D3
}

pub fn bad_bin_float_eq(x: f64) -> bool {
    x == 0.25 //~ D4
}
