// lint-fixture: crates/core/src/fixture_locks.rs
//! Lock-ordering fixture (D8). Two functions of the same crate acquiring
//! `state` and `queue` in opposite orders put a cycle in the static
//! Mutex-acquisition graph; the consistent third function rides the
//! sanctioned global order and adds no back-edge.

use std::sync::{Mutex, MutexGuard, PoisonError};

pub struct Shards {
    state: Mutex<u64>,
    queue: Mutex<u64>,
    stats: Mutex<u64>,
}

/// Crate-local lock wrapper: returns a `MutexGuard`, so the index treats
/// calls to it as acquisitions.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// Bad: takes state before queue here...
pub fn bad_forward(s: &Shards) -> u64 {
    let state = lock(&s.state);
    let queue = lock(&s.queue);
    *state + *queue
}

// ...and queue before state here. Together: a deadlock-shaped cycle. The
// one finding anchors at the edge whose held lock sorts first (queue).
pub fn bad_reverse(s: &Shards) -> u64 {
    let queue = lock(&s.queue);
    let state = lock(&s.state); //~ D8
    *queue - *state
}

// Ok: same pair, same order as `bad_forward` — reinforces an existing edge
// without closing a cycle. `stats` hangs off the end of the global order.
pub fn ok_global_order(s: &Shards) -> u64 {
    let state = lock(&s.state);
    let queue = lock(&s.queue);
    let stats = lock(&s.stats);
    *state + *queue + *stats
}

// Ok: dropping the first guard before taking the "wrong-order" lock means
// nothing is held across the acquisition — no edge, no cycle.
pub fn ok_drop_between(s: &Shards) -> u64 {
    let stats = lock(&s.stats);
    let total = *stats;
    drop(stats);
    let state = lock(&s.state);
    total + *state
}
