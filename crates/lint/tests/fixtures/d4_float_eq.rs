// lint-fixture: crates/core/src/fixture_d4.rs
//! D4 no-float-eq: true positives and false-positive traps.

pub fn bad_eq_zero(credits: f64) -> bool {
    credits == 0.0 //~ D4
}

pub fn bad_neq_epsilon(x: f64) -> bool {
    x != 1e-9 //~ D4
}

pub fn bad_literal_left(y: f64) -> bool {
    0.5 == y //~ D4
}

pub fn bad_negative_literal(x: f64) -> bool {
    x == -1.0 //~ D4
}

pub fn bad_f64_constant(x: f64) -> bool {
    x == f64::INFINITY //~ D4
}

// Trap: integer equality is exact and fine.
pub fn ok_int_eq(n: u64) -> bool {
    n == 0
}

// Trap: ordering comparisons against float literals are fine.
pub fn ok_ordering(n: f64) -> bool {
    n <= 0.5 && n >= -0.5 && n < 1.0
}

// Trap: bit-pattern comparison is the sanctioned exact check.
pub fn ok_bitwise(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

#[cfg(test)]
mod tests {
    #[test]
    fn trap_tests_may_compare_floats_exactly() {
        assert!(super::ok_bitwise(0.25, 0.25));
        let x = 0.5f64;
        assert!(x == 0.5);
    }
}
