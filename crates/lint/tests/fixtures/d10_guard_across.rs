// lint-fixture: crates/core/src/fixture_guard.rs
//! Guard-across-boundary fixture (D10). A live `MutexGuard` must not span
//! a user callback, a `catch_unwind`, or a channel send: callbacks can
//! re-enter the lock (deadlock), `catch_unwind` can observe poisoned
//! state, and a blocking send turns the critical section unbounded.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::{Mutex, PoisonError};

// Bad: the slot guard is still live when the job runs under catch_unwind.
pub fn bad_unwind_boundary(slot: &Mutex<u64>, job: fn() -> u64) -> u64 {
    let mut held = slot.lock().unwrap_or_else(PoisonError::into_inner);
    let out = catch_unwind(AssertUnwindSafe(job)).unwrap_or(0); //~ D10
    *held = out;
    out
}

// Bad: invoking a caller-supplied closure while holding the lock — the
// callback can call back into this module and self-deadlock.
pub fn bad_callback_under_lock(slot: &Mutex<u64>, on_change: impl Fn(u64)) {
    let held = slot.lock().unwrap_or_else(PoisonError::into_inner);
    on_change(*held); //~ D10
}

// Bad: a channel send can block on a full queue; the lock is held for as
// long as the receiver dawdles.
pub fn bad_send_under_lock(slot: &Mutex<u64>, tx: &Sender<u64>) {
    let held = slot.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = tx.send(*held); //~ D10
}

// Ok: copy the value out in a tight scope, then cross the boundaries with
// no guard live.
pub fn ok_copy_then_notify(slot: &Mutex<u64>, on_change: impl Fn(u64), tx: &Sender<u64>) {
    let value = { *slot.lock().unwrap_or_else(PoisonError::into_inner) };
    on_change(value);
    let _ = tx.send(value);
}

// Ok: explicit drop before the unwind boundary.
pub fn ok_drop_before_unwind(slot: &Mutex<u64>, job: fn() -> u64) -> u64 {
    let held = slot.lock().unwrap_or_else(PoisonError::into_inner);
    let snapshot = *held;
    drop(held);
    catch_unwind(AssertUnwindSafe(job)).unwrap_or(snapshot)
}
