// lint-fixture: crates/core/src/fixture_not_test.rs
//! `#[cfg(not(test))]` and `#[cfg_attr(...)]` items are live code: the test
//! exemption must NOT extend to them.

#[cfg(not(test))]
pub fn bad_not_test_is_live(x: Option<u32>) -> u32 {
    x.unwrap() //~ D5
}

#[cfg_attr(feature = "strict", deny(warnings))]
pub fn bad_cfg_attr_is_live() {
    let _rng = rand::thread_rng(); //~ D2
}

// An attribute on a braceless item must not leak test scope onto what
// follows it.
#[cfg(test)]
use std::time::Instant as TestOnlyInstant;

pub fn bad_after_braceless_test_import() -> std::time::Instant {
    std::time::Instant::now() //~ D1
}
