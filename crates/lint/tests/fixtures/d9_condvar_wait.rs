// lint-fixture: crates/core/src/fixture_condvar.rs
//! Condvar fixture (D9). `Condvar::wait` returning is *not* proof the
//! predicate holds — spurious wakeups and stolen wakeups are both legal —
//! so every wait must sit inside a predicate loop (or use `wait_while`,
//! which re-checks internally).

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

pub struct Gate {
    ready: Mutex<bool>,
    cv: Condvar,
}

// Bad: a single wait guarded by `if` — a spurious wakeup sails straight
// through with `ready` still false.
pub fn bad_single_wait(g: &Gate) {
    let mut ready = g.ready.lock().unwrap_or_else(PoisonError::into_inner);
    if !*ready {
        ready = g.cv.wait(ready).unwrap_or_else(PoisonError::into_inner); //~ D9
    }
    *ready = false;
}

// Bad: `wait_timeout` has the same contract — the timeout result does not
// excuse skipping the predicate re-check.
pub fn bad_wait_timeout(g: &Gate) -> bool {
    let ready = g.ready.lock().unwrap_or_else(PoisonError::into_inner);
    let (ready, timeout) = g
        .cv
        .wait_timeout(ready, Duration::from_millis(50)) //~ D9
        .unwrap_or_else(PoisonError::into_inner);
    *ready && !timeout.timed_out()
}

// Ok: the canonical predicate loop.
pub fn ok_predicate_loop(g: &Gate) {
    let mut ready = g.ready.lock().unwrap_or_else(PoisonError::into_inner);
    while !*ready {
        ready = g.cv.wait(ready).unwrap_or_else(PoisonError::into_inner);
    }
    *ready = false;
}

// Ok: `wait_while` owns the re-check, so no enclosing loop is needed.
pub fn ok_wait_while(g: &Gate) {
    let guard = g.ready.lock().unwrap_or_else(PoisonError::into_inner);
    let mut ready = g
        .cv
        .wait_while(guard, |r| !*r)
        .unwrap_or_else(PoisonError::into_inner);
    *ready = false;
}
