// lint-fixture: crates/bench/src/bin/fixture_d7.rs
//! D7 durable-io: true positives and false-positive traps. The pretend path
//! is binary code (so D5, which bans every unwrap in library code, stays
//! out of the way and the markers isolate D7): io results must be handled
//! or routed through the StateStore / bench::report helpers even in bins.

use std::fs::{self, File};
use std::io::Write;

pub fn bad_unwrap_open(path: &str) -> File {
    File::open(path).unwrap() //~ D7
}

pub fn bad_expect_write(path: &str, data: &str) {
    fs::write(path, data).expect("write report"); //~ D7
}

pub fn bad_unwrap_write_all(f: &mut File, buf: &[u8]) {
    f.write_all(buf).unwrap(); //~ D7
}

pub fn bad_expect_nested_args(path: &str, a: u32, b: u32) {
    fs::write(path, format!("{}", a.max(b))).expect("w"); //~ D7
}

pub fn bad_dropped_write_result(f: &mut File, buf: &[u8]) {
    f.write_all(buf); //~ D7
}

pub fn bad_dropped_create(path: &str) {
    File::create(path); //~ D7
}

pub fn bad_dropped_fs_write(path: &str) {
    fs::write(path, "x"); //~ D7
}

// A justified allow suppresses the next line and produces no diagnostic.
pub fn ok_allowed(path: &str) {
    // lint: allow(D7) — scratch file in a doc example, failure is harmless
    fs::write(path, "x").unwrap();
}

// Trap: propagated or handled io must not fire.
pub fn ok_propagated(f: &mut File, buf: &[u8]) -> std::io::Result<()> {
    fs::write("a", "b")?;
    f.write_all(buf)?;
    let _probe = File::create("c");
    if fs::write("d", "e").is_err() {
        return f.write_all(b"fallback");
    }
    f.flush()
}

// Trap: lock-poison unwraps are not io (`read`/`write` only match
// `fs::`-qualified).
pub fn ok_lock_unwraps(lock: &std::sync::RwLock<u32>) -> u32 {
    let r = *lock.read().unwrap();
    *lock.write().unwrap() = r + 1;
    r
}

// Trap: non-io unwrap belongs to D5's jurisdiction, not D7's.
pub fn ok_non_io_unwrap(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

// Trap: `fs::write(..).unwrap()` in a comment or string must not fire.
pub fn ok_mentions() -> &'static str {
    "never fs::write(path, data).unwrap() outside the store"
}

#[cfg(test)]
mod tests {
    #[test]
    fn trap_tests_may_unwrap_io() {
        std::fs::write("/tmp/kwo-lint-d7-trap", "x").unwrap();
        std::fs::remove_file("/tmp/kwo-lint-d7-trap").unwrap();
    }
}
