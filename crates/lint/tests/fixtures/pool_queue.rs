// lint-fixture: crates/core/src/fixture_pool.rs
//! Worker-pool channel/queue code under the determinism D-rules: the
//! patterns the persistent fleet pool must *not* regress into. Queue
//! draining, condvar waits, and batch bookkeeping are all library code, so
//! wall-clock reads, unordered containers, and bare panic paths all fire.

use std::collections::{HashMap, VecDeque}; //~ D3
use std::sync::{Condvar, Mutex};
use std::time::Instant;

pub struct Queue {
    jobs: Mutex<VecDeque<u64>>,
    ready: Condvar,
}

// Bad: timing a queue wait off the wall clock — queue latency must come
// from histogram observation points, not decision-path clock reads.
pub fn bad_timed_pop(q: &Queue) -> (Option<u64>, f64) {
    let t0 = Instant::now(); //~ D1
    let job = q.jobs.lock().unwrap().pop_front(); //~ D5
    (job, t0.elapsed().as_secs_f64())
}

// Bad: per-worker stats keyed by an unordered map — draining it would
// iterate in hash order and poison any fold over the results.
pub fn bad_worker_stats() -> HashMap<usize, u64> { //~ D3
    HashMap::new() //~ D3
}

// Bad: unwrapping the condvar wait instead of recovering from poisoning —
// and waiting outside a predicate loop, so a spurious wakeup pops garbage.
pub fn bad_wait(q: &Queue) -> u64 {
    let guard = q.jobs.lock().unwrap(); //~ D5
    let mut guard = q.ready.wait(guard).unwrap(); //~ D5 D9
    guard.pop_front().expect("queue empty after wakeup") //~ D5
}

// The sanctioned shapes, mirroring `keebo::pool`: poisoning recovered
// explicitly, panics justified at the boundary where they are the only
// sane outcome.
pub fn ok_recovering_pop(q: &Queue) -> Option<u64> {
    let mut guard = q
        .jobs
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    guard.pop_front()
}

pub fn ok_justified_spawn_failure() {
    std::thread::Builder::new()
        .name("kwo-fixture".into())
        .spawn(|| {})
        // lint: allow(D5) — thread spawn failure at pool construction is unrecoverable setup error
        .expect("spawn worker");
}

// Trap: a doc comment narrating `Instant::now()` and `.unwrap()` in queue
// code must not fire.
/// Pops a job; never calls `Instant::now()` or `.unwrap()` on the lock.
pub fn ok_doc_mention(q: &Queue) -> bool {
    q.jobs
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .is_empty()
}
