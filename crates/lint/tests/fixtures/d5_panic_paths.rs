// lint-fixture: crates/core/src/fixture_d5.rs
//! D5 no-panic-paths: true positives, the allow-directive escape hatch, and
//! false-positive traps.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() //~ D5
}

pub fn bad_expect(x: Result<u32, String>) -> u32 {
    x.expect("must parse") //~ D5
}

pub fn bad_panic(kind: u8) -> u32 {
    match kind {
        0 => 1,
        _ => panic!("unreachable kind {kind}"), //~ D5
    }
}

// A justified allow suppresses the next line and produces no diagnostic.
pub fn ok_allowed(x: Option<u32>) -> u32 {
    // lint: allow(D5) — x is populated by the constructor, documented invariant
    x.unwrap()
}

// Trap: the non-panicking variants must not fire.
pub fn ok_fallbacks(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}

// Trap: `unwrap()` in a doc comment must not fire.
/// Prefer `unwrap_or` over `unwrap()` in library code.
pub fn ok_doc_mention() {}

// Trap: `panic!` inside a string must not fire.
pub fn ok_string_mention() -> &'static str {
    "never panic!(..) in the control loop"
}

#[cfg(test)]
mod tests {
    #[test]
    fn trap_tests_may_unwrap_and_panic() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        if v.is_none() {
            panic!("impossible");
        }
    }
}
