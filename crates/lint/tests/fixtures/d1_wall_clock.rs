// lint-fixture: crates/core/src/fixture_d1.rs
//! D1 no-wall-clock: true positives and false-positive traps.

use std::time::{Duration, Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now() //~ D1
}

pub fn bad_qualified() -> std::time::Instant {
    std::time::Instant::now() //~ D1
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now() //~ D1
}

// Trap: reading an *existing* Instant is fine — only the wall-clock read is
// banned.
pub fn ok_elapsed(start: Instant) -> Duration {
    start.elapsed()
}

// Trap: `Instant::now()` in this comment must not fire.
pub fn ok_comment_mention() {}

pub fn ok_string_mention() -> &'static str {
    "call Instant::now() at your peril"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_test_code_may_read_the_clock() {
        let _ = Instant::now();
        let _ = SystemTime::now();
    }
}
