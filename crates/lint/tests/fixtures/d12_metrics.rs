// lint-fixture: crates/core/src/fixture_metrics.rs
//! Metrics-inventory fixture (D12). Every `keebo.*` registration must be
//! in the inventory (here: `lint-inventory:` directives standing in for
//! DESIGN.md's table), kinds must agree with the documented row, and rows
//! with no surviving registration are stale.
// lint-inventory: keebo.fixture.ticks:counter, keebo.fixture.depth:gauge
// lint-inventory: keebo.fixture.retired:counter //~ D12

pub struct Registry;

// Ok: both registrations match their inventory rows exactly.
pub fn ok_documented(reg: &Registry) {
    reg.counter("keebo.fixture.ticks").inc();
    reg.gauge("keebo.fixture.depth").set(3.0);
}

// Ok: naming a documented metric outside a registration call claims no
// kind, so it cannot conflict.
pub fn ok_name_only() -> &'static str {
    "keebo.fixture.depth"
}

// Bad: registered but absent from the inventory.
pub fn bad_undocumented(reg: &Registry) {
    reg.histogram("keebo.fixture.wait_us").observe(9.0); //~ D12
}

// Bad: the inventory says `keebo.fixture.ticks` is a counter.
pub fn bad_kind_drift(reg: &Registry) {
    reg.gauge("keebo.fixture.ticks").set(1.0); //~ D12
}

// Trap: metric names minted inside test scope are the test's business.
#[cfg(test)]
mod tests {
    #[test]
    fn scratch_metric_is_ignored() {
        let _ = "keebo.fixture.test_only";
    }
}
