// lint-fixture: crates/core/src/fixture_d3.rs
//! D3 ordered-iteration: true positives and false-positive traps.

use std::collections::HashMap; //~ D3
use std::collections::{BTreeMap, BTreeSet};

pub fn bad_type_and_ctor() -> u64 {
    let m: HashMap<String, u64> = HashMap::new(); //~ D3 D3
    m.values().sum()
}

pub fn bad_hashset() -> usize {
    let s = std::collections::HashSet::from([1u32, 2, 3]); //~ D3
    s.len()
}

// Trap: ordered collections are the sanctioned replacement.
pub fn ok_btree() -> u64 {
    let m: BTreeMap<String, u64> = BTreeMap::new();
    let s: BTreeSet<u32> = BTreeSet::new();
    m.values().sum::<u64>() + s.len() as u64
}

// Trap: `HashMap` in this comment must not fire.
pub fn ok_comment_mention() -> &'static str {
    "HashMap iteration order is nondeterministic"
}

#[cfg(test)]
mod tests {
    #[test]
    fn trap_tests_may_use_hash_collections() {
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        assert!(m.is_empty());
    }
}
