// lint-fixture: crates/costmodel/src/fixture_d6.rs
//! D6 checked-casts: true positives and false-positive traps. The pretend
//! path sits under `crates/costmodel/src/`, one of the billing-precision
//! paths where bare `as u64` / `as f64` casts are banned.

pub fn bad_widen_to_f64(secs: u64) -> f64 {
    secs as f64 //~ D6
}

pub fn bad_narrow_to_u64(ms: f64) -> u64 {
    ms as u64 //~ D6
}

pub fn bad_chained(ms: u32) -> f64 {
    (ms as u64) as f64 //~ D6 D6
}

// Trap: casts to other widths are outside D6's scope (clippy covers them).
pub fn ok_other_widths(n: u64) -> usize {
    n as usize + (n as u32 as usize)
}

// Trap: `as f64` in a comment must not fire.
pub fn ok_comment_mention() -> &'static str {
    "write exact_f64(x) instead of x as f64"
}

#[cfg(test)]
mod tests {
    #[test]
    fn trap_tests_may_cast_bare() {
        let secs: u64 = 90;
        assert!((secs as f64) > 0.0);
    }
}
