//! Integration tests for the kwo-lint engine: the fixture corpus must agree
//! with its `//~ Dn` expectation markers, cover every rule, and the JSON
//! report must match the checked-in snapshot byte for byte.

use lint::{run_fixtures, to_json};
use std::path::Path;

fn fixtures_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
}

#[test]
fn fixture_corpus_agrees_with_markers() {
    let report = run_fixtures(fixtures_dir()).expect("fixture corpus readable");
    assert!(
        report.passed(),
        "missed: {:#?}\nunexpected: {:#?}",
        report.missed,
        report.unexpected
    );
    assert!(
        !report.diags.is_empty(),
        "corpus must contain true positives"
    );
}

#[test]
fn fixture_corpus_covers_every_rule() {
    let report = run_fixtures(fixtures_dir()).expect("fixture corpus readable");
    for rule in [
        "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10", "D11", "D12",
    ] {
        assert!(
            report.diags.iter().any(|d| d.rule == rule),
            "no fixture exercises {rule}"
        );
    }
}

#[test]
fn fixture_corpus_has_false_positive_traps() {
    // The trap files exist to prove the lexer/scope layers: they mention
    // every banned pattern in non-code positions and must stay diagnostic
    // free. Guard that they are still part of the corpus.
    for trap in ["fp_traps.rs", "scope_kinds.rs", "not_test_scope.rs"] {
        assert!(
            fixtures_dir().join(trap).is_file(),
            "trap fixture {trap} missing"
        );
    }
    let report = run_fixtures(fixtures_dir()).expect("fixture corpus readable");
    assert!(
        !report.diags.iter().any(|d| d.file == "fp_traps.rs"),
        "fp_traps.rs must produce zero diagnostics: {:#?}",
        report
            .diags
            .iter()
            .filter(|d| d.file == "fp_traps.rs")
            .collect::<Vec<_>>()
    );
}

#[test]
fn json_report_matches_snapshot() {
    let report = run_fixtures(fixtures_dir()).expect("fixture corpus readable");
    let got = to_json(&report.diags);
    let snap_path = fixtures_dir()
        .parent()
        .expect("tests dir")
        .join("snapshots/fixtures.json");
    let want = std::fs::read_to_string(&snap_path).expect("snapshot file readable");
    assert_eq!(
        got,
        want,
        "JSON report drifted from snapshot; regenerate with\n\
         `cargo run -p lint --bin kwo-lint -- --smoke --json {}`",
        snap_path.display()
    );
}

#[test]
fn json_report_is_wellformed() {
    // Cheap structural checks that hold for any corpus state, so snapshot
    // regeneration cannot silently break the consumer contract.
    let report = run_fixtures(fixtures_dir()).expect("fixture corpus readable");
    let json = to_json(&report.diags);
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"version\": 1"));
    assert!(json.contains(&format!("\"total\": {}", report.diags.len())));
    // One rendered entry per diagnostic.
    assert_eq!(json.matches("{\"rule\":").count(), report.diags.len());
}
