//! Lexer edge cases and a never-panic pin for the structural layer.
//!
//! The token matchers in `rules`/`index` only stay honest if the lexer gets
//! the weird corners of Rust's surface syntax right: raw strings that
//! contain quote characters, block comments that nest, lifetimes that look
//! like the start of a char literal, and byte-string flavors. Each case
//! here is a shape that once mis-lexed would either swallow real code or
//! mint phantom tokens for the rules to trip on.

use lint::build_structure;
use lint::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

fn lits(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Lit)
        .map(|t| t.text)
        .collect()
}

#[test]
fn raw_strings_swallow_quotes_and_hashes() {
    // The `"` inside the raw string must not terminate it early — otherwise
    // `Instant :: now` would leak out as idents and D1 would fire on a
    // string literal.
    let src = r####"let s = r#"says "Instant::now()" here"#; s.len();"####;
    assert_eq!(
        lits(src),
        vec![r###"r#"says "Instant::now()" here"#"###.to_string()]
    );
    assert!(!idents(src).contains(&"Instant".to_string()));

    // More hashes, and a raw string with zero hashes.
    let more = r####"let a = r##"one "# inside"##; let b = r"plain";"####;
    assert_eq!(lits(more).len(), 2);
}

#[test]
fn block_comments_nest() {
    // `/* /* */ */` — the inner close must not end the outer comment, or
    // the trailing `*/` turns into stray puncts and `hidden` leaks out.
    let src = "/* outer /* inner */ still comment */ let visible = 1;";
    let names = idents(src);
    assert_eq!(names, vec!["let".to_string(), "visible".to_string()]);

    // A marker-style comment inside a block comment is inert text.
    let lexed = lex("/* //~ D1 not a marker */ fn f() {}");
    assert!(lexed.markers.is_empty());
}

#[test]
fn lifetimes_are_not_char_literals() {
    // `'a` in `&'a str` is a lifetime; `'a'` is a char literal. Confusing
    // the two desynchronizes the lexer for the rest of the file.
    let src = "fn f<'a>(s: &'a str) -> char { 'a' }";
    let lexed = lex(src);
    let lifetimes: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a"]);
    let chars: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lit)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec!["'a'"]);

    // Escaped chars and loop labels round out the corner.
    let tricky = "let c = '\\''; 'outer: loop { break 'outer; }";
    let lexed = lex(tricky);
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Lit && t.text == "'\\''"));
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Lifetime && t.text == "'outer"));
}

#[test]
fn byte_strings_and_byte_chars_lex_as_literals() {
    let src = r####"let a = b"bytes"; let b = br#"raw "bytes""#; let c = b'x';"####;
    assert_eq!(
        lits(src),
        vec![
            r#"b"bytes""#.to_string(),
            r###"br#"raw "bytes""#"###.to_string(),
            "b'x'".to_string(),
        ]
    );
    // Byte strings are opaque to the metric audit: only plain strings have
    // readable content.
    for t in lex(src).tokens {
        if t.kind == TokKind::Lit {
            assert_eq!(t.str_content(), None, "{}", t.text);
        }
    }
}

#[test]
fn unterminated_input_does_not_hang_or_panic() {
    // Truncated files show up mid-edit; the lexer must terminate.
    for src in [
        "let s = \"unterminated",
        "let s = r#\"unterminated",
        "/* unterminated",
        "let c = 'x",
        "fn f() { let a = 1;",
    ] {
        let lexed = lex(src);
        let _ = build_structure(&lexed.tokens);
    }
}

/// The structural layer must never panic, whatever the corpus throws at it
/// — fixtures deliberately include every marker/directive shape and every
/// block kind the parser distinguishes.
#[test]
fn structure_never_panics_on_the_fixture_corpus() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("fixture dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("fixture read");
        let lexed = lex(&src);
        let structure = build_structure(&lexed.tokens);
        // Every token index must resolve to *some* enclosing answer without
        // panicking, including one past the end.
        for i in 0..=lexed.tokens.len() {
            let _ = structure.in_loop_within_body(i);
        }
        checked += 1;
    }
    assert!(checked >= 16, "expected the full corpus, saw {checked}");
}
