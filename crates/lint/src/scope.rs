//! Test-scope annotation over the token stream.
//!
//! Every rule exempts test-only code: `#[cfg(test)]` items, `#[test]`
//! functions, and the repo's `mod tests { ... }` idiom. The pass walks the
//! token stream once, tracking brace depth, and marks tokens inside a
//! test-scoped brace group with `in_test = true`. Attribute recognition is
//! token-based:
//!
//! * `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]` → test scope for
//!   the next brace-delimited item (or cleared at a `;` for statements);
//! * `#[cfg(not(test))]` is **not** test scope (the `not(` look-behind);
//! * `#[cfg_attr(...)]` never creates test scope (it conditions another
//!   attribute, not the item's compilation);
//! * `mod tests` / `mod test` → test scope for the following brace group.

use crate::lexer::Tok;

/// Marks tokens that belong to test-only code.
pub fn annotate_test_scope(tokens: &mut [Tok]) {
    // Stack of brace frames; `true` frames are test scope.
    let mut frames: Vec<bool> = Vec::new();
    // A test attribute (or `mod tests`) was seen; the next `{` at this
    // point opens a test frame. Cleared by `;` (attribute on a non-brace
    // statement like `#[cfg(test)] use x;`).
    let mut pending_test = false;

    let mut i = 0usize;
    while i < tokens.len() {
        let in_test_now = pending_test || frames.iter().any(|&t| t);
        tokens[i].in_test = in_test_now;

        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Scan the attribute's bracket group.
            let mut j = i + 1;
            let mut depth = 0usize;
            let attr_start = j;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                tokens[j].in_test = in_test_now;
                j += 1;
            }
            let attr = &tokens[attr_start..=j.min(tokens.len() - 1)];
            if attr_is_test(attr) {
                pending_test = true;
            }
            i = j + 1;
            continue;
        }

        if tokens[i].is_ident("mod")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.is_ident("tests") || t.is_ident("test"))
        {
            pending_test = true;
            tokens[i].in_test = true;
            if let Some(t) = tokens.get_mut(i + 1) {
                t.in_test = true;
            }
            i += 2;
            continue;
        }

        if tokens[i].is_punct('{') {
            frames.push(pending_test);
            pending_test = false;
            // The opening brace itself belongs to the scope it opens.
            tokens[i].in_test = frames.iter().any(|&t| t);
        } else if tokens[i].is_punct('}') {
            frames.pop();
        } else if tokens[i].is_punct(';') && frames.iter().all(|&t| !t) {
            // An attribute consumed by a braceless item at top level.
            pending_test = false;
        }
        i += 1;
    }
}

/// Does this attribute token group (contents between `[` and `]`) gate the
/// item to test builds?
fn attr_is_test(attr: &[Tok]) -> bool {
    // `cfg_attr` conditions another attribute, never the item itself.
    if attr.iter().any(|t| t.is_ident("cfg_attr")) {
        return false;
    }
    for (k, t) in attr.iter().enumerate() {
        if t.is_ident("test") {
            // Reject `not(test)`: ident `not` then `(` immediately before.
            let negated = k >= 2 && attr[k - 1].is_punct('(') && attr[k - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_flag_of(src: &str, ident: &str) -> bool {
        let mut lexed = lex(src);
        annotate_test_scope(&mut lexed.tokens);
        lexed
            .tokens
            .iter()
            .find(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("ident {ident} not found"))
            .in_test
    }

    #[test]
    fn cfg_test_mod_is_test_scope() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn helper() { target(); } }";
        assert!(test_flag_of(src, "target"));
        assert!(!test_flag_of(src, "lib"));
    }

    #[test]
    fn mod_tests_without_attr_is_test_scope() {
        let src = "mod tests { fn t() { target(); } } fn lib() { other(); }";
        assert!(test_flag_of(src, "target"));
        assert!(!test_flag_of(src, "other"));
    }

    #[test]
    fn test_fn_attribute_scopes_one_item() {
        let src = "#[test]\nfn t() { inside(); }\nfn lib() { outside(); }";
        assert!(test_flag_of(src, "inside"));
        assert!(!test_flag_of(src, "outside"));
    }

    #[test]
    fn cfg_not_test_is_not_test_scope() {
        let src = "#[cfg(not(test))]\nfn lib() { target(); }";
        assert!(!test_flag_of(src, "target"));
    }

    #[test]
    fn cfg_all_test_is_test_scope() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nfn t() { target(); }";
        assert!(test_flag_of(src, "target"));
    }

    #[test]
    fn attribute_on_statement_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { target(); }";
        assert!(!test_flag_of(src, "target"));
    }

    #[test]
    fn nested_braces_inside_test_stay_test() {
        let src = "#[cfg(test)]\nmod tests { fn t() { if x { deep(); } } }\nfn lib() { out(); }";
        assert!(test_flag_of(src, "deep"));
        assert!(!test_flag_of(src, "out"));
    }

    #[test]
    fn cfg_attr_does_not_create_test_scope() {
        let src = "#[cfg_attr(test, derive(Debug))]\nstruct S { }\nfn lib() { target(); }";
        assert!(!test_flag_of(src, "target"));
        // And the struct body itself is not test scope either.
        let mut lexed = lex(src);
        annotate_test_scope(&mut lexed.tokens);
        assert!(lexed.tokens.iter().all(|t| !t.in_test));
    }
}
