//! The lint driver: workspace walk, rule application, allow-directive
//! filtering, baseline ratcheting, and the fixture self-check.

use crate::baseline::Baseline;
use crate::diag::Diagnostic;
use crate::lexer::{lex, AllowDirective, Marker};
use crate::rules::{all_rules, FileInfo, FileKind};
use crate::scope::annotate_test_scope;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never linted.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".devstubs", "fixtures"];

/// Collects every workspace `.rs` file under `root`, repo-relative and
/// sorted (deterministic diagnostic order). The fixture corpus is excluded:
/// it exists to *contain* violations.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileResult {
    pub diags: Vec<Diagnostic>,
    /// Markers found (fixture mode only cares).
    pub markers: Vec<Marker>,
}

/// Lints one file's source. `rel_path` is the repo-relative path used both
/// for diagnostics and rule scoping; fixture files override the latter via
/// a `// lint-fixture: <pretend-path>` header (the diagnostics still carry
/// the real path).
pub fn lint_source(rel_path: &str, src: &str) -> FileResult {
    let pretend = src.lines().next().and_then(|l| {
        l.trim()
            .strip_prefix("// lint-fixture:")
            .map(|p| p.trim().to_string())
    });
    let info = FileInfo::classify(pretend.as_deref().unwrap_or(rel_path));
    let mut result = FileResult::default();

    let mut lexed = lex(src);
    result.markers = std::mem::take(&mut lexed.markers);
    if info.kind == FileKind::TestLike {
        return result;
    }
    annotate_test_scope(&mut lexed.tokens);

    let mut raw: Vec<Diagnostic> = Vec::new();
    for rule in all_rules() {
        if !(rule.applies)(&info) {
            continue;
        }
        for hit in (rule.scan)(&lexed.tokens) {
            raw.push(Diagnostic {
                file: rel_path.to_string(),
                line: hit.line,
                col: hit.col,
                rule: rule.id.to_string(),
                name: rule.name.to_string(),
                snippet: hit.snippet,
                message: rule.message.to_string(),
            });
        }
    }
    result.diags = apply_allows(raw, &lexed.allows, rel_path);
    result
}

/// Applies allow directives: `// lint: allow(Dn) — reason` suppresses rule
/// `Dn` on its own line and the next line. Directives with no justification
/// do not suppress and are themselves diagnostics; directives that suppress
/// nothing are diagnostics too (stale allows must not accumulate).
fn apply_allows(
    raw: Vec<Diagnostic>,
    allows: &[AllowDirective],
    rel_path: &str,
) -> Vec<Diagnostic> {
    let mut used = vec![false; allows.len()];
    let mut out = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for (ai, a) in allows.iter().enumerate() {
            if a.rule == d.rule
                && !a.reason.is_empty()
                && (d.line == a.line || d.line == a.line + 1)
            {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (ai, a) in allows.iter().enumerate() {
        if a.reason.is_empty() {
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: a.line,
                col: 1,
                rule: a.rule.clone(),
                name: "allow-without-reason".to_string(),
                snippet: format!("lint: allow({})", a.rule),
                message:
                    "allow directive has no justification — write `// lint: allow(Dn) — <reason>`"
                        .to_string(),
            });
        } else if !used[ai] {
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: a.line,
                col: 1,
                rule: a.rule.clone(),
                name: "stale-allow".to_string(),
                snippet: format!("lint: allow({})", a.rule),
                message: "allow directive suppresses nothing — remove it".to_string(),
            });
        }
    }
    out
}

/// Lints the whole workspace rooted at `root`. Diagnostics are sorted by
/// (file, line, col, rule) and per-rule totals are published to keebo-obs
/// (`kwo_lint.diag.<rule>`).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for path in workspace_files(root)? {
        let rel = rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        diags.extend(lint_source(&rel, &src).diags);
    }
    diags.sort();
    let mut per_rule: BTreeMap<String, u64> = BTreeMap::new();
    for d in &diags {
        *per_rule.entry(d.rule.to_lowercase()).or_insert(0) += 1;
    }
    for (rule, n) in per_rule {
        keebo_obs::global()
            .counter(&format!("kwo_lint.diag.{rule}"))
            .add(n);
    }
    Ok(diags)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Outcome of gating diagnostics against the baseline.
#[derive(Debug, Default)]
pub struct GateResult {
    /// Hard failures: new violations (or counts above baseline).
    pub failures: Vec<String>,
    /// Ratchet slack: baseline entries whose count can be lowered.
    pub slack: Vec<String>,
}

impl GateResult {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Checks `diags` against `baseline`: every (rule, file) count must be at
/// or under its frozen entry; pairs without an entry fail.
pub fn check_baseline(diags: &[Diagnostic], baseline: &Baseline) -> GateResult {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in diags {
        *counts.entry((d.rule.clone(), d.file.clone())).or_insert(0) += 1;
    }
    let mut result = GateResult::default();
    for ((rule, file), n) in &counts {
        match baseline.get(rule, file) {
            None => result.failures.push(format!(
                "{file}: {n} new {rule} violation(s) (not in baseline)"
            )),
            Some(e) if *n > e.count => result.failures.push(format!(
                "{file}: {rule} count {n} exceeds baseline {} — fix the new violation(s)",
                e.count
            )),
            Some(e) if *n < e.count => result.slack.push(format!(
                "{file}: {rule} baseline {} but only {n} remain — tighten the entry",
                e.count
            )),
            Some(_) => {}
        }
    }
    for e in baseline.entries() {
        if !counts.contains_key(&(e.rule.clone(), e.file.clone())) {
            result.slack.push(format!(
                "{}: {} baseline {} but 0 remain — delete the entry",
                e.file, e.rule, e.count
            ));
        }
    }
    result
}

/// Builds a baseline freezing the given diagnostics (reasons are stamped
/// with a placeholder the committer must edit).
pub fn freeze(diags: &[Diagnostic]) -> Baseline {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in diags {
        *counts.entry((d.rule.clone(), d.file.clone())).or_insert(0) += 1;
    }
    let mut out = Baseline::default();
    for ((rule, file), count) in counts {
        out.insert(crate::baseline::BaselineEntry {
            rule,
            file,
            count,
            reason: "TODO: justify or burn down".to_string(),
        });
    }
    out
}

/// Fixture self-check outcome.
#[derive(Debug, Default)]
pub struct FixtureReport {
    /// Diagnostics produced over the corpus (sorted).
    pub diags: Vec<Diagnostic>,
    /// `//~ Dn` markers with no matching diagnostic: the rule missed a
    /// true positive.
    pub missed: Vec<String>,
    /// Diagnostics on lines with no marker: a false positive trap fired.
    pub unexpected: Vec<String>,
}

impl FixtureReport {
    pub fn passed(&self) -> bool {
        self.missed.is_empty() && self.unexpected.is_empty()
    }
}

/// Runs the engine over the fixture corpus at `dir` and cross-checks the
/// diagnostics against the `//~ Dn` expectation markers, line by line.
pub fn run_fixtures(dir: &Path) -> io::Result<FixtureReport> {
    let mut files = Vec::new();
    walk(dir, &mut files)?;
    files.sort();
    let mut report = FixtureReport::default();
    for path in &files {
        let rel = rel_path(dir, path);
        let src = fs::read_to_string(path)?;
        let result = lint_source(&rel, &src);
        let mut expected: BTreeMap<(String, u32), usize> = BTreeMap::new();
        for mk in &result.markers {
            *expected.entry((mk.rule.clone(), mk.line)).or_insert(0) += 1;
        }
        let mut got: BTreeMap<(String, u32), usize> = BTreeMap::new();
        for d in &result.diags {
            *got.entry((d.rule.clone(), d.line)).or_insert(0) += 1;
        }
        for ((rule, line), n) in &expected {
            let g = got.get(&(rule.clone(), *line)).copied().unwrap_or(0);
            if g < *n {
                report
                    .missed
                    .push(format!("{rel}:{line}: expected {rule} ({n}x), got {g}"));
            }
        }
        for ((rule, line), n) in &got {
            let e = expected.get(&(rule.clone(), *line)).copied().unwrap_or(0);
            if *n > e {
                report.unexpected.push(format!(
                    "{rel}:{line}: unexpected {rule} ({n}x, {e} marked)"
                ));
            }
        }
        report.diags.extend(result.diags);
    }
    report.diags.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEntry;

    fn d(rule: &str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            col: 1,
            rule: rule.into(),
            name: String::new(),
            snippet: String::new(),
            message: String::new(),
        }
    }

    #[test]
    fn lint_source_applies_rules_by_pretend_path() {
        // Same source, different pretend locations: D6 fires only on the
        // billing path.
        let src =
            "// lint-fixture: crates/cdw-sim/src/billing.rs\nfn f(s: u64) -> f64 { s as f64 }\n";
        let r = lint_source("fix.rs", src);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].rule, "D6");
        assert_eq!(
            r.diags[0].file, "fix.rs",
            "diagnostic carries the real path"
        );

        let src2 = "// lint-fixture: crates/agent/src/dqn.rs\nfn f(s: u64) -> f64 { s as f64 }\n";
        assert!(lint_source("fix.rs", src2).diags.is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let src = "// lint-fixture: crates/core/src/x.rs\n\
                   // lint: allow(D5) — documented invariant\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = lint_source("x.rs", src);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].line, 4, "only the un-annotated unwrap remains");
    }

    #[test]
    fn reasonless_allow_is_a_diagnostic_and_does_not_suppress() {
        let src = "// lint-fixture: crates/core/src/x.rs\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(D5)\n";
        let r = lint_source("x.rs", src);
        assert_eq!(r.diags.len(), 2, "{:?}", r.diags);
        assert!(r.diags.iter().any(|d| d.name == "allow-without-reason"));
        assert!(r.diags.iter().any(|d| d.name == "no-panic-paths"));
    }

    #[test]
    fn stale_allow_is_a_diagnostic() {
        let src = "// lint-fixture: crates/core/src/x.rs\n\
                   // lint: allow(D2) — nothing here uses rng anymore\n\
                   fn f() {}\n";
        let r = lint_source("x.rs", src);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].name, "stale-allow");
    }

    #[test]
    fn baseline_gate_fails_on_new_and_exceeded() {
        let mut b = Baseline::default();
        b.insert(BaselineEntry {
            rule: "D5".into(),
            file: "a.rs".into(),
            count: 1,
            reason: "r".into(),
        });
        // Exactly at baseline: pass.
        assert!(check_baseline(&[d("D5", "a.rs", 1)], &b).passed());
        // Above baseline: fail.
        let over = check_baseline(&[d("D5", "a.rs", 1), d("D5", "a.rs", 9)], &b);
        assert!(!over.passed());
        assert!(over.failures[0].contains("exceeds baseline"));
        // Not in baseline at all: fail.
        let new = check_baseline(&[d("D2", "b.rs", 3)], &b);
        assert!(!new.passed());
        assert!(new.failures[0].contains("not in baseline"));
    }

    #[test]
    fn baseline_gate_reports_slack_both_ways() {
        let mut b = Baseline::default();
        b.insert(BaselineEntry {
            rule: "D5".into(),
            file: "a.rs".into(),
            count: 3,
            reason: "r".into(),
        });
        b.insert(BaselineEntry {
            rule: "D3".into(),
            file: "gone.rs".into(),
            count: 2,
            reason: "r".into(),
        });
        let g = check_baseline(&[d("D5", "a.rs", 1)], &b);
        assert!(g.passed());
        assert_eq!(g.slack.len(), 2);
        assert!(g.slack.iter().any(|s| s.contains("tighten")));
        assert!(g.slack.iter().any(|s| s.contains("delete")));
    }

    #[test]
    fn freeze_then_check_passes() {
        let diags = vec![d("D5", "a.rs", 1), d("D5", "a.rs", 2), d("D1", "b.rs", 7)];
        let b = freeze(&diags);
        assert_eq!(b.len(), 2);
        assert!(check_baseline(&diags, &b).passed());
    }
}
