//! The lint driver: workspace walk, rule application (per-file token rules,
//! then the crate-level structural rules and the workspace metrics audit),
//! allow-directive filtering, baseline ratcheting, and the fixture
//! self-check.

use crate::baseline::Baseline;
use crate::diag::Diagnostic;
use crate::index::{
    check_metrics, lock_cycles, parse_design_inventory, scan_concurrency, FileFacts, InventoryRow,
    LockEdge, MetricUse, StructFinding,
};
use crate::lexer::{lex, AllowDirective, Marker};
use crate::parse::build_structure;
use crate::rules::{all_rules, FileInfo, FileKind};
use crate::scope::annotate_test_scope;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The document whose metrics inventory table D12 audits against.
pub const DESIGN_DOC: &str = "DESIGN.md";

/// Directories never linted.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".devstubs", "fixtures"];

/// Collects every workspace `.rs` file under `root`, repo-relative and
/// sorted (deterministic diagnostic order). The fixture corpus is excluded:
/// it exists to *contain* violations.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileResult {
    pub diags: Vec<Diagnostic>,
    /// Markers found (fixture mode only cares).
    pub markers: Vec<Marker>,
}

/// Lints one file's source as a single-file workspace: the per-file token
/// rules plus the structural rules over the file's own symbol index, with
/// `// lint-inventory:` directives standing in for DESIGN.md. `rel_path` is
/// the repo-relative path used both for diagnostics and rule scoping;
/// fixture files override the latter via a `// lint-fixture: <pretend-path>`
/// header (the diagnostics still carry the real path).
pub fn lint_source(rel_path: &str, src: &str) -> FileResult {
    lint_sources(&[(rel_path.to_string(), src.to_string())], None)
}

/// One analyzed (non-test-like) file, mid-pipeline.
struct Analyzed {
    facts: FileFacts,
    allows: Vec<AllowDirective>,
    diags: Vec<Diagnostic>,
}

/// Lints a set of sources as one workspace: per-file token rules first,
/// then the crate-level concurrency rules (D8–D10) over per-crate symbol
/// sets, then the workspace metrics audit (D12) against `design` (path +
/// content of DESIGN.md) or, when absent, against any `// lint-inventory:`
/// directives in the sources. Allow directives are applied last so they
/// suppress structural findings too. `files` must be in deterministic
/// (path-sorted) order.
pub fn lint_sources(files: &[(String, String)], design: Option<(&str, &str)>) -> FileResult {
    let mut result = FileResult::default();
    let mut analyzed: Vec<Analyzed> = Vec::new();
    let mut directive_rows: Vec<InventoryRow> = Vec::new();

    for (rel_path, src) in files {
        let pretend = src.lines().next().and_then(|l| {
            l.trim()
                .strip_prefix("// lint-fixture:")
                .map(|p| p.trim().to_string())
        });
        let info = FileInfo::classify(pretend.as_deref().unwrap_or(rel_path));
        let mut lexed = lex(src);
        result.markers.append(&mut lexed.markers);
        if info.kind == FileKind::TestLike {
            continue;
        }
        annotate_test_scope(&mut lexed.tokens);
        let structure = build_structure(&lexed.tokens);
        let facts = FileFacts::collect(rel_path, info, lexed.tokens, structure);
        for d in lexed.inventory {
            directive_rows.push(InventoryRow {
                name: d.name,
                kind: d.kind,
                file: rel_path.clone(),
                line: d.line,
            });
        }
        analyzed.push(Analyzed {
            facts,
            allows: lexed.allows,
            diags: Vec::new(),
        });
    }

    // Phase 1: per-file token rules (D1–D7, D11).
    for a in &mut analyzed {
        for rule in all_rules() {
            if !(rule.applies)(&a.facts.info) {
                continue;
            }
            for hit in (rule.scan)(&a.facts.tokens) {
                a.diags.push(Diagnostic {
                    file: a.facts.real_path.clone(),
                    line: hit.line,
                    col: hit.col,
                    rule: rule.id.to_string(),
                    name: rule.name.to_string(),
                    snippet: hit.snippet,
                    message: rule.message.to_string(),
                });
            }
        }
    }

    // Phase 2: crate-level symbol sets, then the structural rules.
    let mut wrappers: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    let mut condvars: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for a in &analyzed {
        let k = a.facts.info.krate.as_str();
        wrappers
            .entry(k)
            .or_default()
            .extend(a.facts.lock_wrappers.iter().cloned());
        condvars
            .entry(k)
            .or_default()
            .extend(a.facts.condvars.iter().cloned());
    }
    let by_path: BTreeMap<String, usize> = analyzed
        .iter()
        .enumerate()
        .map(|(i, a)| (a.facts.real_path.clone(), i))
        .collect();
    let mut edges: BTreeMap<&str, Vec<LockEdge>> = BTreeMap::new();
    let mut structural: Vec<StructFinding> = Vec::new();
    for a in &analyzed {
        let k = a.facts.info.krate.as_str();
        let mut rep = scan_concurrency(&a.facts, &wrappers[k], &condvars[k]);
        edges.entry(k).or_default().append(&mut rep.edges);
        structural.append(&mut rep.findings);
    }
    for crate_edges in edges.values_mut() {
        crate_edges.sort();
        structural.extend(lock_cycles(crate_edges));
    }

    // Phase 3: the cross-artifact metrics audit (D12). The inventory comes
    // from DESIGN.md in workspace mode, from directives in fixture mode;
    // with neither present the rule stays silent.
    let rows = match design {
        Some((path, text)) => parse_design_inventory(path, text),
        None => directive_rows,
    };
    if design.is_some() || !rows.is_empty() {
        let uses: Vec<(String, MetricUse)> = analyzed
            .iter()
            .flat_map(|a| {
                a.facts
                    .metrics
                    .iter()
                    .map(|m| (a.facts.real_path.clone(), m.clone()))
            })
            .collect();
        structural.extend(check_metrics(&uses, &rows));
    }

    // Allow directives apply to structural findings too; findings anchored
    // outside the analyzed sources (DESIGN.md stale rows) pass through.
    let mut pass_through: Vec<Diagnostic> = Vec::new();
    for f in structural {
        let d = Diagnostic {
            file: f.file,
            line: f.line,
            col: f.col,
            rule: f.rule.to_string(),
            name: f.name.to_string(),
            snippet: f.snippet,
            message: f.message.to_string(),
        };
        match by_path.get(&d.file) {
            Some(&i) => analyzed[i].diags.push(d),
            None => pass_through.push(d),
        }
    }
    for a in analyzed {
        result
            .diags
            .extend(apply_allows(a.diags, &a.allows, &a.facts.real_path));
    }
    result.diags.extend(pass_through);
    result.diags.sort();
    result
}

/// Applies allow directives: `// lint: allow(Dn) — reason` suppresses rule
/// `Dn` on its own line and the next line. Directives with no justification
/// do not suppress and are themselves diagnostics; directives that suppress
/// nothing are diagnostics too (stale allows must not accumulate).
fn apply_allows(
    raw: Vec<Diagnostic>,
    allows: &[AllowDirective],
    rel_path: &str,
) -> Vec<Diagnostic> {
    let mut used = vec![false; allows.len()];
    let mut out = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for (ai, a) in allows.iter().enumerate() {
            if a.rule == d.rule
                && !a.reason.is_empty()
                && (d.line == a.line || d.line == a.line + 1)
            {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (ai, a) in allows.iter().enumerate() {
        if a.reason.is_empty() {
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: a.line,
                col: 1,
                rule: a.rule.clone(),
                name: "allow-without-reason".to_string(),
                snippet: format!("lint: allow({})", a.rule),
                message:
                    "allow directive has no justification — write `// lint: allow(Dn) — <reason>`"
                        .to_string(),
            });
        } else if !used[ai] {
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: a.line,
                col: 1,
                rule: a.rule.clone(),
                name: "stale-allow".to_string(),
                snippet: format!("lint: allow({})", a.rule),
                message: "allow directive suppresses nothing — remove it".to_string(),
            });
        }
    }
    out
}

/// Lints the whole workspace rooted at `root`, including the D12 audit
/// against `DESIGN.md`'s metrics inventory (skipped if the document is
/// missing). Diagnostics are sorted by (file, line, col, rule) and per-rule
/// totals are published to keebo-obs (`kwo_lint.diag.<rule>`).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for path in workspace_files(root)? {
        let rel = rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        files.push((rel, src));
    }
    let design_text = fs::read_to_string(root.join(DESIGN_DOC)).ok();
    let design = design_text.as_deref().map(|t| (DESIGN_DOC, t));
    let diags = lint_sources(&files, design).diags;
    let mut per_rule: BTreeMap<String, u64> = BTreeMap::new();
    for d in &diags {
        *per_rule.entry(d.rule.to_lowercase()).or_insert(0) += 1;
    }
    for (rule, n) in per_rule {
        keebo_obs::global()
            .counter(&format!("kwo_lint.diag.{rule}"))
            .add(n);
    }
    Ok(diags)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Outcome of gating diagnostics against the baseline.
#[derive(Debug, Default)]
pub struct GateResult {
    /// Gate failures: new violations, counts above baseline, or baseline
    /// entries the tree has already ratcheted past (counts only go down,
    /// and the entry must follow).
    pub failures: Vec<String>,
}

impl GateResult {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Checks `diags` against `baseline`: every (rule, file) count must match
/// its frozen entry exactly or be absent from both sides. Pairs without an
/// entry fail (new violations); counts above the entry fail (regression);
/// counts *below* the entry also fail — the ratchet direction is enforced,
/// so a burned-down entry must be shrunk or deleted in the same change.
pub fn check_baseline(diags: &[Diagnostic], baseline: &Baseline) -> GateResult {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in diags {
        *counts.entry((d.rule.clone(), d.file.clone())).or_insert(0) += 1;
    }
    let mut result = GateResult::default();
    for ((rule, file), n) in &counts {
        match baseline.get(rule, file) {
            None => result.failures.push(format!(
                "{file}: {n} new {rule} violation(s) (not in baseline)"
            )),
            Some(e) if *n > e.count => result.failures.push(format!(
                "{file}: {rule} count {n} exceeds baseline {} — fix the new violation(s)",
                e.count
            )),
            Some(e) if *n < e.count => result.failures.push(format!(
                "{file}: {rule} baseline {} but only {n} remain — shrink this entry \
                 (counts only go down)",
                e.count
            )),
            Some(_) => {}
        }
    }
    for e in baseline.entries() {
        if !counts.contains_key(&(e.rule.clone(), e.file.clone())) {
            result.failures.push(format!(
                "{}: {} baseline {} but 0 remain — delete the entry (counts only go down)",
                e.file, e.rule, e.count
            ));
        }
    }
    result
}

/// Builds a baseline freezing the given diagnostics (reasons are stamped
/// with a placeholder the committer must edit).
pub fn freeze(diags: &[Diagnostic]) -> Baseline {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in diags {
        *counts.entry((d.rule.clone(), d.file.clone())).or_insert(0) += 1;
    }
    let mut out = Baseline::default();
    for ((rule, file), count) in counts {
        out.insert(crate::baseline::BaselineEntry {
            rule,
            file,
            count,
            reason: "TODO: justify or burn down".to_string(),
        });
    }
    out
}

/// Fixture self-check outcome.
#[derive(Debug, Default)]
pub struct FixtureReport {
    /// Diagnostics produced over the corpus (sorted).
    pub diags: Vec<Diagnostic>,
    /// `//~ Dn` markers with no matching diagnostic: the rule missed a
    /// true positive.
    pub missed: Vec<String>,
    /// Diagnostics on lines with no marker: a false positive trap fired.
    pub unexpected: Vec<String>,
}

impl FixtureReport {
    pub fn passed(&self) -> bool {
        self.missed.is_empty() && self.unexpected.is_empty()
    }
}

/// Runs the engine over the fixture corpus at `dir` and cross-checks the
/// diagnostics against the `//~ Dn` expectation markers, line by line.
pub fn run_fixtures(dir: &Path) -> io::Result<FixtureReport> {
    let mut files = Vec::new();
    walk(dir, &mut files)?;
    files.sort();
    let mut report = FixtureReport::default();
    for path in &files {
        let rel = rel_path(dir, path);
        let src = fs::read_to_string(path)?;
        let result = lint_source(&rel, &src);
        let mut expected: BTreeMap<(String, u32), usize> = BTreeMap::new();
        for mk in &result.markers {
            *expected.entry((mk.rule.clone(), mk.line)).or_insert(0) += 1;
        }
        let mut got: BTreeMap<(String, u32), usize> = BTreeMap::new();
        for d in &result.diags {
            *got.entry((d.rule.clone(), d.line)).or_insert(0) += 1;
        }
        for ((rule, line), n) in &expected {
            let g = got.get(&(rule.clone(), *line)).copied().unwrap_or(0);
            if g < *n {
                report
                    .missed
                    .push(format!("{rel}:{line}: expected {rule} ({n}x), got {g}"));
            }
        }
        for ((rule, line), n) in &got {
            let e = expected.get(&(rule.clone(), *line)).copied().unwrap_or(0);
            if *n > e {
                report.unexpected.push(format!(
                    "{rel}:{line}: unexpected {rule} ({n}x, {e} marked)"
                ));
            }
        }
        report.diags.extend(result.diags);
    }
    report.diags.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEntry;

    fn d(rule: &str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            col: 1,
            rule: rule.into(),
            name: String::new(),
            snippet: String::new(),
            message: String::new(),
        }
    }

    #[test]
    fn lint_source_applies_rules_by_pretend_path() {
        // Same source, different pretend locations: D6 fires only on the
        // billing path.
        let src =
            "// lint-fixture: crates/cdw-sim/src/billing.rs\nfn f(s: u64) -> f64 { s as f64 }\n";
        let r = lint_source("fix.rs", src);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].rule, "D6");
        assert_eq!(
            r.diags[0].file, "fix.rs",
            "diagnostic carries the real path"
        );

        let src2 = "// lint-fixture: crates/agent/src/dqn.rs\nfn f(s: u64) -> f64 { s as f64 }\n";
        assert!(lint_source("fix.rs", src2).diags.is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let src = "// lint-fixture: crates/core/src/x.rs\n\
                   // lint: allow(D5) — documented invariant\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = lint_source("x.rs", src);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].line, 4, "only the un-annotated unwrap remains");
    }

    #[test]
    fn reasonless_allow_is_a_diagnostic_and_does_not_suppress() {
        let src = "// lint-fixture: crates/core/src/x.rs\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(D5)\n";
        let r = lint_source("x.rs", src);
        assert_eq!(r.diags.len(), 2, "{:?}", r.diags);
        assert!(r.diags.iter().any(|d| d.name == "allow-without-reason"));
        assert!(r.diags.iter().any(|d| d.name == "no-panic-paths"));
    }

    #[test]
    fn stale_allow_is_a_diagnostic() {
        let src = "// lint-fixture: crates/core/src/x.rs\n\
                   // lint: allow(D2) — nothing here uses rng anymore\n\
                   fn f() {}\n";
        let r = lint_source("x.rs", src);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].name, "stale-allow");
    }

    #[test]
    fn baseline_gate_fails_on_new_and_exceeded() {
        let mut b = Baseline::default();
        b.insert(BaselineEntry {
            rule: "D5".into(),
            file: "a.rs".into(),
            count: 1,
            reason: "r".into(),
        });
        // Exactly at baseline: pass.
        assert!(check_baseline(&[d("D5", "a.rs", 1)], &b).passed());
        // Above baseline: fail.
        let over = check_baseline(&[d("D5", "a.rs", 1), d("D5", "a.rs", 9)], &b);
        assert!(!over.passed());
        assert!(over.failures[0].contains("exceeds baseline"));
        // Not in baseline at all: fail.
        let new = check_baseline(&[d("D2", "b.rs", 3)], &b);
        assert!(!new.passed());
        assert!(new.failures[0].contains("not in baseline"));
    }

    #[test]
    fn baseline_gate_enforces_the_ratchet_direction() {
        let mut b = Baseline::default();
        b.insert(BaselineEntry {
            rule: "D5".into(),
            file: "a.rs".into(),
            count: 3,
            reason: "r".into(),
        });
        b.insert(BaselineEntry {
            rule: "D3".into(),
            file: "gone.rs".into(),
            count: 2,
            reason: "r".into(),
        });
        // Counts below baseline now FAIL: the entry must shrink with the fix.
        let g = check_baseline(&[d("D5", "a.rs", 1)], &b);
        assert!(!g.passed());
        assert_eq!(g.failures.len(), 2, "{:?}", g.failures);
        assert!(g.failures.iter().any(|s| s.contains("shrink this entry")));
        assert!(g.failures.iter().any(|s| s.contains("delete the entry")));
    }

    #[test]
    fn structural_rules_run_through_lint_source() {
        // D9 via a single-file workspace: the Condvar symbol set and the
        // wait site live in the same source.
        let src = "// lint-fixture: crates/core/src/sync.rs\n\
                   struct S { cv: Condvar }\n\
                   fn f(s: &S, g: G) -> G { s.cv.wait(g) }\n";
        let r = lint_source("x.rs", src);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "D9");
        assert_eq!(r.diags[0].file, "x.rs");
    }

    #[test]
    fn allow_directive_suppresses_structural_findings() {
        let src = "// lint-fixture: crates/core/src/sync.rs\n\
                   struct S { cv: Condvar }\n\
                   // lint: allow(D9) — woken exactly once by drop\n\
                   fn f(s: &S, g: G) -> G { s.cv.wait(g) }\n";
        let r = lint_source("x.rs", src);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn d12_audits_across_files_against_the_design_doc() {
        let files = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                "fn f(r: &R) { r.counter(\"keebo.a.total\").inc(); }".to_string(),
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                "fn g(r: &R) { r.gauge(\"keebo.b.depth\").set(1.0); }".to_string(),
            ),
        ];
        let design = "| `keebo.a.total` | counter | things |\n\
                      | `keebo.gone` | gauge | removed |\n";
        let r = lint_sources(&files, Some(("DESIGN.md", design)));
        let d12: Vec<_> = r.diags.iter().filter(|d| d.rule == "D12").collect();
        assert_eq!(d12.len(), 2, "{:?}", d12);
        // keebo.b.depth is undocumented; keebo.gone is a stale row.
        assert!(d12
            .iter()
            .any(|d| d.name == "metric-undocumented" && d.file == "crates/b/src/lib.rs"));
        assert!(d12
            .iter()
            .any(|d| d.name == "metric-stale-row" && d.file == "DESIGN.md" && d.line == 2));
    }

    #[test]
    fn d8_sees_lock_orders_across_files_of_one_crate() {
        let wrapper =
            "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap_or_else(p) }\n";
        let files = vec![
            (
                "crates/core/src/a.rs".to_string(),
                format!("{wrapper}fn a(s: &S) {{ let g = lock(&s.m1); lock(&s.m2).touch(); }}"),
            ),
            (
                "crates/core/src/b.rs".to_string(),
                "fn b(s: &S) { let g = lock(&s.m2); lock(&s.m1).touch(); }".to_string(),
            ),
        ];
        let r = lint_sources(&files, None);
        let d8: Vec<_> = r.diags.iter().filter(|d| d.rule == "D8").collect();
        assert_eq!(d8.len(), 1, "{:?}", r.diags);
        // Different crates do not share an acquisition graph.
        let files2 = vec![
            (files[0].0.clone(), files[0].1.clone()),
            ("crates/other/src/b.rs".to_string(), files[1].1.clone()),
        ];
        let r2 = lint_sources(&files2, None);
        assert!(r2.diags.iter().all(|d| d.rule != "D8"), "{:?}", r2.diags);
    }

    #[test]
    fn freeze_then_check_passes() {
        let diags = vec![d("D5", "a.rs", 1), d("D5", "a.rs", 2), d("D1", "b.rs", 7)];
        let b = freeze(&diags);
        assert_eq!(b.len(), 2);
        assert!(check_baseline(&diags, &b).passed());
    }
}
