//! Diagnostics and the machine-readable JSON report.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id, e.g. "D2".
    pub rule: String,
    /// Short rule name, e.g. "no-ambient-rng".
    pub name: String,
    /// The matched source fragment.
    pub snippet: String,
    /// Human explanation with the fix direction.
    pub message: String,
}

impl Diagnostic {
    /// `file:line:col: Dn (name) snippet — message` for terminal output.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} ({}) `{}` — {}",
            self.file, self.line, self.col, self.rule, self.name, self.snippet, self.message
        )
    }
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the deterministic machine-readable report: diagnostics sorted by
/// (file, line, col, rule), plus per-rule counts. Hand-rolled writer — the
/// lint engine stays dependency-free so it can never be broken by the crates
/// it checks.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &sorted {
        *counts.entry(d.rule.as_str()).or_insert(0) += 1;
    }
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"total\": ");
    let _ = write!(out, "{}", sorted.len());
    out.push_str(",\n  \"counts\": {");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", json_escape(rule), n);
    }
    if !counts.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"diagnostics\": [");
    for (i, d) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"snippet\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.rule),
            json_escape(&d.name),
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.snippet),
            json_escape(&d.message)
        );
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, rule: &str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            col: 1,
            rule: rule.into(),
            name: "n".into(),
            snippet: "s".into(),
            message: "m".into(),
        }
    }

    #[test]
    fn json_is_sorted_and_counted() {
        let diags = vec![
            diag("b.rs", 2, "D2"),
            diag("a.rs", 9, "D1"),
            diag("b.rs", 1, "D2"),
        ];
        let json = to_json(&diags);
        assert!(json.contains("\"total\": 3"));
        assert!(json.contains("\"D1\": 1"));
        assert!(json.contains("\"D2\": 2"));
        let a = json.find("a.rs").unwrap();
        let b = json.find("b.rs").unwrap();
        assert!(a < b, "sorted by file");
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut d = diag("a.rs", 1, "D4");
        d.snippet = "x == \"q\"\n".into();
        let json = to_json(&[d]);
        assert!(json.contains("x == \\\"q\\\"\\n"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = to_json(&[]);
        assert!(json.contains("\"total\": 0"));
        assert!(json.contains("\"diagnostics\": []"));
    }
}
