//! Brace-tree structural layer over the token stream.
//!
//! The token matchers in `rules.rs` see one line at a time; the concurrency
//! rules (D8–D10) need to know *where* a token sits: which `fn` body, inside
//! which loop, behind which closure boundary. This pass builds that shape
//! without parsing Rust: a single forward walk pairs every `{` with its `}`
//! and labels each block by the construct that introduced it (`fn`, `while`,
//! `loop`, a closure header, `unsafe`, ...). The result is a tree of
//! [`Block`]s plus an owner map from token index to innermost block.
//!
//! Guarantees (pinned by the fixture corpus and `tests/lexer_edges.rs`):
//!
//! * **Never panics**, whatever the input — unbalanced braces produce
//!   blocks closed at end-of-file, stray `}` are ignored;
//! * labels are a best-effort approximation (a struct literal brace inside
//!   an `if` condition can steal the pending label), which is fine for the
//!   rules built on top: they only ever *relax* on `While`/`Loop` ancestors
//!   and *reset* on `Fn`/`Closure` boundaries.

use crate::lexer::Tok;

/// What introduced a brace-delimited block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockKind {
    /// A named `fn` item body (free function, method, or trait default).
    Fn {
        name: String,
    },
    /// A `|...| { ... }` closure body. Braceless closure bodies are not
    /// blocks — they stay part of the surrounding statement.
    Closure,
    Loop,
    While,
    For,
    If,
    Match,
    Unsafe,
    Impl,
    Mod,
    Trait,
    /// `struct` / `enum` / `union` body.
    Adt,
    /// Plain expression/statement block (including match arms and struct
    /// literals).
    Plain,
}

/// One brace-delimited block.
#[derive(Debug, Clone)]
pub struct Block {
    pub kind: BlockKind,
    /// Token index of the introducing keyword (`fn`, `while`, the closure's
    /// opening `|`), or of the `{` itself for plain blocks. For `Fn` blocks
    /// the range `intro..open` is the signature.
    pub intro: usize,
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}`, or `tokens.len()` when the file is
    /// truncated/unbalanced (the block is closed at end-of-input).
    pub close: usize,
    /// Index into [`FileStructure::blocks`] of the enclosing block.
    pub parent: Option<usize>,
}

impl Block {
    /// Is this block a context boundary for intra-function analysis?
    /// Guards and held-lock sets never cross a `fn` or closure edge.
    pub fn is_body_root(&self) -> bool {
        matches!(self.kind, BlockKind::Fn { .. } | BlockKind::Closure)
    }
}

/// The brace tree of one file.
#[derive(Debug, Default)]
pub struct FileStructure {
    pub blocks: Vec<Block>,
    /// Innermost block index per token; `usize::MAX` = file level.
    owner: Vec<usize>,
}

impl FileStructure {
    /// Innermost block containing token `tok`, if any.
    pub fn block_at(&self, tok: usize) -> Option<usize> {
        match self.owner.get(tok) {
            Some(&b) if b != usize::MAX => Some(b),
            _ => None,
        }
    }

    /// Blocks containing token `tok`, innermost first.
    pub fn ancestors_of(&self, tok: usize) -> AncestorIter<'_> {
        AncestorIter {
            structure: self,
            next: self.block_at(tok),
        }
    }

    /// Indices of all `Fn` and `Closure` blocks, in source order.
    pub fn body_roots(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_body_root())
            .map(|(i, _)| i)
    }

    /// Walks outward from token `tok`: is there a `While`/`Loop` block
    /// strictly inside the nearest `Fn`/`Closure` boundary? (The D9
    /// predicate: a `Condvar::wait` must re-check its condition in a loop.)
    pub fn in_loop_within_body(&self, tok: usize) -> bool {
        for idx in self.ancestors_of(tok) {
            let b = &self.blocks[idx];
            match b.kind {
                BlockKind::While | BlockKind::Loop => return true,
                _ if b.is_body_root() => return false,
                _ => {}
            }
        }
        false
    }
}

/// Iterator over enclosing blocks, innermost first.
pub struct AncestorIter<'a> {
    structure: &'a FileStructure,
    next: Option<usize>,
}

impl Iterator for AncestorIter<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        let cur = self.next?;
        self.next = self.structure.blocks[cur].parent;
        Some(cur)
    }
}

/// Builds the brace tree for a token stream. Total, never panics.
pub fn build_structure(tokens: &[Tok]) -> FileStructure {
    let mut st = FileStructure {
        blocks: Vec::new(),
        owner: vec![usize::MAX; tokens.len()],
    };
    // Open blocks by index into `st.blocks`.
    let mut stack: Vec<usize> = Vec::new();
    // Construct keyword seen, waiting for its `{`: (kind, intro index).
    let mut pending: Option<(BlockKind, usize)> = None;

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        st.owner[i] = stack.last().copied().unwrap_or(usize::MAX);

        if t.kind == crate::lexer::TokKind::Ident {
            // A pending `fn` owns everything up to its `{` or `;`: keywords
            // inside the signature (`impl Fn(..)` params, `for<'a>` HRTBs,
            // `unsafe fn()` pointer types) must not steal the label.
            if matches!(pending, Some((BlockKind::Fn { .. }, _))) {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "fn" => {
                    if let Some(name) = tokens
                        .get(i + 1)
                        .filter(|n| n.kind == crate::lexer::TokKind::Ident)
                    {
                        pending = Some((
                            BlockKind::Fn {
                                name: name.text.clone(),
                            },
                            i,
                        ));
                    }
                }
                "loop" => pending = Some((BlockKind::Loop, i)),
                "while" => pending = Some((BlockKind::While, i)),
                // `for` also appears in `impl Trait for Type` — keep the
                // pending Impl in that case.
                "for" if !matches!(pending, Some((BlockKind::Impl, _))) => {
                    pending = Some((BlockKind::For, i));
                }
                "if" | "else" => pending = Some((BlockKind::If, i)),
                "match" => pending = Some((BlockKind::Match, i)),
                // `unsafe fn`/`unsafe impl` are overwritten by the later
                // keyword; a bare `unsafe {` keeps this label.
                "unsafe" => pending = Some((BlockKind::Unsafe, i)),
                "impl" => pending = Some((BlockKind::Impl, i)),
                "mod" => pending = Some((BlockKind::Mod, i)),
                "trait" => pending = Some((BlockKind::Trait, i)),
                "struct" | "enum" | "union" => pending = Some((BlockKind::Adt, i)),
                _ => {}
            }
            i += 1;
            continue;
        }

        // Closure header: an opening `|` in expression position. If the
        // matching `|` is followed by `{`, that brace opens a Closure block.
        if t.is_punct('|') && closure_position(tokens, i) {
            if let Some(close_bar) = closure_header_end(tokens, i) {
                if tokens.get(close_bar + 1).is_some_and(|n| n.is_punct('{')) {
                    pending = Some((BlockKind::Closure, i));
                }
                // Skip the header so `|` params can't re-trigger detection.
                for k in i..=close_bar.min(tokens.len() - 1) {
                    st.owner[k] = stack.last().copied().unwrap_or(usize::MAX);
                }
                i = close_bar + 1;
                continue;
            }
        }

        if t.is_punct('{') {
            let (kind, intro) = pending.take().unwrap_or((BlockKind::Plain, i));
            let idx = st.blocks.len();
            st.blocks.push(Block {
                kind,
                intro,
                open: i,
                close: tokens.len(),
                parent: stack.last().copied(),
            });
            stack.push(idx);
            // The brace belongs to the block it opens.
            st.owner[i] = idx;
        } else if t.is_punct('}') {
            if let Some(idx) = stack.pop() {
                st.blocks[idx].close = i;
                st.owner[i] = idx;
            }
            // Stray `}` at file level: ignored.
        } else if t.is_punct(';') {
            // A pending keyword consumed by a braceless item
            // (`struct S;`, a trait's `fn f();`).
            pending = None;
        }
        i += 1;
    }
    st
}

/// Is the `|` at `i` in a position where a closure can start? (As opposed
/// to a binary `|`, a `||` tail, or a pattern alternative.)
fn closure_position(tokens: &[Tok], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
        return true; // file starts with a closure — fine
    };
    if prev.kind == crate::lexer::TokKind::Ident {
        return matches!(prev.text.as_str(), "move" | "return" | "else" | "in");
    }
    prev.is_punct('(')
        || prev.is_punct(',')
        || prev.is_punct('=')
        || prev.is_punct('>') // `=>` arm bodies
        || prev.is_punct('{')
        || prev.is_punct(';')
        || prev.is_punct(':')
}

/// Finds the closing `|` of a closure header opened at `i`. Bails (None)
/// when the scan crosses a statement/grouping boundary first — then the
/// `|` was a pattern alternative (`Some(A | B)`), not a closure.
fn closure_header_end(tokens: &[Tok], i: usize) -> Option<usize> {
    // `||` — empty parameter list.
    if tokens.get(i + 1).is_some_and(|n| n.is_punct('|')) {
        return Some(i + 1);
    }
    let mut j = i + 1;
    // Parameter patterns may nest groups: `|(a, b)| ...`, `|[x, y]| ...`.
    let mut depth = 0usize;
    // Parameter lists are short; bound the scan hard.
    let limit = (i + 64).min(tokens.len());
    while j < limit {
        let t = &tokens[j];
        if depth == 0 && t.is_punct('|') {
            return Some(j);
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                return None;
            }
            depth -= 1;
        } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn structure(src: &str) -> (Vec<Tok>, FileStructure) {
        let lexed = lex(src);
        let st = build_structure(&lexed.tokens);
        (lexed.tokens, st)
    }

    fn kind_of_block_containing<'a>(
        toks: &[Tok],
        st: &'a FileStructure,
        ident: &str,
    ) -> &'a BlockKind {
        let (i, _) = toks
            .iter()
            .enumerate()
            .find(|(_, t)| t.is_ident(ident))
            .expect("ident present");
        let b = st.block_at(i).expect("inside a block");
        &st.blocks[b].kind
    }

    #[test]
    fn fn_bodies_are_labelled_and_named() {
        let (toks, st) = structure("fn alpha() { body(); }\nfn beta() { other(); }");
        assert_eq!(
            kind_of_block_containing(&toks, &st, "body"),
            &BlockKind::Fn {
                name: "alpha".into()
            }
        );
        assert_eq!(
            kind_of_block_containing(&toks, &st, "other"),
            &BlockKind::Fn {
                name: "beta".into()
            }
        );
    }

    #[test]
    fn loop_while_for_unsafe_are_labelled() {
        let src = "fn f() { loop { a(); } while c { b(); } for x in v { d(); } unsafe { u(); } }";
        let (toks, st) = structure(src);
        assert_eq!(kind_of_block_containing(&toks, &st, "a"), &BlockKind::Loop);
        assert_eq!(kind_of_block_containing(&toks, &st, "b"), &BlockKind::While);
        assert_eq!(kind_of_block_containing(&toks, &st, "d"), &BlockKind::For);
        assert_eq!(
            kind_of_block_containing(&toks, &st, "u"),
            &BlockKind::Unsafe
        );
    }

    #[test]
    fn closure_bodies_are_blocks_and_braceless_ones_are_not() {
        let src = "fn f() { run(move |x| { inner(); }); let g = |y| y + 1; }";
        let (toks, st) = structure(src);
        assert_eq!(
            kind_of_block_containing(&toks, &st, "inner"),
            &BlockKind::Closure
        );
        // `y + 1` stays in the fn body.
        assert!(matches!(
            kind_of_block_containing(&toks, &st, "y"),
            BlockKind::Fn { .. }
        ));
    }

    #[test]
    fn tuple_pattern_closures_are_detected() {
        let src = "fn f(v: V) { v.iter().for_each(|(k, x)| { g(k, x); }); }";
        let (toks, st) = structure(src);
        assert_eq!(
            kind_of_block_containing(&toks, &st, "g"),
            &BlockKind::Closure
        );
    }

    #[test]
    fn pattern_alternatives_are_not_closures() {
        let src = "fn f(v: E) { match v { E::A(X | Y) => a(), _ => b(), } }";
        let (toks, st) = structure(src);
        // No Closure blocks at all.
        assert!(st.blocks.iter().all(|b| b.kind != BlockKind::Closure));
        assert_eq!(kind_of_block_containing(&toks, &st, "a"), &BlockKind::Match);
    }

    #[test]
    fn logical_or_is_not_a_closure() {
        let src = "fn f(a: bool, b: bool) { if a || b { t(); } }";
        let (toks, st) = structure(src);
        assert!(st.blocks.iter().all(|b| b.kind != BlockKind::Closure));
        assert_eq!(kind_of_block_containing(&toks, &st, "t"), &BlockKind::If);
    }

    #[test]
    fn impl_for_keeps_impl_label() {
        let src = "impl Display for Foo { fn fmt(&self) { x(); } }";
        let (toks, st) = structure(src);
        assert!(matches!(
            kind_of_block_containing(&toks, &st, "x"),
            BlockKind::Fn { .. }
        ));
        let fn_block = st
            .blocks
            .iter()
            .find(|b| matches!(b.kind, BlockKind::Fn { .. }))
            .unwrap();
        let parent = &st.blocks[fn_block.parent.unwrap()];
        assert_eq!(parent.kind, BlockKind::Impl);
    }

    #[test]
    fn in_loop_within_body_respects_fn_boundary() {
        // wait() directly in the fn body: not in a loop.
        let (toks, st) = structure("fn f() { cv.wait(g); }");
        let (i, _) = toks
            .iter()
            .enumerate()
            .find(|(_, t)| t.is_ident("wait"))
            .unwrap();
        assert!(!st.in_loop_within_body(i));

        // wait() inside a while loop: ok.
        let (toks, st) = structure("fn f() { while p { cv.wait(g); } }");
        let (i, _) = toks
            .iter()
            .enumerate()
            .find(|(_, t)| t.is_ident("wait"))
            .unwrap();
        assert!(st.in_loop_within_body(i));

        // Loop outside, closure boundary between: NOT in a loop.
        let (toks, st) = structure("fn f() { loop { run(move || { cv.wait(g); }); } }");
        let (i, _) = toks
            .iter()
            .enumerate()
            .find(|(_, t)| t.is_ident("wait"))
            .unwrap();
        assert!(!st.in_loop_within_body(i));
    }

    #[test]
    fn unbalanced_input_never_panics() {
        for src in [
            "fn f() { {{{",
            "}}} fn g() {}",
            "fn f( { } )",
            "|",
            "let x = || ;",
            "{ } } {",
            "",
        ] {
            let lexed = lex(src);
            let st = build_structure(&lexed.tokens);
            // Every recorded block has open <= close.
            assert!(st.blocks.iter().all(|b| b.open <= b.close));
        }
    }

    #[test]
    fn fn_signature_range_is_available() {
        let (toks, st) = structure("fn wrap(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock() }");
        let b = &st.blocks[0];
        assert!(matches!(b.kind, BlockKind::Fn { .. }));
        let sig: Vec<&str> = toks[b.intro..b.open]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(sig.contains(&"MutexGuard"));
    }
}
