//! # kwo-lint — repo-local determinism & numeric-safety lints
//!
//! The KWO control loop is trusted because its decisions replay bit-for-bit
//! and its billing arithmetic is exact. The dynamic suite (fleet-digest
//! identity, the billing oracle, the fuzzer) *detects* violations of those
//! invariants; this crate *prevents* them from entering the tree, as a
//! self-contained static pass with no syn/rustc dependency:
//!
//! | rule | name               | invariant protected                         |
//! |------|--------------------|---------------------------------------------|
//! | D1   | no-wall-clock      | replayable decisions (sim time only)         |
//! | D2   | no-ambient-rng     | name-keyed seed streams                      |
//! | D3   | ordered-iteration  | bit-identical digests/reports                |
//! | D4   | no-float-eq        | exact credit arithmetic                      |
//! | D5   | no-panic-paths     | fleet runs never abort mid-flight            |
//! | D6   | checked-casts      | billing precision (2^53 edge, sign)          |
//! | D7   | durable-io         | fail-open persistence (io handled, not unwrapped) |
//! | D8   | lock-order         | no acquisition-order cycles per crate        |
//! | D9   | condvar-wait-loop  | spurious-wakeup safety (wait in a loop)      |
//! | D10  | guard-across-boundary | no guard across unwind/callback/send      |
//! | D11  | atomics-ordering   | Relaxed only on obs statistics counters      |
//! | D12  | metrics-inventory  | keebo.* names match DESIGN.md's inventory    |
//!
//! D1–D7 and D11 are per-file token rules (`rules.rs`); D8–D10 walk the
//! brace-tree structural layer (`parse.rs`) with a per-crate symbol index,
//! and D12 audits the whole workspace against DESIGN.md (`index.rs`).
//!
//! Findings are suppressed per site with `// lint: allow(Dn) — reason`
//! (the justification is mandatory) or frozen in `lint-baseline.toml`,
//! which only ratchets down — an entry above the observed count now fails
//! the gate until it is shrunk. See the `kwo-lint` binary for the CLI.

pub mod baseline;
pub mod diag;
pub mod engine;
pub mod index;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scope;

pub use baseline::{Baseline, BaselineEntry};
pub use diag::{to_json, Diagnostic};
pub use engine::{
    check_baseline, freeze, lint_source, lint_sources, lint_workspace, run_fixtures,
    workspace_files, FixtureReport, GateResult,
};
pub use index::{FileFacts, InventoryRow, LockEdge, MetricUse, StructFinding};
pub use parse::{build_structure, Block, BlockKind, FileStructure};
pub use rules::{all_rules, rule_by_id, FileInfo, FileKind};
