//! CLI driver for the kwo-lint engine.
//!
//! ```text
//! kwo-lint [--root DIR] [--baseline FILE] [--format text|json|github]
//!          [--json FILE] [--write-baseline] [--smoke] [--quiet]
//! ```
//!
//! Modes:
//! * default — lint the workspace; with `--baseline`, gate against the
//!   ratcheted baseline (exit 1 on new violations or on entries the tree
//!   has ratcheted past), otherwise exit 1 on any diagnostic;
//! * `--write-baseline` — freeze today's diagnostics into the baseline file
//!   (placeholder reasons; edit before committing);
//! * `--smoke` — run the engine over its own fixture corpus and verify every
//!   `//~ Dn` expectation marker (engine self-check for CI).
//!
//! Output formats (`--format`, default `text`):
//! * `text` — `file:line:col: Dn (name) \`snippet\` — message`, one per
//!   line; the shape `.github/kwo-lint-problem-matcher.json` matches so CI
//!   findings annotate PR diffs;
//! * `json` — the machine-readable report on stdout;
//! * `github` — GitHub Actions `::error` workflow commands (direct
//!   annotations without a matcher).
//!
//! `--json FILE` additionally writes the machine-readable report to a file
//! in every mode.

use lint::{check_baseline, freeze, run_fixtures, to_json, Baseline, Diagnostic};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Github,
}

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    format: Format,
    write_baseline: bool,
    smoke: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        json: None,
        format: Format::Text,
        write_baseline: false,
        smoke: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = next_value(&mut it, "--root")?.into(),
            "--baseline" => args.baseline = Some(next_value(&mut it, "--baseline")?.into()),
            "--json" => args.json = Some(next_value(&mut it, "--json")?.into()),
            "--format" => {
                args.format = match next_value(&mut it, "--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "github" => Format::Github,
                    other => {
                        return Err(format!(
                            "unknown format `{other}` (expected text, json, or github)"
                        ))
                    }
                }
            }
            "--write-baseline" => args.write_baseline = true,
            "--smoke" => args.smoke = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "kwo-lint: determinism, numeric-safety & concurrency lints (D1-D12)\n\
                     usage: kwo-lint [--root DIR] [--baseline FILE] [--format text|json|github]\n\
                     \x20      [--json FILE] [--write-baseline] [--smoke] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("kwo-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("kwo-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Prints diagnostics in the selected format (suppressed by `--quiet`,
/// except `json` which exists to be piped).
fn emit(diags: &[Diagnostic], args: &Args) {
    match args.format {
        Format::Json => println!("{}", to_json(diags)),
        Format::Text if !args.quiet => {
            for d in diags {
                println!("{}", d.render());
            }
        }
        Format::Github if !args.quiet => {
            for d in diags {
                // GitHub workflow commands treat %, CR, and LF as
                // terminators; diagnostics are single-line, escape anyway.
                let msg = format!("{} ({}) `{}` — {}", d.rule, d.name, d.snippet, d.message)
                    .replace('%', "%25")
                    .replace('\r', "%0D")
                    .replace('\n', "%0A");
                println!(
                    "::error file={},line={},col={}::{}",
                    d.file, d.line, d.col, msg
                );
            }
        }
        _ => {}
    }
}

fn run(args: &Args) -> Result<bool, String> {
    if args.smoke {
        return run_smoke(args);
    }

    let diags = lint::lint_workspace(&args.root).map_err(|e| format!("walking workspace: {e}"))?;
    if let Some(path) = &args.json {
        std::fs::write(path, to_json(&diags)).map_err(|e| format!("writing {path:?}: {e}"))?;
    }

    if args.write_baseline {
        let path = args
            .baseline
            .clone()
            .unwrap_or_else(|| args.root.join("lint-baseline.toml"));
        std::fs::write(&path, freeze(&diags).write())
            .map_err(|e| format!("writing {path:?}: {e}"))?;
        println!(
            "kwo-lint: froze {} diagnostic(s) into {} — edit the TODO reasons before committing",
            diags.len(),
            path.display()
        );
        return Ok(true);
    }

    let baseline = match &args.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            Baseline::parse(&text).map_err(|e| e.to_string())?
        }
        None => Baseline::default(),
    };
    let gate = check_baseline(&diags, &baseline);

    emit(&diags, args);
    if gate.passed() {
        if args.format != Format::Json {
            println!(
                "kwo-lint: OK — {} diagnostic(s), all within the {}-entry baseline",
                diags.len(),
                baseline.len()
            );
        }
        Ok(true)
    } else {
        for f in &gate.failures {
            eprintln!("kwo-lint: FAIL — {f}");
        }
        eprintln!(
            "kwo-lint: {} gate failure(s); fix the violation(s), justify with \
             `// lint: allow(Dn) — reason`, or shrink the ratcheted baseline",
            gate.failures.len()
        );
        Ok(false)
    }
}

fn run_smoke(args: &Args) -> Result<bool, String> {
    let dir = args.root.join("crates/lint/tests/fixtures");
    let report = run_fixtures(&dir).map_err(|e| format!("reading fixtures at {dir:?}: {e}"))?;
    if let Some(path) = &args.json {
        std::fs::write(path, to_json(&report.diags))
            .map_err(|e| format!("writing {path:?}: {e}"))?;
    }
    if report.passed() {
        if args.format == Format::Json {
            println!("{}", to_json(&report.diags));
        } else {
            println!(
                "kwo-lint --smoke: OK — {} diagnostic(s) over the fixture corpus, every marker matched",
                report.diags.len()
            );
        }
        Ok(true)
    } else {
        for miss in &report.missed {
            eprintln!("kwo-lint --smoke: MISSED {miss}");
        }
        for unexp in &report.unexpected {
            eprintln!("kwo-lint --smoke: UNEXPECTED {unexp}");
        }
        Ok(false)
    }
}
