//! The per-file token rules D1–D7 and D11.
//!
//! Each rule is a matcher over the lexed token stream of one file plus a
//! scope predicate saying where the rule applies. The rules encode the
//! invariants the dynamic test suite checks after the fact — fleet-digest
//! bit-identity, billing-oracle agreement — as source-level bans, so a
//! regression is rejected at lint time instead of being hunted down from a
//! flaky digest mismatch later. The structural rules D8–D10 and the
//! cross-artifact audit D12 need whole-crate context and live in
//! `index.rs`.

use crate::lexer::{Tok, TokKind};

/// Where a file sits in the workspace, as far as rule scoping cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under some crate's `src/` (not `src/bin/`).
    Lib,
    /// Binary / driver code (`src/bin/`, `benches/`).
    Bin,
    /// Integration tests, examples, fixtures: exempt from every rule.
    TestLike,
}

/// Classification of one source file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// Crate directory name under `crates/` ("cdw-sim", "core", ...).
    pub krate: String,
    pub kind: FileKind,
}

impl FileInfo {
    /// Classifies a repo-relative path. `\` separators are normalized to
    /// `/`, and the test-like / bin checks look only at *directory*
    /// segments below the crate root — so a crate literally named
    /// `fixtures` or `tests` (`crates/fixtures/src/lib.rs`) is still Lib,
    /// and a file named `tests.rs` never trips the directory check.
    pub fn classify(path: &str) -> FileInfo {
        let normalized = path.replace('\\', "/");
        let segments: Vec<&str> = normalized.split('/').collect();
        // Directory segments only: everything but the file name.
        let dirs = &segments[..segments.len().saturating_sub(1)];

        let (krate, crate_dirs) = if dirs.first() == Some(&"crates") && dirs.len() >= 2 {
            (dirs[1].to_string(), &dirs[2..])
        } else {
            (String::new(), dirs)
        };

        let kind = if crate_dirs
            .iter()
            .any(|d| matches!(*d, "tests" | "examples" | "fixtures"))
        {
            FileKind::TestLike
        } else if crate_dirs.first() == Some(&"benches")
            || (crate_dirs.first() == Some(&"src") && crate_dirs.get(1) == Some(&"bin"))
        {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        FileInfo {
            path: normalized,
            krate,
            kind,
        }
    }
}

/// A raw match before allow/baseline filtering.
#[derive(Debug, Clone)]
pub struct RuleMatch {
    pub line: u32,
    pub col: u32,
    pub snippet: String,
}

/// Static description of one rule.
pub struct Rule {
    pub id: &'static str,
    pub name: &'static str,
    /// One-line message attached to each diagnostic.
    pub message: &'static str,
    /// Does the rule apply to this file at all?
    pub applies: fn(&FileInfo) -> bool,
    /// Token matcher.
    pub scan: fn(&[Tok]) -> Vec<RuleMatch>,
}

/// The rule registry, in id order.
pub fn all_rules() -> &'static [Rule] {
    &RULES
}

static RULES: [Rule; 8] = [
    Rule {
        id: "D1",
        name: "no-wall-clock",
        message: "wall-clock read in deterministic code: derive time from SimTime or take it as a parameter (allow only for never-read-back observability)",
        applies: |f| f.kind == FileKind::Lib && f.krate != "bench" && f.krate != "lint",
        scan: scan_wall_clock,
    },
    Rule {
        id: "D2",
        name: "no-ambient-rng",
        message: "ambient RNG seeding: every stream must derive from derive_stream_seed or an explicit seed parameter",
        applies: |f| f.kind != FileKind::TestLike,
        scan: scan_ambient_rng,
    },
    Rule {
        id: "D3",
        name: "ordered-iteration",
        message: "HashMap/HashSet iteration order is nondeterministic and can leak into digests/reports: use BTreeMap/BTreeSet or sort at emit",
        applies: |f| f.kind != FileKind::TestLike,
        scan: scan_unordered_collections,
    },
    Rule {
        id: "D4",
        name: "no-float-eq",
        message: "exact float equality on credit/f64 arithmetic: compare with an epsilon helper (allow only for exact sentinel checks)",
        applies: |f| f.kind != FileKind::TestLike,
        scan: scan_float_eq,
    },
    Rule {
        id: "D5",
        name: "no-panic-paths",
        message: "panic path in library code: handle the case, or justify with an adjacent `// lint: allow(D5) — reason`",
        applies: |f| f.kind == FileKind::Lib,
        scan: scan_panic_paths,
    },
    Rule {
        id: "D6",
        name: "checked-casts",
        message: "bare numeric cast on a billing/costmodel path: use the checked helpers in cdw_sim::billing (exact_f64, credits_from_secs, ms_fraction)",
        applies: |f| {
            f.kind == FileKind::Lib
                && (f.path == "crates/cdw-sim/src/billing.rs"
                    || f.path == "crates/cdw-sim/src/time.rs"
                    || f.path == "crates/core/src/pricing.rs"
                    || f.path.starts_with("crates/costmodel/src/"))
        },
        scan: scan_bare_casts,
    },
    Rule {
        id: "D7",
        name: "durable-io",
        message: "io unwrap/expect or unchecked file write outside the durable store: handle the io::Result (the control plane persists fail-open) or route output through the StateStore / bench::report helpers",
        applies: |f| {
            f.kind != FileKind::TestLike
                && !f.path.starts_with("crates/core/src/store")
                && f.path != "crates/bench/src/report.rs"
        },
        scan: scan_durable_io,
    },
    Rule {
        id: "D11",
        name: "atomics-ordering",
        message: "Ordering::Relaxed outside the obs statistics registry: cross-thread flags/cursors need Acquire/Release/SeqCst — or justify the counter with an inline `// lint: allow(D11) — reason`",
        applies: |f| f.kind == FileKind::Lib && f.krate != "obs",
        scan: scan_relaxed_ordering,
    },
];

/// Looks up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

// ---- matchers -------------------------------------------------------------

/// Iterator over indices of non-test tokens.
fn live(toks: &[Tok]) -> impl Iterator<Item = (usize, &Tok)> {
    toks.iter().enumerate().filter(|(_, t)| !t.in_test)
}

/// Is `toks[i..]` the sequence `:: <ident>`?
fn path_seg(toks: &[Tok], i: usize, ident: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_ident(ident))
}

fn m(t: &Tok, snippet: impl Into<String>) -> RuleMatch {
    RuleMatch {
        line: t.line,
        col: t.col,
        snippet: snippet.into(),
    }
}

/// D1: `Instant::now`, `SystemTime::now` (any path prefix).
fn scan_wall_clock(toks: &[Tok]) -> Vec<RuleMatch> {
    let mut out = Vec::new();
    for (i, t) in live(toks) {
        if (t.is_ident("Instant") || t.is_ident("SystemTime")) && path_seg(toks, i + 1, "now") {
            out.push(m(t, format!("{}::now", t.text)));
        }
    }
    out
}

/// D2: `thread_rng`, `from_entropy`, `rand::random`.
fn scan_ambient_rng(toks: &[Tok]) -> Vec<RuleMatch> {
    let mut out = Vec::new();
    for (i, t) in live(toks) {
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            out.push(m(t, t.text.clone()));
        } else if t.is_ident("rand") && path_seg(toks, i + 1, "random") {
            out.push(m(t, "rand::random"));
        }
    }
    out
}

/// D3: any mention of `HashMap`/`HashSet` (type, constructor, or import).
/// Mentions are flagged rather than iterations: iteration sites are what
/// corrupt digests, but the only reliable way to keep them out with a token
/// matcher is to keep the types out entirely (keyed lookup maps belong in
/// `BTreeMap` too — same API, no order trap when someone later iterates).
fn scan_unordered_collections(toks: &[Tok]) -> Vec<RuleMatch> {
    let mut out = Vec::new();
    for (_, t) in live(toks) {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(m(t, t.text.clone()));
        }
    }
    out
}

/// D4: `==` / `!=` with a float literal (or float constant like `f64::NAN`)
/// on either side.
fn scan_float_eq(toks: &[Tok]) -> Vec<RuleMatch> {
    let mut out = Vec::new();
    for (i, t) in live(toks) {
        let snippet_op = if t.is_punct('=') && toks.get(i + 1).is_some_and(|n| n.is_punct('=')) {
            // Exclude `==` that is really the tail of `<=`, `>=`, `!=`.
            if i > 0
                && (toks[i - 1].is_punct('<')
                    || toks[i - 1].is_punct('>')
                    || toks[i - 1].is_punct('!')
                    || toks[i - 1].is_punct('='))
            {
                continue;
            }
            "=="
        } else if t.is_punct('!') && toks.get(i + 1).is_some_and(|n| n.is_punct('=')) {
            "!="
        } else {
            continue;
        };
        // Left operand: previous token.
        let left_float = i > 0 && operand_is_float(toks, i - 1, Direction::Left);
        // Right operand: skip the second op char, then an optional sign.
        let mut r = i + 2;
        if toks.get(r).is_some_and(|n| n.is_punct('-')) {
            r += 1;
        }
        let right_float = operand_is_float(toks, r, Direction::Right);
        if left_float || right_float {
            out.push(m(t, snippet_op));
        }
    }
    out
}

enum Direction {
    Left,
    Right,
}

/// Is the operand token at `i` float-flavored? Float literal, or a path to
/// a known f64 constant (`f64::NAN`, `f64::INFINITY`, ...).
fn operand_is_float(toks: &[Tok], i: usize, dir: Direction) -> bool {
    let Some(t) = toks.get(i) else {
        return false;
    };
    if t.kind == TokKind::Num && t.is_float_literal() {
        return true;
    }
    match dir {
        Direction::Right => {
            (t.is_ident("f64") || t.is_ident("f32"))
                && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
        }
        Direction::Left => {
            // `f64::NAN == x`: the token left of `==` is the constant name
            // preceded by `f64::`.
            t.kind == TokKind::Ident
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && (toks[i - 3].is_ident("f64") || toks[i - 3].is_ident("f32"))
        }
    }
}

/// D5: `.unwrap(`, `.expect(`, `panic!(` in library code.
fn scan_panic_paths(toks: &[Tok]) -> Vec<RuleMatch> {
    let mut out = Vec::new();
    for (i, t) in live(toks) {
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(m(t, format!(".{}()", t.text)));
        } else if t.is_ident("panic")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && i.checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_none_or(|p| !p.is_punct('.') && !p.is_ident("core") && !p.is_ident("std"))
        {
            // `.panic` never occurs; the look-behind only drops
            // `std::panic!`-style fully qualified forms from double counting
            // (the bare `panic` ident is still the match point).
            out.push(m(t, "panic!"));
        }
    }
    out
}

/// Io-returning callees whose `Result` must not be unwrapped outside the
/// durable store. `read`/`write` are NOT here: they are too common as
/// ordinary method names (`RwLock::read`/`write` legitimately unwrap their
/// poison Result) and match only in `fs::`-qualified form.
const IO_FNS: [&str; 19] = [
    "copy",
    "create",
    "create_dir",
    "create_dir_all",
    "create_new",
    "flush",
    "metadata",
    "open",
    "read_to_end",
    "read_to_string",
    "remove_dir",
    "remove_dir_all",
    "remove_file",
    "rename",
    "seek",
    "set_len",
    "sync_all",
    "sync_data",
    "write_all",
];

/// Walks back from a `)` at `close` to its matching `(`; returns the index
/// of the callee identifier immediately before it, if any.
fn callee_of_close_paren(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 1usize;
    let mut j = close;
    while depth > 0 {
        j = j.checked_sub(1)?;
        if toks[j].is_punct(')') {
            depth += 1;
        } else if toks[j].is_punct('(') {
            depth -= 1;
        }
    }
    j.checked_sub(1).filter(|&k| toks[k].kind == TokKind::Ident)
}

/// Walks forward from a `(` at `open` to its matching `)`.
pub(crate) fn matching_close_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Is the callee identifier at `k` an io-flavored call?
fn is_io_callee(toks: &[Tok], k: usize) -> bool {
    let qualified_fs = k >= 3
        && toks[k - 1].is_punct(':')
        && toks[k - 2].is_punct(':')
        && toks[k - 3].is_ident("fs");
    match toks[k].text.as_str() {
        "read" | "write" => qualified_fs,
        name => IO_FNS.contains(&name),
    }
}

/// Does the statement containing the token at `i` bind or forward its
/// value? Scans back to the previous statement boundary looking for `=`
/// (let bindings, assignments, `=>` arms) or `return`.
fn stmt_binds_value(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_punct('=') || t.is_ident("return") {
            return true;
        }
    }
    false
}

/// D7: io calls with the `Result` unwrapped (`fs::write(..).expect(..)`,
/// `File::open(p).unwrap()`) and file writes whose `Result` is silently
/// dropped (`f.write_all(b);`). The durable store and the bench report
/// helper are the sanctioned homes for this io; everywhere else the
/// fallibility must be surfaced.
fn scan_durable_io(toks: &[Tok]) -> Vec<RuleMatch> {
    let mut out = Vec::new();
    for (i, t) in live(toks) {
        // io_call(..).unwrap() / io_call(..).expect(..)
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks[i - 2].is_punct(')')
        {
            if let Some(callee) = callee_of_close_paren(toks, i - 2) {
                if is_io_callee(toks, callee) {
                    out.push(m(t, format!("{}(..).{}()", toks[callee].text, t.text)));
                }
            }
        }
        // Unchecked write: statement-level `.write_all(..);`,
        // `File::create(..);`, or `fs::write(..);` with the Result dropped.
        let write_target = (t.is_ident("write_all") && i > 0 && toks[i - 1].is_punct('.'))
            || (t.is_ident("create")
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("File"))
            || (t.is_ident("write")
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("fs"));
        if write_target && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(close) = matching_close_paren(toks, i + 1) {
                if toks.get(close + 1).is_some_and(|n| n.is_punct(';'))
                    && !stmt_binds_value(toks, i)
                {
                    out.push(m(t, format!("unchecked {}(..)", t.text)));
                }
            }
        }
    }
    out
}

/// D11: the exact token path `Ordering::Relaxed`. The full-path check means
/// `std::cmp::Ordering::Equal` and other `Ordering` enums never match —
/// only the atomics variant spells `Relaxed`.
fn scan_relaxed_ordering(toks: &[Tok]) -> Vec<RuleMatch> {
    let mut out = Vec::new();
    for (i, t) in live(toks) {
        if t.is_ident("Ordering") && path_seg(toks, i + 1, "Relaxed") {
            out.push(m(toks.get(i + 3).unwrap_or(t), "Ordering::Relaxed"));
        }
    }
    out
}

/// D6: `as u64` / `as f64`.
fn scan_bare_casts(toks: &[Tok]) -> Vec<RuleMatch> {
    let mut out = Vec::new();
    for (i, t) in live(toks) {
        if t.is_ident("as")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("u64") || n.is_ident("f64"))
        {
            out.push(m(t, format!("as {}", toks[i + 1].text)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::annotate_test_scope;

    fn run(scan: fn(&[Tok]) -> Vec<RuleMatch>, src: &str) -> Vec<RuleMatch> {
        let mut lexed = lex(src);
        annotate_test_scope(&mut lexed.tokens);
        scan(&lexed.tokens)
    }

    #[test]
    fn wall_clock_matches_qualified_paths() {
        let hits = run(scan_wall_clock, "let t = std::time::Instant::now();");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].snippet, "Instant::now");
        assert!(run(scan_wall_clock, "let i: Instant = other(); i.elapsed();").is_empty());
    }

    #[test]
    fn ambient_rng_matches_all_forms() {
        assert_eq!(run(scan_ambient_rng, "let mut r = thread_rng();").len(), 1);
        assert_eq!(run(scan_ambient_rng, "StdRng::from_entropy()").len(), 1);
        assert_eq!(
            run(scan_ambient_rng, "let x: f64 = rand::random();").len(),
            1
        );
        assert!(run(scan_ambient_rng, "let random = 3; rando::random();").is_empty());
    }

    #[test]
    fn float_eq_flags_literals_not_ints() {
        assert_eq!(run(scan_float_eq, "if credits == 0.0 {}").len(), 1);
        assert_eq!(run(scan_float_eq, "if x != 1e-9 {}").len(), 1);
        assert_eq!(run(scan_float_eq, "if 0.5 == y {}").len(), 1);
        assert_eq!(run(scan_float_eq, "if x == -1.0 {}").len(), 1);
        assert!(run(scan_float_eq, "if n == 0 {}").is_empty());
        assert!(run(scan_float_eq, "if n <= 0.5 {}").is_empty());
        assert!(run(scan_float_eq, "if a.to_bits() == b.to_bits() {}").is_empty());
    }

    #[test]
    fn float_eq_flags_f64_constants() {
        assert_eq!(run(scan_float_eq, "if x == f64::INFINITY {}").len(), 1);
        assert_eq!(run(scan_float_eq, "if f64::NAN == x {}").len(), 1);
    }

    #[test]
    fn panic_paths_match_unwrap_expect_panic() {
        assert_eq!(run(scan_panic_paths, "x.unwrap();").len(), 1);
        assert_eq!(run(scan_panic_paths, "x.expect(\"m\");").len(), 1);
        assert_eq!(run(scan_panic_paths, "panic!(\"boom\");").len(), 1);
        assert!(run(scan_panic_paths, "x.unwrap_or(0);").is_empty());
        assert!(run(scan_panic_paths, "x.unwrap_or_else(f);").is_empty());
        assert!(run(scan_panic_paths, "debug_assert!(x);").is_empty());
    }

    #[test]
    fn casts_match_only_u64_f64() {
        assert_eq!(run(scan_bare_casts, "let x = secs as f64;").len(), 1);
        assert_eq!(run(scan_bare_casts, "let x = n as u64;").len(), 1);
        assert!(run(scan_bare_casts, "let x = n as usize;").is_empty());
        assert!(run(scan_bare_casts, "let x = n as u8;").is_empty());
    }

    #[test]
    fn durable_io_flags_unwrapped_io_calls() {
        assert_eq!(
            run(scan_durable_io, "let f = File::open(p).unwrap();").len(),
            1
        );
        assert_eq!(
            run(scan_durable_io, "std::fs::write(p, d).expect(\"w\");").len(),
            1
        );
        assert_eq!(run(scan_durable_io, "f.write_all(&buf).unwrap();").len(), 1);
        assert_eq!(
            run(scan_durable_io, "fs::create_dir_all(dir).unwrap();").len(),
            1
        );
        // Nested parens in the arguments are matched through.
        assert_eq!(
            run(scan_durable_io, "fs::write(p, render(a, b)).unwrap();").len(),
            1
        );
    }

    #[test]
    fn durable_io_flags_dropped_write_results() {
        assert_eq!(run(scan_durable_io, "f.write_all(&buf);").len(), 1);
        assert_eq!(run(scan_durable_io, "File::create(path);").len(), 1);
        assert_eq!(run(scan_durable_io, "std::fs::write(p, d);").len(), 1);
    }

    #[test]
    fn durable_io_leaves_handled_io_alone() {
        assert!(run(scan_durable_io, "f.write_all(&buf)?;").is_empty());
        assert!(run(scan_durable_io, "let r = File::create(path);").is_empty());
        assert!(run(scan_durable_io, "if fs::write(p, d).is_err() { fail(); }").is_empty());
        assert!(run(scan_durable_io, "return file.write_all(b);").is_empty());
        // Mutex/RwLock poison unwraps are not io.
        assert!(run(scan_durable_io, "let g = lock.read().unwrap();").is_empty());
        assert!(run(scan_durable_io, "let g = lock.write().unwrap();").is_empty());
        // Non-io unwraps belong to D5, not D7.
        assert!(run(scan_durable_io, "let v = map.get(k).unwrap();").is_empty());
    }

    #[test]
    fn test_scope_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); thread_rng(); } }";
        assert!(run(scan_panic_paths, src).is_empty());
        assert!(run(scan_ambient_rng, src).is_empty());
    }

    #[test]
    fn relaxed_ordering_matches_only_atomics() {
        assert_eq!(
            run(scan_relaxed_ordering, "x.fetch_add(1, Ordering::Relaxed);").len(),
            1
        );
        assert_eq!(
            run(
                scan_relaxed_ordering,
                "y.load(std::sync::atomic::Ordering::Relaxed)"
            )
            .len(),
            1
        );
        // The cmp enum never spells `Relaxed`.
        assert!(run(scan_relaxed_ordering, "if ord == Ordering::Equal {}").is_empty());
        assert!(run(scan_relaxed_ordering, "x.load(Ordering::Acquire)").is_empty());
        assert!(run(scan_relaxed_ordering, "let Relaxed = mode;").is_empty());
    }

    #[test]
    fn classify_is_table_driven() {
        // (path, expected kind, expected crate)
        let table: &[(&str, FileKind, &str)] = &[
            // Backslash separators normalize.
            ("crates\\core\\src\\fleet.rs", FileKind::Lib, "core"),
            (
                "crates\\core\\tests\\gateway.rs",
                FileKind::TestLike,
                "core",
            ),
            // A crate literally named `fixtures` or `tests` is still Lib.
            ("crates/fixtures/src/lib.rs", FileKind::Lib, "fixtures"),
            ("crates/tests/src/lib.rs", FileKind::Lib, "tests"),
            // A *file* named tests.rs/fixtures.rs is not a tests directory.
            ("crates/core/src/tests.rs", FileKind::Lib, "core"),
            ("crates/core/src/fixtures.rs", FileKind::Lib, "core"),
            // Directory segments still classify as before.
            (
                "crates/lint/tests/fixtures/d8.rs",
                FileKind::TestLike,
                "lint",
            ),
            ("crates/core/examples/demo.rs", FileKind::TestLike, "core"),
            (
                "crates/bench/src/bin/store_faults.rs",
                FileKind::Bin,
                "bench",
            ),
            // `src/bin` must be those exact segments, in order.
            ("crates/core/src/binary.rs", FileKind::Lib, "core"),
        ];
        for (path, kind, krate) in table {
            let info = FileInfo::classify(path);
            assert_eq!(info.kind, *kind, "kind of {path}");
            assert_eq!(info.krate, *krate, "crate of {path}");
        }
    }

    #[test]
    fn classify_file_kinds() {
        assert_eq!(
            FileInfo::classify("crates/core/src/fleet.rs").kind,
            FileKind::Lib
        );
        assert_eq!(FileInfo::classify("crates/core/src/fleet.rs").krate, "core");
        assert_eq!(
            FileInfo::classify("crates/bench/src/bin/fleet.rs").kind,
            FileKind::Bin
        );
        assert_eq!(
            FileInfo::classify("crates/bench/benches/agent.rs").kind,
            FileKind::Bin
        );
        assert_eq!(
            FileInfo::classify("tests/chaos.rs").kind,
            FileKind::TestLike
        );
        assert_eq!(
            FileInfo::classify("examples/quickstart.rs").kind,
            FileKind::TestLike
        );
        assert_eq!(
            FileInfo::classify("crates/lint/tests/fixtures/d1.rs").kind,
            FileKind::TestLike
        );
        assert_eq!(
            FileInfo::classify("crates/nn/tests/ols_exact.rs").kind,
            FileKind::TestLike
        );
    }
}
