//! A comment/string/attribute-aware lexer for Rust source.
//!
//! The engine deliberately does **not** parse Rust (no syn, no rustc): the
//! domain rules (D1–D6) are all recognizable from short token sequences, and
//! a full parse would couple the lint to a compiler version. What a token
//! matcher *must* get right to avoid false positives is the lexical layer:
//! a `thread_rng` inside a string literal, a doc comment, or a `//` comment
//! is not a call. This lexer produces a token stream with those regions
//! removed, while capturing two kinds of structured comments on the side:
//!
//! * allow directives — `// lint: allow(D5) — reason` — which suppress a
//!   rule on the same line or the next code line;
//! * fixture markers — `//~ D5` — used by the fixture corpus and `--smoke`
//!   self-check to declare where a diagnostic is expected;
//! * inventory directives — `// lint-inventory: keebo.x:counter, keebo.y` —
//!   which stand in for DESIGN.md's metrics inventory in single-file
//!   fixtures so D12 is testable without the real document.
//!
//! A directive comment may carry a trailing fixture marker
//! (`// lint-inventory: keebo.gone:gauge //~ D12`) so fixtures can expect
//! a diagnostic anchored at the directive's own line.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`as`, `Instant`, `unwrap`, ...).
    Ident,
    /// A single punctuation character (`:`, `=`, `!`, `{`, ...).
    Punct,
    /// Numeric literal, integer or float, including any suffix.
    Num,
    /// String/char/byte literal of any flavor. The verbatim source text
    /// (including quotes and any `r#`/`b` prefix) is kept in `text` so
    /// cross-artifact rules (D12 metric-name audit) can read the content;
    /// token matchers stay safe because they key on `TokKind::Ident`.
    Lit,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One token with its source position (1-based line/column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// Set by the scope pass: the token sits in test-only code.
    pub in_test: bool,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// For a plain (non-raw, non-byte) string literal, the content between
    /// the quotes; `None` for every other token. Escapes are left verbatim —
    /// the callers match exact metric-name strings, which never contain any.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokKind::Lit {
            return None;
        }
        let t = self.text.as_str();
        if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
            Some(&t[1..t.len() - 1])
        } else {
            None
        }
    }

    /// True for numeric literals that are floats (`1.0`, `1e-9`, `2f64`).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        if t.ends_with("f32") || t.ends_with("f64") {
            return true;
        }
        // Integer suffixes rule the rest out even if an `e` appears (there
        // is no integer exponent syntax, so `e` implies float otherwise).
        for suf in [
            "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        ] {
            if t.ends_with(suf) {
                return false;
            }
        }
        t.contains('.') || t.contains('e') || t.contains('E')
    }
}

/// An allow directive parsed from a comment:
/// `// lint: allow(D5) — justification text`.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule id, e.g. "D5".
    pub rule: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Justification text after the rule (may be empty — the engine turns
    /// an empty reason into a diagnostic of its own).
    pub reason: String,
}

/// A fixture expectation marker: `//~ D3` (same line as the pattern).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Marker {
    pub rule: String,
    pub line: u32,
}

/// A fixture-side metrics inventory row:
/// `// lint-inventory: keebo.name:kind` (kind optional).
#[derive(Debug, Clone)]
pub struct InventoryDirective {
    pub name: String,
    /// `counter` / `gauge` / `histogram`, or empty when unspecified.
    pub kind: String,
    pub line: u32,
}

/// Output of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub allows: Vec<AllowDirective>,
    pub markers: Vec<Marker>,
    pub inventory: Vec<InventoryDirective>,
}

/// Lexes `src`, discarding comments (while collecting allow directives and
/// fixture markers from their text). Literal tokens keep their verbatim
/// source text so content-aware rules can read them.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advances past `n` bytes, updating line/col.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < b.len() {
        let c = b[i] as char;
        let start_line = line;
        let start_col = col;

        // Line comments (incl. doc comments). Capture text for directives.
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = src[i..].find('\n').map(|n| i + n).unwrap_or(b.len());
            let text = &src[i..end];
            parse_comment(text, start_line, &mut out);
            bump!(end - i);
            continue;
        }
        // Block comments, nested.
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            bump!(j - i);
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br##"..."## (and byte strings).
        if (c == 'r' || c == 'b') && is_raw_string_start(b, i) {
            let j = skip_raw_string(b, i);
            out.tokens.push(Tok {
                kind: TokKind::Lit,
                text: src[i..j].to_string(),
                line: start_line,
                col: start_col,
                in_test: false,
            });
            bump!(j - i);
            continue;
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            let open = if c == '"' { i } else { i + 1 };
            let mut j = open + 1;
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                } else if b[j] == b'"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Lit,
                text: src[i..j].to_string(),
                line: start_line,
                col: start_col,
                in_test: false,
            });
            bump!(j - i);
            continue;
        }
        // Byte-char literals: b'x', b'\n'. Without this, the `b` lexes as
        // an ident and the quote desynchronizes the char/lifetime logic.
        if c == 'b' && b.get(i + 1) == Some(&b'\'') {
            let mut j = i + 2;
            if b.get(j) == Some(&b'\\') {
                j += 2;
            }
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            j = (j + 1).min(b.len());
            out.tokens.push(Tok {
                kind: TokKind::Lit,
                text: src[i..j].to_string(),
                line: start_line,
                col: start_col,
                in_test: false,
            });
            bump!(j - i);
            continue;
        }
        // Char literal vs lifetime/label.
        if c == '\'' {
            let next = b.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(n) if is_ident_char(n) => {
                    // `'a'` is a char; `'a` followed by anything but `'` is
                    // a lifetime. Scan the ident run and check for a quote.
                    let mut j = i + 1;
                    while j < b.len() && is_ident_char(b[j]) {
                        j += 1;
                    }
                    b.get(j) == Some(&b'\'')
                }
                Some(_) => true, // e.g. '(' — a char literal of punctuation
                None => false,
            };
            if is_char {
                let mut j = i + 1;
                if b.get(j) == Some(&b'\\') {
                    j += 2;
                }
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                j = (j + 1).min(b.len());
                out.tokens.push(Tok {
                    kind: TokKind::Lit,
                    text: src[i..j].to_string(),
                    line: start_line,
                    col: start_col,
                    in_test: false,
                });
                bump!(j - i);
            } else {
                let mut j = i + 1;
                while j < b.len() && is_ident_char(b[j]) {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[i..j].to_string(),
                    line: start_line,
                    col: start_col,
                    in_test: false,
                });
                bump!(j - i);
            }
            continue;
        }
        // Numbers (must come before ident so `1e9` lexes whole).
        if c.is_ascii_digit() {
            let j = skip_number(b, i);
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text: src[i..j].to_string(),
                line: start_line,
                col: start_col,
                in_test: false,
            });
            bump!(j - i);
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(b[i]) {
            let mut j = i + 1;
            while j < b.len() && is_ident_char(b[j]) {
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: src[i..j].to_string(),
                line: start_line,
                col: start_col,
                in_test: false,
            });
            bump!(j - i);
            continue;
        }
        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // Everything else: single punctuation character.
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: start_line,
            col: start_col,
            in_test: false,
        });
        bump!(1);
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True at `r"`, `r#"`, `br"`, `br#"` etc.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Skips a raw string starting at `i`, returning the index past it.
fn skip_raw_string(b: &[u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    b.len()
}

/// Skips a numeric literal (int or float, with suffix), returning the index
/// past it. Handles `0x...`, `1_000`, `1.5`, `1e-9`, `2.5f64`, and does not
/// eat the `.` of a method call (`1.max(2)`) or a range (`0..n`).
fn skip_number(b: &[u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'0' && matches!(b.get(j + 1), Some(b'x' | b'o' | b'b')) {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return j;
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fraction: a dot followed by a digit (not `..` and not `.method()`).
    if b.get(j) == Some(&b'.') && b.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    // Exponent.
    if matches!(b.get(j), Some(b'e' | b'E')) {
        let mut k = j + 1;
        if matches!(b.get(k), Some(b'+' | b'-')) {
            k += 1;
        }
        if b.get(k).is_some_and(|c| c.is_ascii_digit()) {
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (`f64`, `u32`, ...).
    while j < b.len() && is_ident_char(b[j]) {
        j += 1;
    }
    j
}

/// Parses directives out of one line comment.
fn parse_comment(text: &str, line: u32, out: &mut Lexed) {
    // Fixture marker: `//~ D3` (possibly several per line: `//~ D3 D5`).
    if let Some(rest) = text.strip_prefix("//~") {
        for word in rest.split_whitespace() {
            if is_rule_id(word) {
                out.markers.push(Marker {
                    rule: word.to_string(),
                    line,
                });
            }
        }
        return;
    }
    // A directive comment may end in an embedded marker, so a fixture can
    // expect a diagnostic anchored at the directive's own line.
    let text = if let Some(p) = text.find("//~").filter(|&p| p > 0) {
        for word in text[p + 3..].split_whitespace() {
            if is_rule_id(word) {
                out.markers.push(Marker {
                    rule: word.to_string(),
                    line,
                });
            }
        }
        &text[..p]
    } else {
        text
    };
    // Allow directive: `// lint: allow(D5) — reason` (also `///`-style and
    // `//!`-style so module-level docs can carry one for their first item).
    let body = text.trim_start_matches('/').trim_start_matches('!').trim();
    // Inventory directive: `// lint-inventory: keebo.x:counter, keebo.y`.
    if let Some(rest) = body.strip_prefix("lint-inventory:") {
        for entry in rest.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, kind) = match entry.split_once(':') {
                Some((n, k)) => (n.trim(), k.trim()),
                None => (entry, ""),
            };
            if name.starts_with("keebo.") {
                out.inventory.push(InventoryDirective {
                    name: name.to_string(),
                    kind: kind.to_lowercase(),
                    line,
                });
            }
        }
        return;
    }
    let Some(rest) = body.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    let rules = &rest[..close];
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '-', ':'])
        .trim()
        .to_string();
    for rule in rules.split(',') {
        let rule = rule.trim();
        if is_rule_id(rule) {
            out.allows.push(AllowDirective {
                rule: rule.to_string(),
                line,
                reason: reason.clone(),
            });
        }
    }
}

fn is_rule_id(s: &str) -> bool {
    s.len() >= 2 && s.starts_with('D') && s[1..].chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = r##"
            // thread_rng in a comment
            /* Instant::now in /* nested */ block */
            let s = "thread_rng()";
            let r = r#"SystemTime::now()"#;
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'q'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lit).count(),
            1,
            "one char literal"
        );
    }

    #[test]
    fn float_literals_are_classified() {
        let toks =
            lex("let a = 1.0; let b = 1e-9; let c = 2f64; let d = 3; let e = 0x1E; let f = 4u64;")
                .tokens;
        let nums: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Num).collect();
        let flags: Vec<bool> = nums.iter().map(|t| t.is_float_literal()).collect();
        assert_eq!(flags, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn method_call_on_int_does_not_eat_dot() {
        let toks = lex("let x = 1.max(2);").tokens;
        assert!(toks.iter().any(|t| t.is_ident("max")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "1"));
    }

    #[test]
    fn allow_directive_parses_rule_and_reason() {
        let lexed = lex("x(); // lint: allow(D5) — documented invariant\n");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rule, "D5");
        assert_eq!(lexed.allows[0].reason, "documented invariant");
        assert_eq!(lexed.allows[0].line, 1);
    }

    #[test]
    fn allow_directive_supports_multiple_rules_and_plain_dash() {
        let lexed = lex("// lint: allow(D1, D4) - wall-time metric only\n");
        let rules: Vec<_> = lexed.allows.iter().map(|a| a.rule.as_str()).collect();
        assert_eq!(rules, vec!["D1", "D4"]);
        assert!(lexed.allows[0].reason.contains("wall-time"));
    }

    #[test]
    fn fixture_markers_parse() {
        let lexed = lex("thread_rng(); //~ D2\n");
        assert_eq!(
            lexed.markers,
            vec![Marker {
                rule: "D2".into(),
                line: 1
            }]
        );
    }

    #[test]
    fn literals_keep_their_text() {
        let toks = lex("let a = \"keebo.x\"; let b = r#\"raw\"#; let c = b\"bytes\";").tokens;
        let lits: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["\"keebo.x\"", "r#\"raw\"#", "b\"bytes\""]);
        let contents: Vec<Option<&str>> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.str_content())
            .collect();
        // Only the plain string exposes content; raw/byte forms return None.
        assert_eq!(contents, vec![Some("keebo.x"), None, None]);
    }

    #[test]
    fn inventory_directive_parses() {
        let lexed = lex("// lint-inventory: keebo.a.total:counter, keebo.b, other.c:gauge\n");
        assert_eq!(lexed.inventory.len(), 2);
        assert_eq!(lexed.inventory[0].name, "keebo.a.total");
        assert_eq!(lexed.inventory[0].kind, "counter");
        assert_eq!(lexed.inventory[1].name, "keebo.b");
        assert_eq!(lexed.inventory[1].kind, "");
    }

    #[test]
    fn directive_comments_can_embed_a_marker() {
        let lexed = lex("// lint-inventory: keebo.gone:gauge //~ D12\n");
        assert_eq!(lexed.inventory.len(), 1);
        assert_eq!(lexed.inventory[0].name, "keebo.gone");
        assert_eq!(
            lexed.markers,
            vec![Marker {
                rule: "D12".into(),
                line: 1
            }]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let s = \"a\nb\";\nInstant::now();\n";
        let toks = lex(src).tokens;
        let inst = toks.iter().find(|t| t.is_ident("Instant")).unwrap();
        assert_eq!(inst.line, 3);
    }
}
