//! The ratcheted baseline (`lint-baseline.toml`).
//!
//! Violations that existed when a rule landed are frozen in the baseline
//! with a justification; the gate then only ratchets down:
//!
//! * a `(rule, file)` count **above** its baseline entry fails the run
//!   (new violation introduced);
//! * a count **below** the entry also fails — the ratchet direction is
//!   enforced, so the entry must be shrunk (or deleted at zero) in the same
//!   change and the improvement cannot silently regress;
//! * any `(rule, file)` pair with no entry fails outright.
//!
//! The file is a deliberately tiny TOML subset — `[[allow]]` tables with
//! string/integer keys — parsed here without a TOML dependency. Everything
//! the parser accepts, [`write`] can produce, and vice versa.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One frozen entry: up to `count` diagnostics of `rule` in `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub count: usize,
    pub reason: String,
}

/// The parsed baseline, keyed by (rule, file).
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String), BaselineEntry>,
}

/// A baseline parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl Baseline {
    pub fn entries(&self) -> impl Iterator<Item = &BaselineEntry> {
        self.entries.values()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, rule: &str, file: &str) -> Option<&BaselineEntry> {
        self.entries.get(&(rule.to_string(), file.to_string()))
    }

    pub fn insert(&mut self, entry: BaselineEntry) {
        self.entries
            .insert((entry.rule.clone(), entry.file.clone()), entry);
    }

    /// Parses the TOML subset. Unknown keys and malformed lines are errors:
    /// a baseline that silently drops entries would un-freeze violations.
    pub fn parse(text: &str) -> Result<Baseline, ParseError> {
        let mut out = Baseline::default();
        let mut current: Option<BaselineEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(entry) = current.take() {
                    finish(entry, &mut out, lineno)?;
                }
                current = Some(BaselineEntry {
                    rule: String::new(),
                    file: String::new(),
                    count: 0,
                    reason: String::new(),
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some(entry) = current.as_mut() else {
                return Err(ParseError {
                    line: lineno,
                    message: "key outside an [[allow]] table".to_string(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => entry.rule = unquote(value, lineno)?,
                "file" => entry.file = unquote(value, lineno)?,
                "reason" => entry.reason = unquote(value, lineno)?,
                "count" => {
                    entry.count = value.parse().map_err(|_| ParseError {
                        line: lineno,
                        message: format!("count must be an integer, got `{value}`"),
                    })?;
                }
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown key `{other}`"),
                    });
                }
            }
        }
        if let Some(entry) = current.take() {
            let last = text.lines().count();
            finish(entry, &mut out, last)?;
        }
        Ok(out)
    }

    /// Renders the baseline back to its canonical text form.
    pub fn write(&self) -> String {
        let mut out = String::from(
            "# kwo-lint ratcheted baseline.\n\
             # Each entry freezes pre-existing diagnostics of `rule` in `file` at `count`.\n\
             # Counts may only go down: lower the count (or delete the entry) when you\n\
             # burn a violation down; the gate fails if a count is exceeded or a new\n\
             # (rule, file) pair appears. Regenerate with `kwo-lint --write-baseline`\n\
             # (justifications are preserved by hand — review the diff).\n",
        );
        for e in self.entries.values() {
            let _ = write!(
                out,
                "\n[[allow]]\nrule = \"{}\"\nfile = \"{}\"\ncount = {}\nreason = \"{}\"\n",
                e.rule, e.file, e.count, e.reason
            );
        }
        out
    }
}

fn finish(entry: BaselineEntry, out: &mut Baseline, lineno: usize) -> Result<(), ParseError> {
    if entry.rule.is_empty() || entry.file.is_empty() {
        return Err(ParseError {
            line: lineno,
            message: "[[allow]] table needs both `rule` and `file`".to_string(),
        });
    }
    if entry.reason.is_empty() {
        return Err(ParseError {
            line: lineno,
            message: format!(
                "[[allow]] for {} in {} has no reason — baseline entries must be justified",
                entry.rule, entry.file
            ),
        });
    }
    out.insert(entry);
    Ok(())
}

fn unquote(value: &str, lineno: usize) -> Result<String, ParseError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ParseError {
            line: lineno,
            message: format!("expected a quoted string, got `{value}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.insert(BaselineEntry {
            rule: "D5".into(),
            file: "crates/x/src/lib.rs".into(),
            count: 3,
            reason: "poisoned-lock expects".into(),
        });
        b.insert(BaselineEntry {
            rule: "D1".into(),
            file: "crates/y/src/a.rs".into(),
            count: 1,
            reason: "wall-time metric".into(),
        });
        let text = b.write();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        let e = parsed.get("D5", "crates/x/src/lib.rs").unwrap();
        assert_eq!(e.count, 3);
        assert_eq!(e.reason, "poisoned-lock expects");
    }

    #[test]
    fn reasonless_entry_is_rejected() {
        let text = "[[allow]]\nrule = \"D5\"\nfile = \"f.rs\"\ncount = 1\n";
        let err = Baseline::parse(text).unwrap_err();
        assert!(err.message.contains("no reason"), "{err}");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(
            Baseline::parse("rule = \"D5\"\n").is_err(),
            "key outside table"
        );
        assert!(
            Baseline::parse("[[allow]]\nrule = D5\n").is_err(),
            "unquoted value"
        );
        assert!(
            Baseline::parse("[[allow]]\nrule = \"D5\"\nfile = \"f\"\ncount = x\nreason = \"r\"\n")
                .is_err(),
            "bad count"
        );
        assert!(
            Baseline::parse("[[allow]]\nbogus = \"v\"\n").is_err(),
            "unknown key"
        );
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\n[[allow]]\n# inline\nrule = \"D3\"\nfile = \"f.rs\"\ncount = 2\nreason = \"r\"\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.get("D3", "f.rs").unwrap().count, 2);
    }

    #[test]
    fn empty_baseline_parses() {
        assert!(Baseline::parse("# nothing frozen\n").unwrap().is_empty());
        assert!(Baseline::parse("").unwrap().is_empty());
    }
}
