//! Workspace symbol index and the structural concurrency rules (D8–D10)
//! plus the cross-artifact metrics audit (D12).
//!
//! The per-file token rules in `rules.rs` cannot see a lock held across a
//! callback or a `Condvar` waited on outside its predicate loop. This module
//! extracts per-file *facts* — lock-wrapper functions (anything returning a
//! `MutexGuard`), `Condvar`-typed symbols, `keebo.*` metric-name literals —
//! aggregates them per crate, and runs the rules that need that context:
//!
//! * **D8 lock-order** — a static acquisition graph per crate (an edge for
//!   every lock taken while another guard is live); any cycle — two locks
//!   ever taken in both orders, or a re-acquisition of a held lock — fails.
//! * **D9 condvar-wait-loop** — `Condvar::wait`/`wait_timeout` must sit
//!   inside a `while`/`loop` block within its function (spurious wakeups);
//!   `wait_while` carries its predicate and is exempt.
//! * **D10 guard-across-boundary** — no `MutexGuard` live across
//!   `catch_unwind`, a channel `.send(..)`, or a call of a caller-supplied
//!   callback parameter (`impl Fn*`). The PR-8 `BatchExit`/`GaugeGuard`
//!   ordering bug is exactly this shape.
//! * **D12 metrics-inventory** — every `keebo.*` metric-name string in
//!   source must be registered with one consistent kind and documented in
//!   DESIGN.md's metrics inventory table; stale inventory rows are flagged.
//!
//! Guard tracking is intentionally approximate but deterministic: `let`-bound
//! guards live to the end of their block (or an explicit `drop(name)`),
//! unbound guard temporaries live to the end of their statement, poison
//! recovery chains (`.unwrap_or_else(PoisonError::into_inner)` and friends)
//! stay guard-valued, reassignment (`g = cv.wait(g)`) keeps a guard alive,
//! and the place expression of `*lock(&x) = rhs` holds no guard during
//! `rhs` (Rust evaluates the right side first). Closures are fresh contexts:
//! a held-lock set never crosses a `fn`/closure boundary.

use crate::lexer::{Tok, TokKind};
use crate::parse::{BlockKind, FileStructure};
use crate::rules::{matching_close_paren, FileInfo};
use std::collections::{BTreeMap, BTreeSet};

/// Metadata for the rules implemented here (D11 lives in the `rules.rs`
/// table; it is a plain token rule).
pub const D8_MESSAGE: &str = "locks acquired in conflicting orders within this crate: a cycle in the static acquisition graph can deadlock — pick one global order and stick to it";
pub const D9_MESSAGE: &str = "Condvar wait outside a predicate loop: spurious wakeups make the woken condition unreliable — re-check it in a `while`/`loop` (or use `wait_while`)";
pub const D10_MESSAGE: &str = "MutexGuard live across an unwind/callback/channel boundary: a panic or re-entrant call strands or deadlocks the lock — drop or scope the guard first";
pub const D12_MESSAGE: &str = "metric drifted from DESIGN.md's `keebo.*` inventory — registration names, kinds, and inventory rows must agree";

/// One finding from a structural/workspace rule, shaped like a
/// [`crate::diag::Diagnostic`] minus nothing — the engine copies it over.
#[derive(Debug, Clone)]
pub struct StructFinding {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub name: &'static str,
    pub snippet: String,
    pub message: &'static str,
}

/// One `keebo.*` metric-name literal in source.
#[derive(Debug, Clone)]
pub struct MetricUse {
    pub name: String,
    /// `counter` / `gauge` / `histogram` when the literal sits directly in
    /// that registration call; `None` when the name travels through a
    /// variable first.
    pub kind: Option<&'static str>,
    pub line: u32,
    pub col: u32,
}

/// One row of the metrics inventory (DESIGN.md table or, in fixture mode,
/// a `// lint-inventory:` directive).
#[derive(Debug, Clone)]
pub struct InventoryRow {
    pub name: String,
    /// Lowercased kind cell; empty when unspecified.
    pub kind: String,
    pub file: String,
    pub line: u32,
}

/// An edge in the lock-acquisition graph: `acquired` was taken at the site
/// while a guard on `held` was live.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: u32,
    pub col: u32,
}

/// Everything the workspace rules need to know about one file.
#[derive(Debug)]
pub struct FileFacts {
    /// Real repo-relative path (diagnostics anchor).
    pub real_path: String,
    /// Classification by the pretend path (rule scoping).
    pub info: FileInfo,
    pub tokens: Vec<Tok>,
    pub structure: FileStructure,
    /// Functions in this file whose return type mentions `MutexGuard`.
    pub lock_wrappers: BTreeSet<String>,
    /// Symbols declared with a `Condvar`-bearing type or initializer.
    pub condvars: BTreeSet<String>,
    /// `keebo.*` metric-name literals (non-test positions only).
    pub metrics: Vec<MetricUse>,
}

impl FileFacts {
    pub fn collect(
        real_path: &str,
        info: FileInfo,
        tokens: Vec<Tok>,
        structure: FileStructure,
    ) -> FileFacts {
        let lock_wrappers = find_lock_wrappers(&tokens, &structure);
        let condvars = find_condvars(&tokens);
        let metrics = find_metric_uses(&tokens);
        FileFacts {
            real_path: real_path.to_string(),
            info,
            tokens,
            structure,
            lock_wrappers,
            condvars,
            metrics,
        }
    }
}

/// Functions whose declared return type mentions `MutexGuard`: calling one
/// is a lock acquisition. Checks the slice between the parameter list's `)`
/// and the body `{`, so a function merely *taking* a guard does not count.
fn find_lock_wrappers(tokens: &[Tok], structure: &FileStructure) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for b in &structure.blocks {
        let BlockKind::Fn { ref name } = b.kind else {
            continue;
        };
        let sig = &tokens[b.intro..b.open.min(tokens.len())];
        let Some(p_open) = sig.iter().position(|t| t.is_punct('(')) else {
            continue;
        };
        let Some(p_close) = matching_close_paren(sig, p_open) else {
            continue;
        };
        if sig[p_close..].iter().any(|t| t.is_ident("MutexGuard")) {
            out.insert(name.clone());
        }
    }
    out
}

/// Symbols whose declaration mentions `Condvar`: struct fields and `let`
/// bindings (`done: Condvar`, `cv: Arc<Condvar>`, `let cv = Condvar::new()`,
/// `let cv = Arc::new(Condvar::new())`).
fn find_condvars(tokens: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || !t.is_ident("Condvar") {
            continue;
        }
        // Walk back over type/initializer scaffolding to the `:` or `=`
        // that names the symbol.
        let mut k = i;
        let mut steps = 0;
        while k > 0 && steps < 10 {
            k -= 1;
            steps += 1;
            let p = &tokens[k];
            if p.is_punct(':') {
                if k > 0 && tokens[k - 1].is_punct(':') {
                    k -= 1; // `::` path separator — keep walking
                    continue;
                }
                if let Some(name) = binding_name_before(tokens, k) {
                    out.insert(name);
                }
                break;
            }
            if p.is_punct('=') {
                if let Some(name) = binding_name_before(tokens, k) {
                    out.insert(name);
                }
                break;
            }
            let scaffolding =
                p.kind == TokKind::Ident || p.is_punct('<') || p.is_punct('(') || p.is_punct('&');
            if !scaffolding {
                break;
            }
        }
    }
    out
}

/// The identifier naming a binding, just before the `:`/`=` at `at`
/// (skipping a `mut`).
fn binding_name_before(tokens: &[Tok], at: usize) -> Option<String> {
    let mut k = at.checked_sub(1)?;
    if tokens[k].is_ident("mut") {
        k = k.checked_sub(1)?;
    }
    let t = &tokens[k];
    if t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("let") {
        Some(t.text.clone())
    } else {
        None
    }
}

/// `keebo.*` string literals, with the registration kind when the literal
/// sits directly inside `counter(..)` / `gauge(..)` / `histogram(..)`.
fn find_metric_uses(tokens: &[Tok]) -> Vec<MetricUse> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(content) = t.str_content() else {
            continue;
        };
        // A bare `"keebo."` is the audit's own prefix probe (this file, the
        // lexer), not a metric registration — require an actual name.
        if !content.starts_with("keebo.") || content.len() == "keebo.".len() {
            continue;
        }
        let kind = if i >= 2 && tokens[i - 1].is_punct('(') {
            match tokens[i - 2].text.as_str() {
                "counter" => Some("counter"),
                "gauge" => Some("gauge"),
                "histogram" => Some("histogram"),
                _ => None,
            }
        } else {
            None
        };
        out.push(MetricUse {
            name: content.to_string(),
            kind,
            line: t.line,
            col: t.col,
        });
    }
    out
}

// ---- guard tracking (D8 edges, D9, D10) ------------------------------------

/// Output of the concurrency walk over one file.
#[derive(Debug, Default)]
pub struct ConcurrencyReport {
    pub edges: Vec<LockEdge>,
    pub findings: Vec<StructFinding>,
}

#[derive(Debug)]
struct Guard {
    /// `let`-bound name, `None` for statement temporaries.
    name: Option<String>,
    lock: String,
    /// Block index owning the binding (named guards die at its `}`).
    born_block: usize,
    /// Temporaries die at the next statement boundary.
    temp: bool,
}

/// Walks every `fn`/closure body in `facts`, tracking live guards, and
/// reports D9/D10 findings plus the lock-acquisition edges for D8.
pub fn scan_concurrency(
    facts: &FileFacts,
    wrappers: &BTreeSet<String>,
    condvars: &BTreeSet<String>,
) -> ConcurrencyReport {
    let mut report = ConcurrencyReport::default();
    let toks = &facts.tokens;
    let st = &facts.structure;
    // Map from `{` token index to block index, to skip nested body roots.
    let open_to_block: BTreeMap<usize, usize> = st
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, b)| (b.open, bi))
        .collect();

    for root in st.body_roots() {
        let block = &st.blocks[root];
        if toks.get(block.open).is_some_and(|t| t.in_test) {
            continue;
        }
        let callback_params = match block.kind {
            BlockKind::Fn { .. } => callback_param_names(&toks[block.intro..block.open]),
            _ => BTreeSet::new(),
        };
        let mut guards: Vec<Guard> = Vec::new();
        let mut j = block.open + 1;
        let end = block.close.min(toks.len());
        while j < end {
            // Nested fn/closure bodies are fresh contexts — skip them here;
            // they are walked as their own roots.
            if let Some(&bi) = open_to_block.get(&j) {
                if st.blocks[bi].is_body_root() {
                    j = st.blocks[bi].close.saturating_add(1).max(j + 1);
                    continue;
                }
            }
            let t = &toks[j];

            if t.is_punct(';') || t.is_punct('{') {
                guards.retain(|g| !g.temp);
                j += 1;
                continue;
            }
            if t.is_punct('}') {
                let closing = st.block_at(j);
                guards.retain(|g| !g.temp && Some(g.born_block) != closing);
                j += 1;
                continue;
            }

            // Explicit `drop(name)`.
            if t.is_ident("drop")
                && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(j + 3).is_some_and(|n| n.is_punct(')'))
            {
                if let Some(victim) = toks.get(j + 2).filter(|n| n.kind == TokKind::Ident) {
                    guards.retain(|g| g.name.as_deref() != Some(victim.text.as_str()));
                }
            }

            // Lock acquisition: `.lock()` method or wrapper call.
            if let Some(acq) = detect_acquisition(toks, j, wrappers) {
                for g in &guards {
                    report.edges.push(LockEdge {
                        held: g.lock.clone(),
                        acquired: acq.lock.clone(),
                        file: facts.real_path.clone(),
                        line: t.line,
                        col: t.col,
                    });
                }
                if !acq.place_expr {
                    guards.push(Guard {
                        name: acq.binding.clone(),
                        lock: acq.lock,
                        born_block: st.block_at(j).unwrap_or(usize::MAX),
                        temp: acq.binding.is_none(),
                    });
                }
                j += 1;
                continue;
            }

            // D9: Condvar wait outside a predicate loop.
            if (t.is_ident("wait") || t.is_ident("wait_timeout"))
                && j >= 2
                && toks[j - 1].is_punct('.')
                && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                && toks[j - 2].kind == TokKind::Ident
                && condvars.contains(&toks[j - 2].text)
                && !st.in_loop_within_body(j)
            {
                report.findings.push(StructFinding {
                    file: facts.real_path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: "D9",
                    name: "condvar-wait-loop",
                    snippet: format!("{}.{}(..)", toks[j - 2].text, t.text),
                    message: D9_MESSAGE,
                });
            }

            // D10: boundary crossings while a guard is live.
            if !guards.is_empty() {
                let crossing = if t.is_ident("catch_unwind")
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                {
                    Some("catch_unwind(..)".to_string())
                } else if t.is_ident("send")
                    && j >= 1
                    && toks[j - 1].is_punct('.')
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                {
                    Some(".send(..)".to_string())
                } else if t.kind == TokKind::Ident
                    && callback_params.contains(&t.text)
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                    && (j == 0 || !toks[j - 1].is_punct('.'))
                {
                    Some(format!("{}(..) callback", t.text))
                } else {
                    None
                };
                if let Some(what) = crossing {
                    // The most recent guard is the tightest-scoped offender.
                    let lock = guards.last().map(|g| g.lock.clone()).unwrap_or_default();
                    report.findings.push(StructFinding {
                        file: facts.real_path.clone(),
                        line: t.line,
                        col: t.col,
                        rule: "D10",
                        name: "guard-across-boundary",
                        snippet: format!("{what} under `{lock}` guard"),
                        message: D10_MESSAGE,
                    });
                }
            }
            j += 1;
        }
    }
    report
}

#[derive(Debug)]
struct Acquisition {
    lock: String,
    /// `let`-bound name when the statement is `let [mut] NAME = <guard>;`.
    binding: Option<String>,
    /// The place side of `*lock(&x) = rhs;` — never live (RHS runs first).
    place_expr: bool,
}

/// Recognizes a lock acquisition starting at token `j`: `recv.lock()` or a
/// call of a crate lock-wrapper fn. Returns its normalized lock identity
/// and how the resulting guard is bound.
fn detect_acquisition(toks: &[Tok], j: usize, wrappers: &BTreeSet<String>) -> Option<Acquisition> {
    let t = &toks[j];
    if t.kind != TokKind::Ident || !toks.get(j + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    let is_method = j >= 1 && toks[j - 1].is_punct('.');
    let (lock, expr_start) = if t.text == "lock" && is_method {
        let (path, start) = receiver_path(toks, j.checked_sub(2)?);
        (path, start)
    } else if !is_method && wrappers.contains(&t.text) {
        (first_arg_path(toks, j + 1), j)
    } else {
        return None;
    };
    if lock.is_empty() {
        return None;
    }

    // Extend over poison-recovery chains, which stay guard-valued.
    let mut close = matching_close_paren(toks, j + 1)?;
    loop {
        let chained = toks.get(close + 1).is_some_and(|n| n.is_punct('.'))
            && toks.get(close + 2).is_some_and(|n| {
                n.is_ident("unwrap") || n.is_ident("expect") || n.is_ident("unwrap_or_else")
            })
            && toks.get(close + 3).is_some_and(|n| n.is_punct('('));
        if !chained {
            break;
        }
        close = matching_close_paren(toks, close + 3)?;
    }

    // `*lock(&x) = rhs;` — the guard never overlaps the right-hand side.
    let place_expr = expr_start >= 1
        && toks[expr_start - 1].is_punct('*')
        && toks.get(close + 1).is_some_and(|n| n.is_punct('='))
        && !toks.get(close + 2).is_some_and(|n| n.is_punct('='));
    if place_expr {
        return Some(Acquisition {
            lock,
            binding: None,
            place_expr: true,
        });
    }

    // `let [mut] NAME = <acquisition chain> ;` → a named, block-scoped guard.
    let binding = if toks.get(close + 1).is_some_and(|n| n.is_punct(';')) {
        let mut k = expr_start;
        if k >= 1 && toks[k - 1].is_punct('&') {
            k -= 1; // `lock(&x)` has no `&` before the callee; receivers may
        }
        if k >= 2 && toks[k - 1].is_punct('=') {
            let mut n = k - 2;
            if toks[n].is_ident("mut") {
                n = n.checked_sub(1)?;
            }
            if toks[n].kind == TokKind::Ident
                && n >= 1
                && (toks[n - 1].is_ident("let") || toks[n - 1].is_ident("mut"))
            {
                Some(toks[n].text.clone())
            } else {
                None
            }
        } else {
            None
        }
    } else {
        None
    };

    Some(Acquisition {
        lock,
        binding,
        place_expr: false,
    })
}

#[derive(Debug)]
enum Seg {
    Ident(String),
    Index,
}

/// Normalized dotted path ending at token `end` (the last receiver token
/// before `.lock`): `self.shared.state` → `shared.state`,
/// `shards[i]` → `shards[_]`. Also returns the path's first token index.
fn receiver_path(toks: &[Tok], end: usize) -> (String, usize) {
    let mut segs: Vec<Seg> = Vec::new();
    let mut k = end as isize;
    let mut start = end;
    loop {
        if k < 0 {
            break;
        }
        let t = &toks[k as usize];
        if t.kind == TokKind::Ident {
            segs.push(Seg::Ident(t.text.clone()));
            start = k as usize;
            if k >= 2 && toks[(k - 1) as usize].is_punct('.') {
                k -= 2;
                continue;
            }
            if k >= 3
                && toks[(k - 1) as usize].is_punct(':')
                && toks[(k - 2) as usize].is_punct(':')
            {
                k -= 3;
                continue;
            }
            break;
        }
        if t.is_punct(']') {
            // Find the matching `[` backwards.
            let mut depth = 1usize;
            let mut b = k - 1;
            while b >= 0 && depth > 0 {
                if toks[b as usize].is_punct(']') {
                    depth += 1;
                } else if toks[b as usize].is_punct('[') {
                    depth -= 1;
                }
                if depth == 0 {
                    break;
                }
                b -= 1;
            }
            if b < 0 || depth > 0 {
                break;
            }
            segs.push(Seg::Index);
            start = b as usize;
            k = b - 1;
            continue;
        }
        break;
    }
    segs.reverse();
    (render_path(segs), start)
}

/// Normalized path of a wrapper call's first argument: `lock(&shards[i])`
/// → `shards[_]`, `lock(&self.shared.state)` → `shared.state`.
fn first_arg_path(toks: &[Tok], open: usize) -> String {
    let mut k = open + 1;
    while toks
        .get(k)
        .is_some_and(|t| t.is_punct('&') || t.is_punct('*') || t.is_ident("mut"))
    {
        k += 1;
    }
    let mut segs: Vec<Seg> = Vec::new();
    while let Some(t) = toks.get(k) {
        if t.kind == TokKind::Ident {
            segs.push(Seg::Ident(t.text.clone()));
            k += 1;
        } else if t.is_punct('.') {
            k += 1;
        } else if t.is_punct(':') && toks.get(k + 1).is_some_and(|n| n.is_punct(':')) {
            k += 2;
        } else if t.is_punct('[') {
            let Some(close) = matching_close_bracket(toks, k) else {
                break;
            };
            segs.push(Seg::Index);
            k = close + 1;
        } else {
            break;
        }
    }
    render_path(segs)
}

fn matching_close_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Joins segments (`foo`, `[_]`) into a lock identity, dropping a leading
/// `self` so `self.inner` and `inner` name the same lock.
fn render_path(segs: Vec<Seg>) -> String {
    let mut out = String::new();
    let mut first = true;
    for s in segs {
        match s {
            Seg::Ident(name) => {
                if first && name == "self" {
                    continue; // re-join below; `self` alone falls through
                }
                if !out.is_empty() {
                    out.push('.');
                }
                out.push_str(&name);
                first = false;
            }
            Seg::Index => {
                out.push_str("[_]");
                first = false;
            }
        }
    }
    if out.is_empty() {
        "self".to_string()
    } else {
        out
    }
}

/// Parameter names of a fn signature whose type mentions `Fn`/`FnMut`/
/// `FnOnce` — calling one of these is a user-callback boundary for D10.
fn callback_param_names(sig: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let Some(p_open) = sig.iter().position(|t| t.is_punct('(')) else {
        return out;
    };
    let Some(p_close) = matching_close_paren(sig, p_open) else {
        return out;
    };
    let params = &sig[p_open + 1..p_close];
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut ranges = Vec::new();
    for (i, t) in params.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(',') && depth == 0 {
            ranges.push(&params[start..i]);
            start = i + 1;
        }
    }
    ranges.push(&params[start..]);
    for param in ranges {
        let Some(colon) = param.iter().position(|t| t.is_punct(':')) else {
            continue;
        };
        let ty = &param[colon + 1..];
        let is_callback = ty
            .iter()
            .any(|t| t.is_ident("Fn") || t.is_ident("FnMut") || t.is_ident("FnOnce"));
        if !is_callback {
            continue;
        }
        // Name: last ident before the `:` (skips `mut`).
        if let Some(name) = param[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
        {
            out.insert(name.text.clone());
        }
    }
    out
}

// ---- D8: cycles in the per-crate acquisition graph -------------------------

/// Detects cycles in a crate's acquisition graph. Each strongly-connected
/// set of locks (including self-loops) yields one finding, anchored at the
/// lexically-first in-cycle edge site.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<StructFinding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
        nodes.insert(&e.held);
        nodes.insert(&e.acquired);
    }
    // Reachability closure (graphs here are tiny).
    let reach = |from: &str| -> BTreeSet<&str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut frontier = vec![from];
        while let Some(n) = frontier.pop() {
            if let Some(next) = adj.get(n) {
                for &m in next {
                    if seen.insert(m) {
                        frontier.push(m);
                    }
                }
            }
        }
        seen
    };
    let reachable: BTreeMap<&str, BTreeSet<&str>> = nodes.iter().map(|&n| (n, reach(n))).collect();

    let mut findings = Vec::new();
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    for &n in &nodes {
        if assigned.contains(n) {
            continue;
        }
        let scc: Vec<&str> = nodes
            .iter()
            .filter(|&&m| m == n || (reachable[n].contains(m) && reachable[m].contains(n)))
            .copied()
            .collect();
        for &m in &scc {
            assigned.insert(m);
        }
        let cyclic = scc.len() >= 2 || reachable[n].contains(n);
        if !cyclic {
            continue;
        }
        let mut in_cycle: Vec<&LockEdge> = edges
            .iter()
            .filter(|e| scc.contains(&e.held.as_str()) && scc.contains(&e.acquired.as_str()))
            .collect();
        in_cycle.sort();
        let Some(site) = in_cycle.first() else {
            continue;
        };
        let mut cycle = scc.join(" -> ");
        cycle.push_str(" -> ");
        cycle.push_str(scc[0]);
        findings.push(StructFinding {
            file: site.file.clone(),
            line: site.line,
            col: site.col,
            rule: "D8",
            name: "lock-order",
            snippet: format!("lock cycle: {cycle}"),
            message: D8_MESSAGE,
        });
    }
    findings
}

// ---- D12: cross-artifact metrics audit --------------------------------------

/// Parses the metrics inventory table out of DESIGN.md: rows of the form
/// ``| `keebo.some.metric` | counter | ... |``.
pub fn parse_design_inventory(path: &str, text: &str) -> Vec<InventoryRow> {
    let mut rows = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let name_cell = cells[0];
        if !(name_cell.len() > 2 && name_cell.starts_with('`') && name_cell.ends_with('`')) {
            continue;
        }
        let name = &name_cell[1..name_cell.len() - 1];
        if !name.starts_with("keebo.") {
            continue;
        }
        rows.push(InventoryRow {
            name: name.to_string(),
            kind: cells[1].to_lowercase(),
            file: path.to_string(),
            line: (idx + 1) as u32,
        });
    }
    rows
}

/// Cross-checks source metric uses against the inventory. `uses` must be in
/// deterministic (file-sorted) order — findings anchor at first sites.
pub fn check_metrics(uses: &[(String, MetricUse)], rows: &[InventoryRow]) -> Vec<StructFinding> {
    let mut findings = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<&(String, MetricUse)>> = BTreeMap::new();
    for u in uses {
        by_name.entry(&u.1.name).or_default().push(u);
    }
    let row_by_name: BTreeMap<&str, &InventoryRow> =
        rows.iter().map(|r| (r.name.as_str(), r)).collect();

    for (name, sites) in &by_name {
        let first = sites[0];
        let row = row_by_name.get(name);
        if row.is_none() {
            findings.push(StructFinding {
                file: first.0.clone(),
                line: first.1.line,
                col: first.1.col,
                rule: "D12",
                name: "metric-undocumented",
                snippet: (*name).to_string(),
                message: D12_MESSAGE,
            });
        }
        // Every kind claimed for this name — across registration sites and
        // the inventory row — must agree. The expected kind is the
        // inventory's when documented, else the first registration's; the
        // finding anchors at the first dissenting site.
        let row_kind = row
            .map(|r| r.kind.as_str())
            .filter(|k| matches!(*k, "counter" | "gauge" | "histogram"));
        let expected = row_kind.or_else(|| sites.iter().find_map(|s| s.1.kind));
        if let Some(exp) = expected {
            if let Some(site) = sites.iter().find(|s| s.1.kind.is_some_and(|k| k != exp)) {
                let got = site.1.kind.unwrap_or("?");
                findings.push(StructFinding {
                    file: site.0.clone(),
                    line: site.1.line,
                    col: site.1.col,
                    rule: "D12",
                    name: "metric-kind-conflict",
                    snippet: format!("{name}: registered as {got}, expected {exp}"),
                    message: D12_MESSAGE,
                });
            }
        }
    }
    for r in rows {
        if !by_name.contains_key(r.name.as_str()) {
            findings.push(StructFinding {
                file: r.file.clone(),
                line: r.line,
                col: 1,
                rule: "D12",
                name: "metric-stale-row",
                snippet: r.name.clone(),
                message: D12_MESSAGE,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::build_structure;
    use crate::scope::annotate_test_scope;

    fn facts(src: &str) -> FileFacts {
        let mut lexed = lex(src);
        annotate_test_scope(&mut lexed.tokens);
        let st = build_structure(&lexed.tokens);
        FileFacts::collect(
            "crates/x/src/lib.rs",
            FileInfo::classify("crates/x/src/lib.rs"),
            lexed.tokens,
            st,
        )
    }

    use crate::rules::FileInfo;

    fn scan(src: &str) -> ConcurrencyReport {
        let f = facts(src);
        scan_concurrency(&f, &f.lock_wrappers, &f.condvars)
    }

    const WRAPPER: &str =
        "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap_or_else(p) }\n";

    #[test]
    fn wrapper_fns_are_indexed() {
        let f = facts(WRAPPER);
        assert!(f.lock_wrappers.contains("lock"));
        // A fn *taking* a guard is not a wrapper.
        let f = facts("fn takes(g: MutexGuard<'_, u32>) -> u32 { *g }");
        assert!(f.lock_wrappers.is_empty());
    }

    #[test]
    fn condvar_symbols_are_indexed() {
        let f = facts(
            "struct S { work_ready: Condvar, done: Arc<Condvar> }\n\
             fn f() { let cv = Condvar::new(); let dv = Arc::new(Condvar::new()); }",
        );
        for name in ["work_ready", "done", "cv", "dv"] {
            assert!(f.condvars.contains(name), "{name}: {:?}", f.condvars);
        }
    }

    #[test]
    fn metric_literals_are_indexed_with_kind() {
        let f = facts(
            "fn f(reg: &R) {\n\
               reg.counter(\"keebo.a.total\").inc();\n\
               let name = \"keebo.b.depth\";\n\
               reg.gauge(name).set(1.0);\n\
             }",
        );
        assert_eq!(f.metrics.len(), 2);
        assert_eq!(f.metrics[0].kind, Some("counter"));
        assert_eq!(f.metrics[1].kind, None);
        assert_eq!(f.metrics[1].name, "keebo.b.depth");
    }

    #[test]
    fn both_orders_make_a_cycle() {
        let src = format!(
            "{WRAPPER}\
             fn a(s: &S) {{ let g = lock(&s.m1); lock(&s.m2).touch(); }}\n\
             fn b(s: &S) {{ let g = lock(&s.m2); lock(&s.m1).touch(); }}\n"
        );
        let rep = scan(&src);
        let cycles = lock_cycles(&rep.edges);
        assert_eq!(cycles.len(), 1, "{:?}", rep.edges);
        assert!(cycles[0].snippet.contains("m1"));
        assert!(cycles[0].snippet.contains("m2"));
    }

    #[test]
    fn one_global_order_is_clean() {
        let src = format!(
            "{WRAPPER}\
             fn a(s: &S) {{ let g = lock(&s.m1); lock(&s.m2).touch(); }}\n\
             fn b(s: &S) {{ let g = lock(&s.m1); lock(&s.m2).touch(); }}\n"
        );
        let rep = scan(&src);
        assert!(lock_cycles(&rep.edges).is_empty());
    }

    #[test]
    fn dropped_guard_breaks_the_edge() {
        let src = format!(
            "{WRAPPER}\
             fn a(s: &S) {{ let g = lock(&s.m1); drop(g); lock(&s.m2).touch(); }}\n\
             fn b(s: &S) {{ let g = lock(&s.m2); lock(&s.m1).touch(); }}\n"
        );
        let rep = scan(&src);
        assert!(lock_cycles(&rep.edges).is_empty(), "{:?}", rep.edges);
    }

    #[test]
    fn block_scope_ends_a_named_guard() {
        let src = format!(
            "{WRAPPER}\
             fn a(s: &S) {{ let x = {{ let g = lock(&s.m1); g.take() }}; lock(&s.m2).touch(); }}\n\
             fn b(s: &S) {{ let g = lock(&s.m2); lock(&s.m1).touch(); }}\n"
        );
        let rep = scan(&src);
        assert!(lock_cycles(&rep.edges).is_empty(), "{:?}", rep.edges);
    }

    #[test]
    fn deref_assign_place_holds_nothing() {
        // `*lock(&s.m1) = f(...)` — the RHS runs before the place locks.
        let src = format!(
            "{WRAPPER}\
             fn a(s: &S) {{ *lock(&s.m1) = lock(&s.m2).read(); }}\n\
             fn b(s: &S) {{ let g = lock(&s.m2); lock(&s.m1).touch(); }}\n"
        );
        let rep = scan(&src);
        // b records m2 -> m1; a records NO m1 -> m2 edge (place expr).
        assert!(!rep.edges.iter().any(|e| e.held == "m1"), "{:?}", rep.edges);
    }

    #[test]
    fn self_reacquisition_is_a_cycle() {
        let src = format!(
            "{WRAPPER}\
             fn a(s: &S) {{ let g = lock(&s.m1); lock(&s.m1).touch(); }}\n"
        );
        let rep = scan(&src);
        let cycles = lock_cycles(&rep.edges);
        assert_eq!(cycles.len(), 1);
        assert!(
            cycles[0].snippet.contains("s.m1 -> s.m1"),
            "{}",
            cycles[0].snippet
        );
    }

    #[test]
    fn condvar_wait_outside_loop_flags() {
        let src = "struct S { cv: Condvar }\n\
                   fn bad(s: &S, g: G) { s.cv.wait(g); }\n\
                   fn good(s: &S, mut g: G) { while pred() { g = s.cv.wait(g); } }\n\
                   fn also_good(s: &S, mut g: G) { loop { g = s.cv.wait(g); } }\n";
        let rep = scan(src);
        let d9: Vec<_> = rep.findings.iter().filter(|f| f.rule == "D9").collect();
        assert_eq!(d9.len(), 1, "{:?}", rep.findings);
        assert_eq!(d9[0].line, 2);
    }

    #[test]
    fn wait_while_is_exempt_and_unknown_receivers_ignored() {
        let src = "struct S { cv: Condvar }\n\
                   fn f(s: &S, g: G) { s.cv.wait_while(g, |x| *x); }\n\
                   fn g2(rx: &R, g: G) { rx.wait(g); }\n";
        let rep = scan(src);
        assert!(rep.findings.iter().all(|f| f.rule != "D9"));
    }

    #[test]
    fn guard_across_catch_unwind_flags() {
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap_or_else(p); \
                   catch_unwind(job); }";
        let rep = scan(src);
        let d10: Vec<_> = rep.findings.iter().filter(|f| f.rule == "D10").collect();
        assert_eq!(d10.len(), 1, "{:?}", rep.findings);
        assert!(d10[0].snippet.contains("catch_unwind"));
    }

    #[test]
    fn guard_scoped_before_catch_unwind_is_clean() {
        let src = "fn f(m: &Mutex<u32>) { let j = { let g = m.lock().unwrap_or_else(p); \
                   g.job() }; catch_unwind(j); }";
        let rep = scan(src);
        assert!(rep.findings.iter().all(|f| f.rule != "D10"));
    }

    #[test]
    fn guard_across_callback_and_send_flags() {
        let src = "fn f(m: &Mutex<u32>, hook: impl Fn(u32)) { \
                   let g = m.lock().unwrap_or_else(p); hook(*g); tx.send(*g); }";
        let rep = scan(src);
        let d10: Vec<_> = rep.findings.iter().filter(|f| f.rule == "D10").collect();
        assert_eq!(d10.len(), 2, "{:?}", rep.findings);
    }

    #[test]
    fn closures_are_fresh_contexts() {
        // The guard lives in the outer fn; the closure body starts clean,
        // and the catch_unwind inside it sees no guard.
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap_or_else(p); \
                   run(move || { catch_unwind(job); }); }";
        let rep = scan(src);
        assert!(
            rep.findings.iter().all(|f| f.rule != "D10"),
            "{:?}",
            rep.findings
        );
    }

    #[test]
    fn wait_reassignment_keeps_guard_alive() {
        let src = "struct S { cv: Condvar }\n\
                   fn f(s: &S, m: &Mutex<u32>) { let mut g = m.lock().unwrap_or_else(p); \
                   while pred() { g = s.cv.wait(g).unwrap_or_else(p); } catch_unwind(j); }";
        let rep = scan(src);
        // The guard is still live at catch_unwind.
        assert!(rep.findings.iter().any(|f| f.rule == "D10"));
    }

    #[test]
    fn design_inventory_rows_parse() {
        let md = "# Doc\n\
                  | metric | kind | meaning |\n\
                  |---|---|---|\n\
                  | `keebo.a.total` | counter | things |\n\
                  | `keebo.b.depth` | gauge | depth |\n\
                  | not_a_metric | counter | skipped |\n";
        let rows = parse_design_inventory("DESIGN.md", md);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "keebo.a.total");
        assert_eq!(rows[0].kind, "counter");
        assert_eq!(rows[1].line, 5);
    }

    #[test]
    fn metrics_audit_catches_drift() {
        let rows = parse_design_inventory(
            "DESIGN.md",
            "| `keebo.a.total` | counter | x |\n| `keebo.gone` | gauge | y |\n",
        );
        let uses = vec![
            (
                "a.rs".to_string(),
                MetricUse {
                    name: "keebo.a.total".into(),
                    kind: Some("counter"),
                    line: 3,
                    col: 5,
                },
            ),
            (
                "a.rs".to_string(),
                MetricUse {
                    name: "keebo.new".into(),
                    kind: Some("gauge"),
                    line: 9,
                    col: 5,
                },
            ),
            (
                "b.rs".to_string(),
                MetricUse {
                    name: "keebo.a.total".into(),
                    kind: Some("gauge"),
                    line: 2,
                    col: 1,
                },
            ),
        ];
        let findings = check_metrics(&uses, &rows);
        let names: Vec<&str> = findings.iter().map(|f| f.name).collect();
        assert!(names.contains(&"metric-undocumented"), "{findings:?}");
        assert!(names.contains(&"metric-kind-conflict"), "{findings:?}");
        assert!(names.contains(&"metric-stale-row"), "{findings:?}");
        let stale = findings
            .iter()
            .find(|f| f.name == "metric-stale-row")
            .unwrap();
        assert_eq!(stale.file, "DESIGN.md");
        assert_eq!(stale.line, 2);
    }

    #[test]
    fn consistent_metrics_are_clean() {
        let rows = parse_design_inventory("DESIGN.md", "| `keebo.a.total` | counter | x |\n");
        let uses = vec![(
            "a.rs".to_string(),
            MetricUse {
                name: "keebo.a.total".into(),
                kind: Some("counter"),
                line: 3,
                col: 5,
            },
        )];
        assert!(check_metrics(&uses, &rows).is_empty());
    }
}
