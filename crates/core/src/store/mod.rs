//! Durable state stores for the control plane — the store backend family.
//!
//! The paper's warehouse optimizer runs as a long-lived service; §7 stresses
//! that optimization must be "fully automated" and safe to operate. A
//! control plane that forgets its learned models and reconciliation state on
//! every restart is neither: it would re-onboard each warehouse (re-running
//! exploration against live traffic) and lose its savings accounting. This
//! module provides the storage layer for a crash-safe control plane:
//!
//! * [`StateStore`] — point-in-time snapshot plus an append-only record log
//!   (write-ahead log, WAL). Snapshots bound replay time; the WAL captures
//!   every tick since the last snapshot. Stores optionally retain the last
//!   N superseded snapshot generations for operator rollback.
//! * [`MemStore`] — in-memory store for tests and fleet runs. Cloning shares
//!   the backing storage, so a harness can keep a handle across an
//!   orchestrator "crash" (drop).
//! * [`FileStore`] — file-backed store with length+CRC32-framed records,
//!   atomic (tmp file + rename) snapshot writes, and torn-tail truncation on
//!   open: a record half-written at kill time is dropped, never replayed.
//! * [`RemoteKvStore`] — a simulated remote KV service (the
//!   memory/redis/dynamodb spread of a real deployment) with per-operation
//!   service latency and seeded fault injection via [`StoreFaultPlan`]:
//!   append errors, snapshot write failures, and read timeouts, all
//!   deterministic so the crash-drill matrix is reproducible.
//! * [`CrashPlan`] — deterministic crash-injection schedule for the recovery
//!   harness (kill tick and optional torn-write byte offset from a seed).
//!
//! Crash model: the *control plane* process dies; the warehouse (the cloud)
//! keeps running. A clean crash at a tick boundary loses nothing — recovery
//! replays the WAL and resumes bit-identically. A torn write loses at most
//! the final unflushed record; recovery truncates the tail and resumes from
//! the last complete record. A *faulty* store (remote KV under injected
//! faults) degrades durability fail-open: the orchestrator retries
//! transient errors in line, counts every failure under `keebo.store.*`,
//! and only detaches when an append can never land.

use std::io;

mod file;
mod mem;
mod remote;

pub use file::FileStore;
pub use mem::MemStore;
pub use remote::{RemoteKvStore, StoreFaultPlan};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Hand-rolled bitwise loop —
/// record frames are small and this avoids a table or a dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Everything a store holds, as read back at recovery time.
#[derive(Debug, Default)]
pub struct StoreContents {
    /// The latest snapshot payload, if one was ever written.
    pub snapshot: Option<Vec<u8>>,
    /// WAL record payloads appended since that snapshot, oldest first.
    pub records: Vec<Vec<u8>>,
    /// Bytes dropped from a torn WAL tail while loading (0 for a clean log).
    pub truncated_bytes: u64,
}

/// A durable home for control-plane state: one snapshot slot plus an
/// append-only record log that `write_snapshot` compacts.
pub trait StateStore: Send {
    /// Appends one record payload to the log.
    fn append(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Atomically replaces the snapshot and compacts (empties) the log.
    fn write_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()>;

    /// Reads back the snapshot and log, validating integrity. A torn log
    /// tail is truncated (reported via `truncated_bytes`), not an error; a
    /// corrupt snapshot *is* an error, because snapshot writes are atomic.
    fn load(&mut self) -> io::Result<StoreContents>;

    /// Records appended since the last snapshot.
    fn wal_records(&self) -> u64;

    /// Bytes in the log since the last snapshot (framing included).
    fn wal_bytes(&self) -> u64;

    /// Size of the last snapshot payload written or loaded.
    fn snapshot_bytes(&self) -> u64;

    /// Sets how many *superseded* snapshot generations to keep after each
    /// compaction (0 = only the current snapshot, the default). Retention
    /// is best-effort housekeeping: it never fails a snapshot write.
    fn set_snapshot_retention(&mut self, generations: u32) {
        let _ = generations;
    }

    /// Snapshot payloads currently held (current + retained generations).
    fn snapshot_generations(&self) -> u64 {
        u64::from(self.snapshot_bytes() > 0)
    }
}

pub(crate) const FRAME_HEADER_BYTES: usize = 8; // u32 length + u32 crc32

pub(crate) fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Outcome of scanning a frame stream: complete payloads plus how many bytes
/// of the prefix were valid (anything after is a torn/corrupt tail).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FrameScan {
    pub payloads: Vec<Vec<u8>>,
    pub valid_bytes: usize,
}

/// Decodes as many complete, checksum-valid frames as possible from the
/// front of `bytes`. Total: never panics, whatever the input — arbitrary
/// bytes just yield a shorter (possibly empty) prefix. The verify fuzzer
/// drives this with raw genome bytes.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER_BYTES {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let start = pos + FRAME_HEADER_BYTES;
        let Some(end) = start.checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload.to_vec());
        pos = end;
    }
    FrameScan {
        payloads,
        valid_bytes: pos,
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic crash-injection schedule: derived purely from a seed so
/// every (scenario, crash) pair is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Tick boundary (1-based tick count into the run) after which the
    /// control plane is killed.
    pub crash_tick: u64,
    /// When set, the kill also tears the WAL: the file is truncated at
    /// [`CrashPlan::torn_offset`] instead of ending on a record boundary.
    pub torn_tail: bool,
    seed: u64,
}

impl CrashPlan {
    /// Derives a plan from `seed` for a run of `total_ticks` ticks. The
    /// crash lands strictly inside the run (never before the first tick,
    /// never at/after the last) so recovery always has work on both sides.
    pub fn from_seed(seed: u64, total_ticks: u64) -> Self {
        let mut sm = seed ^ 0xC2A5_9F5C_7E1D_3B41;
        let span = total_ticks.saturating_sub(2).max(1);
        let crash_tick = 1 + splitmix64(&mut sm) % span;
        let torn_tail = splitmix64(&mut sm).is_multiple_of(4);
        Self {
            crash_tick,
            torn_tail,
            seed,
        }
    }

    /// As [`CrashPlan::from_seed`], but always a clean kill at a tick
    /// boundary — the crash-drill matrix asserts bit-identity, which a torn
    /// tail (legitimately losing the final record) cannot promise.
    pub fn clean_from_seed(seed: u64, total_ticks: u64) -> Self {
        Self {
            torn_tail: false,
            ..Self::from_seed(seed, total_ticks)
        }
    }

    /// Byte offset to tear the WAL at, in `(0, wal_len)` — always cuts at
    /// least one byte so the final record really is damaged.
    pub fn torn_offset(&self, wal_len: u64) -> u64 {
        if wal_len <= 1 {
            return 0;
        }
        let mut sm = self.seed ^ 0x1B56_C4E9_9C30_A2F7;
        splitmix64(&mut sm) % (wal_len - 1) + 1
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch dir per test invocation (tests run in parallel).
    pub(crate) fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("kwo-store-{}-{tag}-{n}", std::process::id()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn scan_frames_is_total_on_arbitrary_bytes() {
        assert_eq!(scan_frames(&[]), FrameScan::default());
        // A length prefix promising more bytes than exist.
        let mut bogus = vec![0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0];
        assert_eq!(scan_frames(&bogus).payloads.len(), 0);
        // Valid frame followed by garbage: prefix decodes, garbage dropped.
        let mut bytes = encode_frame(b"payload");
        let valid = bytes.len();
        bogus.truncate(3);
        bytes.extend_from_slice(&bogus);
        let scan = scan_frames(&bytes);
        assert_eq!(scan.payloads, vec![b"payload".to_vec()]);
        assert_eq!(scan.valid_bytes, valid);
    }

    #[test]
    fn crash_plan_is_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = CrashPlan::from_seed(seed, 96);
            let b = CrashPlan::from_seed(seed, 96);
            assert_eq!(a, b);
            assert!((1..96).contains(&a.crash_tick), "tick {}", a.crash_tick);
            let off = a.torn_offset(1000);
            assert!((1..1000).contains(&off), "offset {off}");
        }
        // Degenerate runs still produce a usable plan.
        let tiny = CrashPlan::from_seed(1, 1);
        assert_eq!(tiny.crash_tick, 1);
        assert_eq!(tiny.torn_offset(0), 0);
    }

    #[test]
    fn clean_plan_matches_seeded_plan_except_torn_flag() {
        for seed in 0..64u64 {
            let full = CrashPlan::from_seed(seed, 96);
            let clean = CrashPlan::clean_from_seed(seed, 96);
            assert_eq!(clean.crash_tick, full.crash_tick);
            assert!(!clean.torn_tail);
        }
    }
}
