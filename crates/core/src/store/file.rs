//! File-backed store backend: framed WAL + atomic snapshot writes.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::{encode_frame, scan_frames, StateStore, StoreContents, FRAME_HEADER_BYTES};

const WAL_FILE: &str = "wal.log";
pub(crate) const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Flushes directory metadata so a just-renamed entry in `dir` survives
/// power loss. `rename` is atomic with respect to concurrent readers, but
/// the *directory entry* pointing at the new snapshot is ordinary metadata:
/// a crash after the rename and before the directory block reaches disk can
/// bring the store back up with the old (or no) snapshot file. Fail-open,
/// per the control plane's persistence convention: a sync failure is
/// counted (`keebo.store.dir_sync_failures`) but never fails the write —
/// the data path already fsynced, and the next snapshot retries the
/// metadata flush.
pub(crate) fn sync_dir(dir: &Path) {
    if File::open(dir).and_then(|d| d.sync_all()).is_err() {
        keebo_obs::global()
            .counter("keebo.store.dir_sync_failures")
            .inc();
    }
}

/// File-backed [`StateStore`]: `wal.log` holds framed records, `snapshot.bin`
/// holds one framed snapshot, `snapshot.tmp` is the atomic-write staging
/// file. Appends are flushed per record so a kill between ticks loses
/// nothing; a kill mid-write loses only the torn tail. With snapshot
/// retention enabled, superseded snapshots rotate to
/// `snapshot.old.1.bin` (newest) … `snapshot.old.N.bin` (oldest).
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    wal: File,
    wal_records: u64,
    wal_bytes: u64,
    snapshot_bytes: u64,
    retention: u32,
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(dir.join(WAL_FILE))?;
        let wal_bytes = wal.metadata()?.len();
        let snapshot_bytes = fs::metadata(dir.join(SNAPSHOT_FILE))
            .map(|m| m.len().saturating_sub(FRAME_HEADER_BYTES as u64))
            .unwrap_or(0);
        Ok(Self {
            dir,
            wal,
            wal_records: 0, // unknown until load(); counts appends otherwise
            wal_bytes,
            snapshot_bytes,
            retention: 0,
        })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Truncates the WAL file to `len` bytes — the torn-write injector for
    /// the crash harness.
    pub fn truncate_wal_to(&mut self, len: u64) -> io::Result<()> {
        let keep = len.min(self.wal_bytes);
        self.wal.set_len(keep)?;
        self.wal.seek(SeekFrom::End(0))?;
        self.wal_bytes = keep;
        Ok(())
    }

    fn old_snapshot_path(&self, generation: u32) -> PathBuf {
        self.dir.join(format!("snapshot.old.{generation}.bin"))
    }

    /// Rotates the current snapshot into the retained-generation chain and
    /// prunes generations beyond the retention limit. Best-effort: rotation
    /// is operator convenience, never correctness, so any failure is
    /// counted (`keebo.store.retention_errors`) and the snapshot write
    /// proceeds — the new snapshot simply overwrites the current slot.
    fn rotate_retained(&self) {
        let mut failed = false;
        // Prune anything at or beyond the retention horizon (also clears
        // leftovers after retention was tightened).
        let mut gen = self.retention.max(1);
        loop {
            match fs::remove_file(self.old_snapshot_path(gen)) {
                Ok(()) => gen += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => break,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if self.retention > 0 {
            // Shift old.N-1 → old.N … old.1 → old.2, then current → old.1.
            for g in (1..self.retention).rev() {
                let from = self.old_snapshot_path(g);
                if let Err(e) = fs::rename(&from, self.old_snapshot_path(g + 1)) {
                    if e.kind() != io::ErrorKind::NotFound {
                        failed = true;
                    }
                }
            }
            let current = self.dir.join(SNAPSHOT_FILE);
            if current.exists() && fs::rename(&current, self.old_snapshot_path(1)).is_err() {
                failed = true;
            }
        }
        if failed {
            keebo_obs::global()
                .counter("keebo.store.retention_errors")
                .inc();
        }
    }
}

impl StateStore for FileStore {
    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(payload);
        self.wal.write_all(&frame)?;
        self.wal.flush()?;
        self.wal_records += 1;
        self.wal_bytes += frame.len() as u64;
        Ok(())
    }

    fn write_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let frame = encode_frame(snapshot);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&frame)?;
            f.sync_all()?;
        }
        self.rotate_retained();
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // Make the rename itself durable: without a directory sync, a crash
        // after the rename can lose the new directory entry and resurrect
        // the pre-snapshot state even though the payload was fsynced.
        sync_dir(&self.dir);
        // Snapshot is durable; the log it subsumes can go.
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::End(0))?;
        self.wal_records = 0;
        self.wal_bytes = 0;
        self.snapshot_bytes = snapshot.len() as u64;
        Ok(())
    }

    fn load(&mut self) -> io::Result<StoreContents> {
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let snapshot = match fs::read(&snap_path) {
            Ok(bytes) => {
                let scan = scan_frames(&bytes);
                if scan.payloads.len() != 1 || scan.valid_bytes != bytes.len() {
                    // Snapshot writes are atomic (tmp + rename), so a bad
                    // snapshot is real corruption, not a torn write.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt snapshot at {}", snap_path.display()),
                    ));
                }
                scan.payloads.into_iter().next()
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        self.snapshot_bytes = snapshot.as_ref().map_or(0, |s| s.len() as u64);

        let mut wal_bytes = Vec::new();
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.read_to_end(&mut wal_bytes)?;
        let scan = scan_frames(&wal_bytes);
        let truncated = (wal_bytes.len() - scan.valid_bytes) as u64;
        if truncated > 0 {
            // Drop the torn tail so future appends extend a valid log.
            self.wal.set_len(scan.valid_bytes as u64)?;
        }
        self.wal.seek(SeekFrom::End(0))?;
        self.wal_records = scan.payloads.len() as u64;
        self.wal_bytes = scan.valid_bytes as u64;
        Ok(StoreContents {
            snapshot,
            records: scan.payloads,
            truncated_bytes: truncated,
        })
    }

    fn wal_records(&self) -> u64 {
        self.wal_records
    }

    fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    fn set_snapshot_retention(&mut self, generations: u32) {
        self.retention = generations;
    }

    fn snapshot_generations(&self) -> u64 {
        let mut count = u64::from(self.dir.join(SNAPSHOT_FILE).exists());
        let mut gen = 1u32;
        while self.old_snapshot_path(gen).exists() {
            count += 1;
            gen += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::scratch_dir;
    use super::*;

    #[test]
    fn file_store_round_trips_across_reopen() {
        let dir = scratch_dir("roundtrip");
        {
            let mut s = FileStore::open(&dir).unwrap();
            s.write_snapshot(b"snapshot-payload").unwrap();
            s.append(b"rec-a").unwrap();
            s.append(b"rec-b").unwrap();
        }
        let mut s = FileStore::open(&dir).unwrap();
        let c = s.load().unwrap();
        assert_eq!(c.snapshot.as_deref(), Some(&b"snapshot-payload"[..]));
        assert_eq!(c.records, vec![b"rec-a".to_vec(), b"rec-b".to_vec()]);
        assert_eq!(c.truncated_bytes, 0);
        assert_eq!(s.snapshot_bytes(), 16);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_truncates_torn_tail_and_keeps_appending() {
        let dir = scratch_dir("torn");
        let cut;
        {
            let mut s = FileStore::open(&dir).unwrap();
            s.append(b"first-record").unwrap();
            s.append(b"second-record").unwrap();
            // Tear mid-way through the second record's frame.
            cut = s.wal_bytes() - 5;
            s.truncate_wal_to(cut).unwrap();
        }
        let mut s = FileStore::open(&dir).unwrap();
        let c = s.load().unwrap();
        assert_eq!(c.records, vec![b"first-record".to_vec()]);
        assert!(c.truncated_bytes > 0);
        // The log stays usable after truncation.
        s.append(b"post-crash").unwrap();
        let c = s.load().unwrap();
        assert_eq!(
            c.records,
            vec![b"first-record".to_vec(), b"post-crash".to_vec()]
        );
        assert_eq!(c.truncated_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_write_syncs_directory_without_failing_open() {
        // Success path: a snapshot write on a real directory performs the
        // directory sync cleanly — no fail-open counter tick — and the
        // renamed entry is immediately visible to a reopened store.
        let dir = scratch_dir("dirsync");
        let failures = keebo_obs::global().counter("keebo.store.dir_sync_failures");
        let before = failures.get();
        {
            let mut s = FileStore::open(&dir).unwrap();
            s.write_snapshot(b"synced snapshot").unwrap();
        }
        assert_eq!(
            failures.get(),
            before,
            "healthy directory sync must not count as a failure"
        );
        let mut s = FileStore::open(&dir).unwrap();
        let c = s.load().unwrap();
        assert_eq!(c.snapshot.as_deref(), Some(&b"synced snapshot"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_sync_failure_is_counted_not_fatal() {
        // Fail-open path: syncing a directory that cannot be opened ticks
        // the counter instead of erroring — mirroring the PR 6 convention
        // that persistence problems degrade observability-first.
        let failures = keebo_obs::global().counter("keebo.store.dir_sync_failures");
        let before = failures.get();
        sync_dir(Path::new("/nonexistent/kwo-store-dir-sync-test"));
        assert_eq!(failures.get(), before + 1);
    }

    #[test]
    fn file_store_detects_corrupt_snapshot() {
        let dir = scratch_dir("corrupt-snap");
        {
            let mut s = FileStore::open(&dir).unwrap();
            s.write_snapshot(b"good snapshot bytes").unwrap();
        }
        // Flip a payload byte: CRC must catch it.
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let mut s = FileStore::open(&dir).unwrap();
        assert!(s.load().is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_rotates_retained_snapshot_generations() {
        let dir = scratch_dir("retain");
        let mut s = FileStore::open(&dir).unwrap();
        s.set_snapshot_retention(2);
        for g in 0..5u8 {
            s.write_snapshot(format!("gen-{g}").as_bytes()).unwrap();
        }
        // Current (gen-4) + retained gen-3 and gen-2.
        assert_eq!(s.snapshot_generations(), 3);
        let read = |p: PathBuf| scan_frames(&fs::read(p).unwrap()).payloads.remove(0);
        assert_eq!(read(dir.join(SNAPSHOT_FILE)), b"gen-4".to_vec());
        assert_eq!(read(s.old_snapshot_path(1)), b"gen-3".to_vec());
        assert_eq!(read(s.old_snapshot_path(2)), b"gen-2".to_vec());
        assert!(!s.old_snapshot_path(3).exists());

        // Tightened retention prunes the extra generation at the next write.
        s.set_snapshot_retention(1);
        s.write_snapshot(b"gen-5").unwrap();
        assert_eq!(s.snapshot_generations(), 2);
        assert_eq!(read(s.old_snapshot_path(1)), b"gen-4".to_vec());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_rotation_failure_is_counted_not_fatal() {
        let dir = scratch_dir("retain-fail");
        let mut s = FileStore::open(&dir).unwrap();
        s.set_snapshot_retention(1);
        s.write_snapshot(b"first").unwrap();
        // Block the rotation target with a non-empty directory: renaming a
        // file over it must fail, which retention absorbs fail-open.
        let blocker = s.old_snapshot_path(1);
        fs::create_dir_all(blocker.join("occupied")).unwrap();
        let errors = keebo_obs::global().counter("keebo.store.retention_errors");
        let before = errors.get();
        s.write_snapshot(b"second").unwrap();
        assert_eq!(errors.get(), before + 1);
        // The snapshot write itself still landed.
        let c = s.load().unwrap();
        assert_eq!(c.snapshot.as_deref(), Some(&b"second"[..]));
        fs::remove_dir_all(&dir).ok();
    }
}
