//! In-memory store backend — the test and fleet default.

use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Mutex, PoisonError};

use super::{StateStore, StoreContents, FRAME_HEADER_BYTES};

#[derive(Debug, Default)]
struct MemInner {
    snapshot: Option<Vec<u8>>,
    records: Vec<Vec<u8>>,
    old_snapshots: VecDeque<Vec<u8>>,
    retention: u32,
}

/// In-memory [`StateStore`]. `Clone` shares the backing storage: the test
/// harness clones a handle, hands one copy to the orchestrator, drops the
/// orchestrator to simulate a crash, and restores from the survivor.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drops the most recent WAL record, returning its size — simulates a
    /// torn write for stores that have no file to truncate.
    pub fn drop_last_record(&self) -> u64 {
        let mut inner = self.lock();
        inner
            .records
            .pop()
            .map_or(0, |r| r.len() as u64 + FRAME_HEADER_BYTES as u64)
    }
}

impl StateStore for MemStore {
    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.lock().records.push(payload.to_vec());
        Ok(())
    }

    fn write_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        let retention = inner.retention as usize;
        if let Some(old) = inner.snapshot.take() {
            if retention > 0 {
                inner.old_snapshots.push_back(old);
                while inner.old_snapshots.len() > retention {
                    inner.old_snapshots.pop_front();
                }
            }
        }
        inner.snapshot = Some(snapshot.to_vec());
        inner.records.clear();
        Ok(())
    }

    fn load(&mut self) -> io::Result<StoreContents> {
        let inner = self.lock();
        Ok(StoreContents {
            snapshot: inner.snapshot.clone(),
            records: inner.records.clone(),
            truncated_bytes: 0,
        })
    }

    fn wal_records(&self) -> u64 {
        self.lock().records.len() as u64
    }

    fn wal_bytes(&self) -> u64 {
        self.lock()
            .records
            .iter()
            .map(|r| r.len() as u64 + FRAME_HEADER_BYTES as u64)
            .sum()
    }

    fn snapshot_bytes(&self) -> u64 {
        self.lock().snapshot.as_ref().map_or(0, |s| s.len() as u64)
    }

    fn set_snapshot_retention(&mut self, generations: u32) {
        let mut inner = self.lock();
        inner.retention = generations;
        while inner.old_snapshots.len() > generations as usize {
            inner.old_snapshots.pop_front();
        }
    }

    fn snapshot_generations(&self) -> u64 {
        let inner = self.lock();
        inner.old_snapshots.len() as u64 + u64::from(inner.snapshot.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_round_trips_and_compacts() {
        let mut s = MemStore::new();
        s.append(b"one").unwrap();
        s.append(b"two").unwrap();
        assert_eq!(s.wal_records(), 2);
        let c = s.load().unwrap();
        assert_eq!(c.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(c.snapshot.is_none());

        s.write_snapshot(b"snap").unwrap();
        s.append(b"three").unwrap();
        let c = s.load().unwrap();
        assert_eq!(c.snapshot.as_deref(), Some(&b"snap"[..]));
        assert_eq!(c.records, vec![b"three".to_vec()]);
        assert_eq!(c.truncated_bytes, 0);
    }

    #[test]
    fn mem_store_clone_shares_backing() {
        let mut a = MemStore::new();
        let mut b = a.clone();
        a.append(b"x").unwrap();
        assert_eq!(b.load().unwrap().records, vec![b"x".to_vec()]);
    }

    #[test]
    fn mem_store_retains_last_n_snapshot_generations() {
        let mut s = MemStore::new();
        assert_eq!(s.snapshot_generations(), 0);
        s.write_snapshot(b"g0").unwrap();
        // Retention off: each write replaces the only generation.
        s.write_snapshot(b"g1").unwrap();
        assert_eq!(s.snapshot_generations(), 1);

        s.set_snapshot_retention(2);
        s.write_snapshot(b"g2").unwrap();
        s.write_snapshot(b"g3").unwrap();
        s.write_snapshot(b"g4").unwrap();
        // Current (g4) plus the retained g3 and g2; g1 aged out.
        assert_eq!(s.snapshot_generations(), 3);
        assert_eq!(s.load().unwrap().snapshot.as_deref(), Some(&b"g4"[..]));

        // Tightening retention prunes immediately.
        s.set_snapshot_retention(1);
        assert_eq!(s.snapshot_generations(), 2);
    }
}
