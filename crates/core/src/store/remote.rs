//! Simulated remote KV store backend with seeded fault injection.
//!
//! Real deployments of the control plane would keep durable state in a
//! remote service (the memory/redis/dynamodb spread of typical state
//! crates), which brings two failure modes local files do not have:
//! per-operation service latency and transient request failures. This
//! backend simulates both deterministically: a [`StoreFaultPlan`] derives
//! every fault and latency sample from `(plan seed, operation kind,
//! operation sequence number)` via splitmix64, so a crash drill that hits
//! an injected append failure hits exactly the same failure on every run.
//!
//! Simulated time only: operation latency is *recorded* (histogram
//! `keebo.store.remote_op_us`) but never slept — wall-clock sleeps would
//! violate the repo's determinism rules and slow the drill matrix.

use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Mutex, PoisonError};

use super::{splitmix64, StateStore, StoreContents, FRAME_HEADER_BYTES};

/// Operation-kind salts for fault derivation — distinct streams per verb so
/// e.g. a 100% append-fault plan leaves snapshot writes untouched.
const KIND_APPEND: u64 = 0x41;
const KIND_SNAPSHOT: u64 = 0x53;
const KIND_LOAD: u64 = 0x4C;

const PPM_SCALE: u64 = 1_000_000;

/// Latency histogram bounds, microseconds.
const REMOTE_OP_US_BOUNDS: [f64; 7] = [50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0];

/// Seeded fault-injection plan for a [`RemoteKvStore`]: per-operation
/// failure rates in parts-per-million plus a nominal service latency.
/// Everything derives from `seed`, so a plan is a complete, reproducible
/// description of the store's behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFaultPlan {
    /// Stream seed for fault and latency sampling.
    pub seed: u64,
    /// Probability an `append` fails (ppm). The record is NOT stored.
    pub append_error_ppm: u32,
    /// Probability a `write_snapshot` fails (ppm). Nothing is replaced.
    pub snapshot_error_ppm: u32,
    /// Probability a `load` times out (ppm) — `io::ErrorKind::TimedOut`.
    pub read_timeout_ppm: u32,
    /// Nominal per-op service latency, microseconds (jittered ±50%).
    pub latency_us: u64,
}

impl StoreFaultPlan {
    /// A healthy remote: no faults, no recorded latency.
    pub fn none() -> Self {
        Self {
            seed: 0,
            append_error_ppm: 0,
            snapshot_error_ppm: 0,
            read_timeout_ppm: 0,
            latency_us: 0,
        }
    }

    /// Decodes a plan from arbitrary genome bytes. Total and deterministic:
    /// any byte string (including empty) yields a valid plan — the verify
    /// fuzzer drives this directly. Rates are capped so fuzzed stores stay
    /// mostly operational: appends ≤12%, snapshots ≤50%, reads ≤20%.
    pub fn from_genome(bytes: &[u8]) -> Self {
        let mut padded = [0u8; 24];
        for (dst, src) in padded.iter_mut().zip(bytes) {
            *dst = *src;
        }
        let le_u32 = |at: usize| {
            u32::from_le_bytes([padded[at], padded[at + 1], padded[at + 2], padded[at + 3]])
        };
        Self {
            seed: u64::from_le_bytes([
                padded[0], padded[1], padded[2], padded[3], padded[4], padded[5], padded[6],
                padded[7],
            ]),
            append_error_ppm: le_u32(8) % 120_001,
            snapshot_error_ppm: le_u32(12) % 500_001,
            read_timeout_ppm: le_u32(16) % 200_001,
            latency_us: u64::from(le_u32(20)) % 5_001,
        }
    }

    /// One deterministic sample for operation `op_seq` of `kind`.
    fn roll(&self, kind: u64, op_seq: u64) -> u64 {
        let mut s = self
            .seed
            .wrapping_add(kind.wrapping_mul(0x9E6D_29AA_C2A3_3F25))
            .wrapping_add(op_seq.wrapping_mul(0xA24B_AED4_963E_E407));
        splitmix64(&mut s)
    }

    fn hits(&self, ppm: u32, kind: u64, op_seq: u64) -> bool {
        ppm > 0 && self.roll(kind, op_seq) % PPM_SCALE < u64::from(ppm)
    }

    /// Simulated service latency for this op: nominal ±50% jitter.
    fn latency_sample_us(&self, kind: u64, op_seq: u64) -> u64 {
        if self.latency_us == 0 {
            return 0;
        }
        let jitter_span = self.latency_us.max(1);
        self.latency_us / 2 + self.roll(kind ^ 0x77, op_seq) % (jitter_span + 1)
    }
}

#[derive(Debug, Default)]
struct RemoteInner {
    /// The simulated KV namespace. `wal/{seq:020}` per record,
    /// `snapshot/current`, `snapshot/old/{gen:020}` for retained
    /// generations (lower = older; 20-digit zero padding keeps the
    /// BTreeMap's lexicographic order equal to numeric order for any u64).
    kv: BTreeMap<String, Vec<u8>>,
    wal_seq: u64,
    snap_gen: u64,
    op_seq: u64,
    retention: u32,
    wal_records: u64,
    wal_bytes: u64,
    snapshot_bytes: u64,
}

/// Simulated remote KV [`StateStore`]. `Clone` shares the backing service
/// (the remote outlives the process), so crash drills keep a handle across
/// an orchestrator drop exactly as with [`super::MemStore`].
#[derive(Debug, Clone)]
pub struct RemoteKvStore {
    inner: Arc<Mutex<RemoteInner>>,
    plan: StoreFaultPlan,
}

impl RemoteKvStore {
    pub fn new(plan: StoreFaultPlan) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RemoteInner::default())),
            plan,
        }
    }

    /// The fault plan this store was built with.
    pub fn plan(&self) -> StoreFaultPlan {
        self.plan
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RemoteInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one op's simulated service latency and returns whether the
    /// plan injects a fault for it.
    fn begin_op(&self, inner: &mut RemoteInner, kind: u64, ppm: u32) -> bool {
        let op = inner.op_seq;
        inner.op_seq += 1;
        let us = self.plan.latency_sample_us(kind, op);
        if us > 0 {
            keebo_obs::global()
                .histogram("keebo.store.remote_op_us", &REMOTE_OP_US_BOUNDS)
                .observe(us as f64);
        }
        self.plan.hits(ppm, kind, op)
    }

    /// Drops the most recent WAL record, returning its size — the torn-write
    /// injector for a store with no file to truncate (parity with
    /// [`super::MemStore::drop_last_record`]).
    pub fn drop_last_record(&self) -> u64 {
        let mut inner = self.lock();
        let Some(key) = inner
            .kv
            .range("wal/".to_string().."wal0".to_string())
            .next_back()
            .map(|(k, _)| k.clone())
        else {
            return 0;
        };
        inner.kv.remove(&key).map_or(0, |r| {
            let bytes = r.len() as u64 + FRAME_HEADER_BYTES as u64;
            inner.wal_records = inner.wal_records.saturating_sub(1);
            inner.wal_bytes = inner.wal_bytes.saturating_sub(bytes);
            bytes
        })
    }
}

fn wal_key(seq: u64) -> String {
    // 20 digits covers u64::MAX, so lexicographic key order is always
    // numeric sequence order.
    format!("wal/{seq:020}")
}

fn old_snapshot_key(generation: u64) -> String {
    format!("snapshot/old/{generation:020}")
}

const SNAPSHOT_KEY: &str = "snapshot/current";

impl StateStore for RemoteKvStore {
    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        if self.begin_op(&mut inner, KIND_APPEND, self.plan.append_error_ppm) {
            return Err(io::Error::other("injected remote append failure"));
        }
        let seq = inner.wal_seq;
        inner.wal_seq += 1;
        inner.kv.insert(wal_key(seq), payload.to_vec());
        inner.wal_records += 1;
        inner.wal_bytes += payload.len() as u64 + FRAME_HEADER_BYTES as u64;
        Ok(())
    }

    fn write_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        if self.begin_op(&mut inner, KIND_SNAPSHOT, self.plan.snapshot_error_ppm) {
            return Err(io::Error::other("injected remote snapshot write failure"));
        }
        if let Some(old) = inner.kv.remove(SNAPSHOT_KEY) {
            if inner.retention > 0 {
                let gen = inner.snap_gen;
                inner.kv.insert(old_snapshot_key(gen), old);
                inner.snap_gen += 1;
                // Prune the oldest retained generations beyond the limit.
                loop {
                    let old_count = inner
                        .kv
                        .range(old_snapshot_key(0)..=old_snapshot_key(u64::MAX))
                        .count();
                    if old_count <= inner.retention as usize {
                        break;
                    }
                    let Some(oldest) = inner
                        .kv
                        .range(old_snapshot_key(0)..=old_snapshot_key(u64::MAX))
                        .next()
                        .map(|(k, _)| k.clone())
                    else {
                        break;
                    };
                    inner.kv.remove(&oldest);
                }
            }
        }
        inner.kv.insert(SNAPSHOT_KEY.to_string(), snapshot.to_vec());
        // Snapshot is durable on the remote; compact the log it subsumes.
        let wal_keys: Vec<String> = inner
            .kv
            .range("wal/".to_string().."wal0".to_string())
            .map(|(k, _)| k.clone())
            .collect();
        for k in wal_keys {
            inner.kv.remove(&k);
        }
        inner.wal_records = 0;
        inner.wal_bytes = 0;
        inner.snapshot_bytes = snapshot.len() as u64;
        Ok(())
    }

    fn load(&mut self) -> io::Result<StoreContents> {
        let mut inner = self.lock();
        if self.begin_op(&mut inner, KIND_LOAD, self.plan.read_timeout_ppm) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected remote read timeout",
            ));
        }
        let snapshot = inner.kv.get(SNAPSHOT_KEY).cloned();
        let records: Vec<Vec<u8>> = inner
            .kv
            .range("wal/".to_string().."wal0".to_string())
            .map(|(_, v)| v.clone())
            .collect();
        inner.snapshot_bytes = snapshot.as_ref().map_or(0, |s| s.len() as u64);
        inner.wal_records = records.len() as u64;
        inner.wal_bytes = records
            .iter()
            .map(|r| r.len() as u64 + FRAME_HEADER_BYTES as u64)
            .sum();
        Ok(StoreContents {
            snapshot,
            records,
            truncated_bytes: 0,
        })
    }

    fn wal_records(&self) -> u64 {
        self.lock().wal_records
    }

    fn wal_bytes(&self) -> u64 {
        self.lock().wal_bytes
    }

    fn snapshot_bytes(&self) -> u64 {
        self.lock().snapshot_bytes
    }

    fn set_snapshot_retention(&mut self, generations: u32) {
        self.lock().retention = generations;
    }

    fn snapshot_generations(&self) -> u64 {
        let inner = self.lock();
        let old = inner
            .kv
            .range(old_snapshot_key(0)..=old_snapshot_key(u64::MAX))
            .count() as u64;
        old + u64::from(inner.kv.contains_key(SNAPSHOT_KEY))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_store_round_trips_and_compacts() {
        let mut s = RemoteKvStore::new(StoreFaultPlan::none());
        s.append(b"one").unwrap();
        s.append(b"two").unwrap();
        assert_eq!(s.wal_records(), 2);
        let c = s.load().unwrap();
        assert_eq!(c.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(c.snapshot.is_none());

        s.write_snapshot(b"snap").unwrap();
        s.append(b"three").unwrap();
        let c = s.load().unwrap();
        assert_eq!(c.snapshot.as_deref(), Some(&b"snap"[..]));
        assert_eq!(c.records, vec![b"three".to_vec()]);
        assert_eq!(c.truncated_bytes, 0);
    }

    #[test]
    fn remote_store_clone_shares_backing() {
        let mut a = RemoteKvStore::new(StoreFaultPlan::none());
        let mut b = a.clone();
        a.append(b"x").unwrap();
        assert_eq!(b.load().unwrap().records, vec![b"x".to_vec()]);
    }

    #[test]
    fn wal_keys_keep_records_ordered_past_eight_digits() {
        let mut s = RemoteKvStore::new(StoreFaultPlan::none());
        // Forged high sequence: ordering relies on zero-padded keys.
        s.lock().wal_seq = 99_999_999;
        s.append(b"old").unwrap();
        s.append(b"new").unwrap();
        assert_eq!(
            s.load().unwrap().records,
            vec![b"old".to_vec(), b"new".to_vec()]
        );
    }

    #[test]
    fn injected_faults_are_deterministic_per_op() {
        let plan = StoreFaultPlan {
            seed: 42,
            append_error_ppm: 300_000,
            snapshot_error_ppm: 0,
            read_timeout_ppm: 0,
            latency_us: 0,
        };
        let drive = || {
            let mut s = RemoteKvStore::new(plan);
            (0..64)
                .map(|i| s.append(format!("r{i}").as_bytes()).is_err())
                .collect::<Vec<_>>()
        };
        let a = drive();
        assert_eq!(a, drive(), "fault schedule must be reproducible");
        let failures = a.iter().filter(|&&f| f).count();
        assert!(
            (5..60).contains(&failures),
            "~30% fault rate expected, got {failures}/64"
        );
    }

    #[test]
    fn each_fault_kind_targets_only_its_verb() {
        let mut s = RemoteKvStore::new(StoreFaultPlan {
            seed: 7,
            append_error_ppm: 1_000_000,
            snapshot_error_ppm: 0,
            read_timeout_ppm: 0,
            latency_us: 0,
        });
        assert!(s.append(b"doomed").is_err());
        assert!(s.write_snapshot(b"fine").is_ok());
        assert!(s.load().is_ok());

        let mut s = RemoteKvStore::new(StoreFaultPlan {
            seed: 7,
            append_error_ppm: 0,
            snapshot_error_ppm: 1_000_000,
            read_timeout_ppm: 0,
            latency_us: 0,
        });
        assert!(s.append(b"fine").is_ok());
        assert!(s.write_snapshot(b"doomed").is_err());
        // A failed snapshot write replaces nothing and compacts nothing.
        let c = s.load().unwrap();
        assert!(c.snapshot.is_none());
        assert_eq!(c.records.len(), 1);

        let mut s = RemoteKvStore::new(StoreFaultPlan {
            seed: 7,
            append_error_ppm: 0,
            snapshot_error_ppm: 0,
            read_timeout_ppm: 1_000_000,
            latency_us: 0,
        });
        let err = s.load().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn failed_append_stores_nothing() {
        let plan = StoreFaultPlan {
            seed: 3,
            append_error_ppm: 500_000,
            snapshot_error_ppm: 0,
            read_timeout_ppm: 0,
            latency_us: 0,
        };
        let mut s = RemoteKvStore::new(plan);
        let mut stored = Vec::new();
        for i in 0..32 {
            let rec = format!("rec-{i}");
            if s.append(rec.as_bytes()).is_ok() {
                stored.push(rec.into_bytes());
            }
        }
        assert_eq!(s.load().unwrap().records, stored);
    }

    #[test]
    fn remote_store_retains_last_n_snapshot_generations() {
        let mut s = RemoteKvStore::new(StoreFaultPlan::none());
        s.set_snapshot_retention(2);
        for g in 0..5u8 {
            s.write_snapshot(format!("gen-{g}").as_bytes()).unwrap();
        }
        assert_eq!(s.snapshot_generations(), 3);
        assert_eq!(s.load().unwrap().snapshot.as_deref(), Some(&b"gen-4"[..]));
    }

    #[test]
    fn drop_last_record_mirrors_mem_store() {
        let mut s = RemoteKvStore::new(StoreFaultPlan::none());
        assert_eq!(s.drop_last_record(), 0);
        s.append(b"keep").unwrap();
        s.append(b"lose-me").unwrap();
        let dropped = s.drop_last_record();
        assert_eq!(dropped, b"lose-me".len() as u64 + FRAME_HEADER_BYTES as u64);
        assert_eq!(s.load().unwrap().records, vec![b"keep".to_vec()]);
        assert_eq!(s.wal_records(), 1);
    }

    #[test]
    fn fault_plan_genome_decode_is_total_and_deterministic() {
        assert_eq!(
            StoreFaultPlan::from_genome(&[]),
            StoreFaultPlan {
                seed: 0,
                append_error_ppm: 0,
                snapshot_error_ppm: 0,
                read_timeout_ppm: 0,
                latency_us: 0
            }
        );
        let genome: Vec<u8> = (0..64u8).collect();
        let a = StoreFaultPlan::from_genome(&genome);
        assert_eq!(a, StoreFaultPlan::from_genome(&genome));
        // Rate caps hold whatever the bytes say.
        for len in 0..40 {
            let p = StoreFaultPlan::from_genome(&vec![0xFF; len]);
            assert!(p.append_error_ppm <= 120_000);
            assert!(p.snapshot_error_ppm <= 500_000);
            assert!(p.read_timeout_ppm <= 200_000);
            assert!(p.latency_us <= 5_000);
        }
    }

    #[test]
    fn latency_is_recorded_not_slept() {
        let plan = StoreFaultPlan {
            seed: 9,
            append_error_ppm: 0,
            snapshot_error_ppm: 0,
            read_timeout_ppm: 0,
            latency_us: 400,
        };
        let mut s = RemoteKvStore::new(plan);
        for i in 0..16 {
            s.append(format!("r{i}").as_bytes()).unwrap();
        }
        // Sampled latency stays within the nominal ±50% jitter band.
        for op in 0..16u64 {
            let us = plan.latency_sample_us(KIND_APPEND, op);
            assert!((200..=800).contains(&us), "latency {us}µs out of band");
        }
    }
}
