//! Backend-generic crash-drill harness for the durable control plane.
//!
//! The recovery suite, the crash-drill matrix, and the `store_faults` bench
//! all run the same experiment: optimize a seeded scenario with a
//! journaling control plane, kill it at a seeded tick, restore from the
//! surviving store, finish the run, and compare the [`Fingerprint`] (full
//! action log + billed credits, bit for bit) against an uninterrupted run.
//! This module is that experiment, factored once so every store backend —
//! [`MemStore`], [`FileStore`], [`RemoteKvStore`] under a fault plan — runs
//! through one table-driven path instead of three near-duplicate setups.
//!
//! Like [`CrashPlan`], this is library code rather than test-only code on
//! purpose: the bench bin drives the same cells the tests pin, so a
//! BENCH_store.json regression and a test failure point at the same drill.

use std::path::PathBuf;

use crate::actuator::ActionLogEntry;
use crate::orchestrator::{KwoSetup, Orchestrator, SnapshotPolicy};
use crate::persist::{PersistError, RecoveryStats};
use crate::store::{CrashPlan, FileStore, MemStore, RemoteKvStore, StateStore, StoreFaultPlan};
use cdw_sim::{
    Account, FaultPlan, Simulator, WarehouseConfig, WarehouseId, WarehouseSize, DAY_MS, HOUR_MS,
    MINUTE_MS,
};
use workload::{generate_trace, BiWorkload, EtlWorkload};

/// The one warehouse every drill scenario manages.
pub const WAREHOUSE: &str = "WH";
/// Control-tick cadence of the drill setups.
pub const TICK_MS: u64 = 30 * MINUTE_MS;
/// Observation window before onboarding.
pub const OBSERVE_MS: u64 = DAY_MS;
/// End of the standard drill run.
pub const END_MS: u64 = 2 * DAY_MS;
/// Number of drill scenarios [`build_sim`] knows.
pub const SCENARIOS: usize = 5;

/// Control ticks in the optimization window of a standard drill run.
pub const OPTIMIZE_TICKS: u64 = (END_MS - OBSERVE_MS) / TICK_MS;

/// The observable outcome recovery must reproduce exactly: the full action
/// log and the warehouse's billed credits (as raw bits — no float slop).
pub type Fingerprint = (Vec<ActionLogEntry>, u64);

/// Drill-speed KWO setup: 30-minute ticks, cheap training.
pub fn fast_setup() -> KwoSetup {
    KwoSetup {
        realtime_interval_ms: TICK_MS,
        onboarding_episodes: 2,
        refresh_episodes: 0,
        train_interval_ms: 2 * DAY_MS,
        ..KwoSetup::default()
    }
}

/// Five distinct scenarios: sizes, workload shapes, and fault plans vary so
/// recovery is exercised through outages, failed ALTERs, and both workload
/// archetypes — not just the happy path.
pub fn build_sim(scenario: usize, seed: u64) -> (Simulator, WarehouseId) {
    let size = match scenario % 3 {
        0 => WarehouseSize::Large,
        1 => WarehouseSize::Medium,
        _ => WarehouseSize::XLarge,
    };
    let mut account = Account::new();
    let wh = account.create_warehouse(
        WAREHOUSE,
        WarehouseConfig::new(size).with_auto_suspend_secs(1800),
    );
    let plan = match scenario {
        3 => FaultPlan::none().with_telemetry_outage(DAY_MS + 2 * HOUR_MS, DAY_MS + 5 * HOUR_MS),
        4 => FaultPlan::none().with_alter_burst(DAY_MS + HOUR_MS, DAY_MS + 6 * HOUR_MS, 1.0),
        _ => FaultPlan::none(),
    };
    let mut sim = Simulator::with_faults(account, plan, seed ^ 0xFA11);
    let queries = if scenario.is_multiple_of(2) {
        generate_trace(
            &BiWorkload {
                dashboards: 2,
                queries_per_refresh: 2,
                peak_refreshes_per_hour: 4.0,
                ..BiWorkload::default()
            },
            0,
            END_MS,
            seed,
        )
    } else {
        generate_trace(
            &EtlWorkload {
                pipelines: 2,
                queries_per_run: 2,
                period_ms: 2 * HOUR_MS,
                ..EtlWorkload::default()
            },
            0,
            END_MS,
            seed,
        )
    };
    for q in queries {
        sim.submit_query(wh, q);
    }
    (sim, wh)
}

/// Fingerprints a finished run. An unmanaged warehouse yields an empty log
/// (the comparison against a managed baseline then fails loudly).
pub fn fingerprint(kwo: &Orchestrator, sim: &Simulator, wh: WarehouseId) -> Fingerprint {
    let log = kwo
        .optimizer(WAREHOUSE)
        .map(|o| o.actuator().log().to_vec())
        .unwrap_or_default();
    let credits = sim.account().accrued_credits(wh, sim.now()).to_bits();
    (log, credits)
}

/// The store-less baseline every drill cell is compared against.
pub fn run_uninterrupted(scenario: usize, seed: u64) -> Fingerprint {
    let (mut sim, wh) = build_sim(scenario, seed);
    let mut kwo = Orchestrator::new(seed);
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, END_MS);
    fingerprint(&kwo, &sim, wh)
}

/// Which store the drill journals through.
#[derive(Debug, Clone)]
pub enum DrillBackend {
    /// In-memory store (handle cloned across the crash).
    Mem,
    /// File store rooted at this directory (reopened after the crash).
    File(PathBuf),
    /// Simulated remote KV under this fault plan (handle cloned).
    Remote(StoreFaultPlan),
}

/// One cell of the crash-drill matrix.
#[derive(Debug, Clone)]
pub struct DrillCell {
    /// Scenario index, `0..SCENARIOS`.
    pub scenario: usize,
    /// Run seed (workload + learning).
    pub seed: u64,
    /// Seed for the [`CrashPlan`] picking the kill tick.
    pub crash_seed: u64,
    /// Store backend under drill.
    pub backend: DrillBackend,
    /// Compaction-policy override; `None` runs the setup default
    /// (48-tick cadence).
    pub policy: Option<SnapshotPolicy>,
    /// Also tear the WAL tail after the kill (loses the final record, so
    /// bit-identity against the baseline is not expected).
    pub torn: bool,
}

impl DrillCell {
    /// A clean-kill cell on `backend` with the default policy.
    pub fn clean(scenario: usize, seed: u64, crash_seed: u64, backend: DrillBackend) -> Self {
        Self {
            scenario,
            seed,
            crash_seed,
            backend,
            policy: None,
            torn: false,
        }
    }

    /// The tick boundary this cell's control plane is killed at.
    pub fn crash_tick(&self) -> u64 {
        CrashPlan::clean_from_seed(self.crash_seed, OPTIMIZE_TICKS).crash_tick
    }
}

/// What one drill cell produced.
#[derive(Debug)]
pub struct DrillOutcome {
    /// Fingerprint of the finished (crashed + recovered) run.
    pub fingerprint: Fingerprint,
    /// Recovery statistics from the restore.
    pub stats: RecoveryStats,
    /// Tick the control plane was killed at.
    pub crash_tick: u64,
    /// WAL bytes destroyed by the torn-tail injection (0 for clean kills).
    pub dropped_bytes: u64,
}

/// The survivor side of the crash: whatever outlives the dead control
/// plane's store handle.
enum Survivor {
    Mem(MemStore),
    File(PathBuf),
    Remote(RemoteKvStore),
}

/// Runs one drill cell end to end: journal, kill, (optionally) tear,
/// restore, finish. Errors surface store/recovery failures — a cell whose
/// fault plan defeats the orchestrator's retries reports it here rather
/// than panicking.
pub fn run_cell(cell: &DrillCell) -> Result<DrillOutcome, PersistError> {
    let plan = CrashPlan::clean_from_seed(cell.crash_seed, OPTIMIZE_TICKS);
    let crash_t = OBSERVE_MS + plan.crash_tick * TICK_MS;
    let (mut sim, wh) = build_sim(cell.scenario, cell.seed);
    let mut kwo = Orchestrator::new(cell.seed);
    if let Some(p) = cell.policy {
        kwo.set_snapshot_policy(p);
    }
    let survivor = match &cell.backend {
        DrillBackend::Mem => {
            let s = MemStore::new();
            kwo.attach_store(Box::new(s.clone()), sim.now());
            Survivor::Mem(s)
        }
        DrillBackend::File(dir) => {
            let s = FileStore::open(dir)?;
            kwo.attach_store(Box::new(s), sim.now());
            Survivor::File(dir.clone())
        }
        DrillBackend::Remote(fault_plan) => {
            let s = RemoteKvStore::new(*fault_plan);
            kwo.attach_store(Box::new(s.clone()), sim.now());
            Survivor::Remote(s)
        }
    };
    kwo.manage(&sim, WAREHOUSE, fast_setup());
    kwo.observe_until(&mut sim, OBSERVE_MS);
    kwo.onboard(&mut sim);
    kwo.run_until(&mut sim, crash_t);
    // The control plane dies; the warehouse and the store survive.
    drop(kwo);

    let mut dropped_bytes = 0u64;
    let store: Box<dyn StateStore> = match survivor {
        Survivor::Mem(s) => {
            if cell.torn {
                dropped_bytes = s.drop_last_record();
            }
            Box::new(s)
        }
        Survivor::File(dir) => {
            let mut s = FileStore::open(&dir)?;
            if cell.torn {
                let len = s.wal_bytes();
                let keep = plan.torn_offset(len);
                if keep < len {
                    s.truncate_wal_to(keep)?;
                    dropped_bytes = len - keep;
                }
            }
            Box::new(s)
        }
        Survivor::Remote(s) => {
            if cell.torn {
                dropped_bytes = s.drop_last_record();
            }
            Box::new(s)
        }
    };

    let (mut kwo, stats) = Orchestrator::restore(store, &sim)?;
    kwo.run_until(&mut sim, END_MS);
    Ok(DrillOutcome {
        fingerprint: fingerprint(&kwo, &sim, wh),
        stats,
        crash_tick: plan.crash_tick,
        dropped_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_cells_pick_in_range_crash_ticks() {
        for crash_seed in 0..64u64 {
            let cell = DrillCell::clean(0, 1, crash_seed, DrillBackend::Mem);
            let t = cell.crash_tick();
            assert!(
                (1..OPTIMIZE_TICKS).contains(&t),
                "crash tick {t} outside the optimization window"
            );
        }
    }

    #[test]
    fn scenarios_produce_distinct_simulations() {
        // Cheap sanity: scenario variation actually changes the warehouse
        // and the fault plan, so the matrix is not 5 copies of one drill.
        let sizes: Vec<WarehouseSize> = (0..SCENARIOS)
            .map(|s| {
                let (sim, wh) = build_sim(s, 7);
                sim.account().describe(wh).config.size
            })
            .collect();
        assert!(
            sizes.windows(2).any(|w| w[0] != w[1]),
            "all scenarios produced the same warehouse size: {sizes:?}"
        );
        let (outage_sim, _) = build_sim(3, 7);
        let (calm_sim, _) = build_sim(0, 7);
        assert_ne!(
            outage_sim.fault_plan(),
            calm_sim.fault_plan(),
            "scenario 3 should carry a telemetry-outage fault plan"
        );
    }
}
