//! Durable state stores for the control plane.
//!
//! The paper's warehouse optimizer runs as a long-lived service; §7 stresses
//! that optimization must be "fully automated" and safe to operate. A
//! control plane that forgets its learned models and reconciliation state on
//! every restart is neither: it would re-onboard each warehouse (re-running
//! exploration against live traffic) and lose its savings accounting. This
//! module provides the storage layer for a crash-safe control plane:
//!
//! * [`StateStore`] — point-in-time snapshot plus an append-only record log
//!   (write-ahead log, WAL). Snapshots bound replay time; the WAL captures
//!   every tick since the last snapshot.
//! * [`MemStore`] — in-memory store for tests and fleet runs. Cloning shares
//!   the backing storage, so a harness can keep a handle across an
//!   orchestrator "crash" (drop).
//! * [`FileStore`] — file-backed store with length+CRC32-framed records,
//!   atomic (tmp file + rename) snapshot writes, and torn-tail truncation on
//!   open: a record half-written at kill time is dropped, never replayed.
//! * [`CrashPlan`] — deterministic crash-injection schedule for the recovery
//!   harness (kill tick and optional torn-write byte offset from a seed).
//!
//! Crash model: the *control plane* process dies; the warehouse (the cloud)
//! keeps running. A clean crash at a tick boundary loses nothing — recovery
//! replays the WAL and resumes bit-identically. A torn write loses at most
//! the final unflushed record; recovery truncates the tail and resumes from
//! the last complete record.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Hand-rolled bitwise loop —
/// record frames are small and this avoids a table or a dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Everything a store holds, as read back at recovery time.
#[derive(Debug, Default)]
pub struct StoreContents {
    /// The latest snapshot payload, if one was ever written.
    pub snapshot: Option<Vec<u8>>,
    /// WAL record payloads appended since that snapshot, oldest first.
    pub records: Vec<Vec<u8>>,
    /// Bytes dropped from a torn WAL tail while loading (0 for a clean log).
    pub truncated_bytes: u64,
}

/// A durable home for control-plane state: one snapshot slot plus an
/// append-only record log that `write_snapshot` compacts.
pub trait StateStore: Send {
    /// Appends one record payload to the log.
    fn append(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Atomically replaces the snapshot and compacts (empties) the log.
    fn write_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()>;

    /// Reads back the snapshot and log, validating integrity. A torn log
    /// tail is truncated (reported via `truncated_bytes`), not an error; a
    /// corrupt snapshot *is* an error, because snapshot writes are atomic.
    fn load(&mut self) -> io::Result<StoreContents>;

    /// Records appended since the last snapshot.
    fn wal_records(&self) -> u64;

    /// Bytes in the log since the last snapshot (framing included).
    fn wal_bytes(&self) -> u64;

    /// Size of the last snapshot payload written or loaded.
    fn snapshot_bytes(&self) -> u64;
}

#[derive(Debug, Default)]
struct MemInner {
    snapshot: Option<Vec<u8>>,
    records: Vec<Vec<u8>>,
}

/// In-memory [`StateStore`]. `Clone` shares the backing storage: the test
/// harness clones a handle, hands one copy to the orchestrator, drops the
/// orchestrator to simulate a crash, and restores from the survivor.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drops the most recent WAL record, returning its size — simulates a
    /// torn write for stores that have no file to truncate.
    pub fn drop_last_record(&self) -> u64 {
        let mut inner = self.lock();
        inner.records.pop().map_or(0, |r| r.len() as u64 + 8)
    }
}

impl StateStore for MemStore {
    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.lock().records.push(payload.to_vec());
        Ok(())
    }

    fn write_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        inner.snapshot = Some(snapshot.to_vec());
        inner.records.clear();
        Ok(())
    }

    fn load(&mut self) -> io::Result<StoreContents> {
        let inner = self.lock();
        Ok(StoreContents {
            snapshot: inner.snapshot.clone(),
            records: inner.records.clone(),
            truncated_bytes: 0,
        })
    }

    fn wal_records(&self) -> u64 {
        self.lock().records.len() as u64
    }

    fn wal_bytes(&self) -> u64 {
        self.lock()
            .records
            .iter()
            .map(|r| r.len() as u64 + FRAME_HEADER_BYTES as u64)
            .sum()
    }

    fn snapshot_bytes(&self) -> u64 {
        self.lock().snapshot.as_ref().map_or(0, |s| s.len() as u64)
    }
}

/// Flushes directory metadata so a just-renamed entry in `dir` survives
/// power loss. `rename` is atomic with respect to concurrent readers, but
/// the *directory entry* pointing at the new snapshot is ordinary metadata:
/// a crash after the rename and before the directory block reaches disk can
/// bring the store back up with the old (or no) snapshot file. Fail-open,
/// per the control plane's persistence convention: a sync failure is
/// counted (`keebo.store.dir_sync_failures`) but never fails the write —
/// the data path already fsynced, and the next snapshot retries the
/// metadata flush.
fn sync_dir(dir: &Path) {
    if File::open(dir).and_then(|d| d.sync_all()).is_err() {
        keebo_obs::global()
            .counter("keebo.store.dir_sync_failures")
            .inc();
    }
}

const FRAME_HEADER_BYTES: usize = 8; // u32 length + u32 crc32
const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Outcome of scanning a frame stream: complete payloads plus how many bytes
/// of the prefix were valid (anything after is a torn/corrupt tail).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FrameScan {
    pub payloads: Vec<Vec<u8>>,
    pub valid_bytes: usize,
}

/// Decodes as many complete, checksum-valid frames as possible from the
/// front of `bytes`. Total: never panics, whatever the input — arbitrary
/// bytes just yield a shorter (possibly empty) prefix. The verify fuzzer
/// drives this with raw genome bytes.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER_BYTES {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let start = pos + FRAME_HEADER_BYTES;
        let Some(end) = start.checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload.to_vec());
        pos = end;
    }
    FrameScan {
        payloads,
        valid_bytes: pos,
    }
}

/// File-backed [`StateStore`]: `wal.log` holds framed records, `snapshot.bin`
/// holds one framed snapshot, `snapshot.tmp` is the atomic-write staging
/// file. Appends are flushed per record so a kill between ticks loses
/// nothing; a kill mid-write loses only the torn tail.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    wal: File,
    wal_records: u64,
    wal_bytes: u64,
    snapshot_bytes: u64,
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(dir.join(WAL_FILE))?;
        let wal_bytes = wal.metadata()?.len();
        let snapshot_bytes = fs::metadata(dir.join(SNAPSHOT_FILE))
            .map(|m| m.len().saturating_sub(FRAME_HEADER_BYTES as u64))
            .unwrap_or(0);
        Ok(Self {
            dir,
            wal,
            wal_records: 0, // unknown until load(); counts appends otherwise
            wal_bytes,
            snapshot_bytes,
        })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Truncates the WAL file to `len` bytes — the torn-write injector for
    /// the crash harness.
    pub fn truncate_wal_to(&mut self, len: u64) -> io::Result<()> {
        let keep = len.min(self.wal_bytes);
        self.wal.set_len(keep)?;
        self.wal.seek(SeekFrom::End(0))?;
        self.wal_bytes = keep;
        Ok(())
    }
}

impl StateStore for FileStore {
    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(payload);
        self.wal.write_all(&frame)?;
        self.wal.flush()?;
        self.wal_records += 1;
        self.wal_bytes += frame.len() as u64;
        Ok(())
    }

    fn write_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let frame = encode_frame(snapshot);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&frame)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // Make the rename itself durable: without a directory sync, a crash
        // after the rename can lose the new directory entry and resurrect
        // the pre-snapshot state even though the payload was fsynced.
        sync_dir(&self.dir);
        // Snapshot is durable; the log it subsumes can go.
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::End(0))?;
        self.wal_records = 0;
        self.wal_bytes = 0;
        self.snapshot_bytes = snapshot.len() as u64;
        Ok(())
    }

    fn load(&mut self) -> io::Result<StoreContents> {
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let snapshot = match fs::read(&snap_path) {
            Ok(bytes) => {
                let scan = scan_frames(&bytes);
                if scan.payloads.len() != 1 || scan.valid_bytes != bytes.len() {
                    // Snapshot writes are atomic (tmp + rename), so a bad
                    // snapshot is real corruption, not a torn write.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt snapshot at {}", snap_path.display()),
                    ));
                }
                scan.payloads.into_iter().next()
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        self.snapshot_bytes = snapshot.as_ref().map_or(0, |s| s.len() as u64);

        let mut wal_bytes = Vec::new();
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.read_to_end(&mut wal_bytes)?;
        let scan = scan_frames(&wal_bytes);
        let truncated = (wal_bytes.len() - scan.valid_bytes) as u64;
        if truncated > 0 {
            // Drop the torn tail so future appends extend a valid log.
            self.wal.set_len(scan.valid_bytes as u64)?;
        }
        self.wal.seek(SeekFrom::End(0))?;
        self.wal_records = scan.payloads.len() as u64;
        self.wal_bytes = scan.valid_bytes as u64;
        Ok(StoreContents {
            snapshot,
            records: scan.payloads,
            truncated_bytes: truncated,
        })
    }

    fn wal_records(&self) -> u64 {
        self.wal_records
    }

    fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic crash-injection schedule: derived purely from a seed so
/// every (scenario, crash) pair is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Tick boundary (1-based tick count into the run) after which the
    /// control plane is killed.
    pub crash_tick: u64,
    /// When set, the kill also tears the WAL: the file is truncated at
    /// [`CrashPlan::torn_offset`] instead of ending on a record boundary.
    pub torn_tail: bool,
    seed: u64,
}

impl CrashPlan {
    /// Derives a plan from `seed` for a run of `total_ticks` ticks. The
    /// crash lands strictly inside the run (never before the first tick,
    /// never at/after the last) so recovery always has work on both sides.
    pub fn from_seed(seed: u64, total_ticks: u64) -> Self {
        let mut sm = seed ^ 0xC2A5_9F5C_7E1D_3B41;
        let span = total_ticks.saturating_sub(2).max(1);
        let crash_tick = 1 + splitmix64(&mut sm) % span;
        let torn_tail = splitmix64(&mut sm).is_multiple_of(4);
        Self {
            crash_tick,
            torn_tail,
            seed,
        }
    }

    /// Byte offset to tear the WAL at, in `(0, wal_len)` — always cuts at
    /// least one byte so the final record really is damaged.
    pub fn torn_offset(&self, wal_len: u64) -> u64 {
        if wal_len <= 1 {
            return 0;
        }
        let mut sm = self.seed ^ 0x1B56_C4E9_9C30_A2F7;
        splitmix64(&mut sm) % (wal_len - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch dir per test invocation (tests run in parallel).
    pub(crate) fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("kwo-store-{}-{tag}-{n}", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn mem_store_round_trips_and_compacts() {
        let mut s = MemStore::new();
        s.append(b"one").unwrap();
        s.append(b"two").unwrap();
        assert_eq!(s.wal_records(), 2);
        let c = s.load().unwrap();
        assert_eq!(c.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(c.snapshot.is_none());

        s.write_snapshot(b"snap").unwrap();
        s.append(b"three").unwrap();
        let c = s.load().unwrap();
        assert_eq!(c.snapshot.as_deref(), Some(&b"snap"[..]));
        assert_eq!(c.records, vec![b"three".to_vec()]);
        assert_eq!(c.truncated_bytes, 0);
    }

    #[test]
    fn mem_store_clone_shares_backing() {
        let mut a = MemStore::new();
        let mut b = a.clone();
        a.append(b"x").unwrap();
        assert_eq!(b.load().unwrap().records, vec![b"x".to_vec()]);
    }

    #[test]
    fn file_store_round_trips_across_reopen() {
        let dir = scratch_dir("roundtrip");
        {
            let mut s = FileStore::open(&dir).unwrap();
            s.write_snapshot(b"snapshot-payload").unwrap();
            s.append(b"rec-a").unwrap();
            s.append(b"rec-b").unwrap();
        }
        let mut s = FileStore::open(&dir).unwrap();
        let c = s.load().unwrap();
        assert_eq!(c.snapshot.as_deref(), Some(&b"snapshot-payload"[..]));
        assert_eq!(c.records, vec![b"rec-a".to_vec(), b"rec-b".to_vec()]);
        assert_eq!(c.truncated_bytes, 0);
        assert_eq!(s.snapshot_bytes(), 16);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_truncates_torn_tail_and_keeps_appending() {
        let dir = scratch_dir("torn");
        let cut;
        {
            let mut s = FileStore::open(&dir).unwrap();
            s.append(b"first-record").unwrap();
            s.append(b"second-record").unwrap();
            // Tear mid-way through the second record's frame.
            cut = s.wal_bytes() - 5;
            s.truncate_wal_to(cut).unwrap();
        }
        let mut s = FileStore::open(&dir).unwrap();
        let c = s.load().unwrap();
        assert_eq!(c.records, vec![b"first-record".to_vec()]);
        assert!(c.truncated_bytes > 0);
        // The log stays usable after truncation.
        s.append(b"post-crash").unwrap();
        let c = s.load().unwrap();
        assert_eq!(
            c.records,
            vec![b"first-record".to_vec(), b"post-crash".to_vec()]
        );
        assert_eq!(c.truncated_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_write_syncs_directory_without_failing_open() {
        // Success path: a snapshot write on a real directory performs the
        // directory sync cleanly — no fail-open counter tick — and the
        // renamed entry is immediately visible to a reopened store.
        let dir = scratch_dir("dirsync");
        let failures = keebo_obs::global().counter("keebo.store.dir_sync_failures");
        let before = failures.get();
        {
            let mut s = FileStore::open(&dir).unwrap();
            s.write_snapshot(b"synced snapshot").unwrap();
        }
        assert_eq!(
            failures.get(),
            before,
            "healthy directory sync must not count as a failure"
        );
        let mut s = FileStore::open(&dir).unwrap();
        let c = s.load().unwrap();
        assert_eq!(c.snapshot.as_deref(), Some(&b"synced snapshot"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_sync_failure_is_counted_not_fatal() {
        // Fail-open path: syncing a directory that cannot be opened ticks
        // the counter instead of erroring — mirroring the PR 6 convention
        // that persistence problems degrade observability-first.
        let failures = keebo_obs::global().counter("keebo.store.dir_sync_failures");
        let before = failures.get();
        sync_dir(Path::new("/nonexistent/kwo-store-dir-sync-test"));
        assert_eq!(failures.get(), before + 1);
    }

    #[test]
    fn file_store_detects_corrupt_snapshot() {
        let dir = scratch_dir("corrupt-snap");
        {
            let mut s = FileStore::open(&dir).unwrap();
            s.write_snapshot(b"good snapshot bytes").unwrap();
        }
        // Flip a payload byte: CRC must catch it.
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let mut s = FileStore::open(&dir).unwrap();
        assert!(s.load().is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_frames_is_total_on_arbitrary_bytes() {
        assert_eq!(scan_frames(&[]), FrameScan::default());
        // A length prefix promising more bytes than exist.
        let mut bogus = vec![0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0];
        assert_eq!(scan_frames(&bogus).payloads.len(), 0);
        // Valid frame followed by garbage: prefix decodes, garbage dropped.
        let mut bytes = encode_frame(b"payload");
        let valid = bytes.len();
        bogus.truncate(3);
        bytes.extend_from_slice(&bogus);
        let scan = scan_frames(&bytes);
        assert_eq!(scan.payloads, vec![b"payload".to_vec()]);
        assert_eq!(scan.valid_bytes, valid);
    }

    #[test]
    fn crash_plan_is_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = CrashPlan::from_seed(seed, 96);
            let b = CrashPlan::from_seed(seed, 96);
            assert_eq!(a, b);
            assert!((1..96).contains(&a.crash_tick), "tick {}", a.crash_tick);
            let off = a.torn_offset(1000);
            assert!((1..1000).contains(&off), "offset {off}");
        }
        // Degenerate runs still produce a usable plan.
        let tiny = CrashPlan::from_seed(1, 1);
        assert_eq!(tiny.crash_tick, 1);
        assert_eq!(tiny.torn_offset(0), 0);
    }
}
