//! Serving gateway: deterministic multi-tenant admission and dispatch.
//!
//! The paper's KWO is a *service*: customers submit queries, move sliders,
//! edit constraints, and read decision traces against a shared control
//! plane that optimizes many tenants at once. This module is that front
//! door for the simulated fleet. Clients call [`Gateway::submit`] and get a
//! synchronous [`Admission`]; admitted requests execute on the next control
//! tick, which drives every tenant shard concurrently on the existing
//! persistent [`WorkerPool`].
//!
//! Admission control (all per tenant, all deterministic):
//!
//! * **rate limiting** — a token bucket refilled per control tick
//!   (`limiter.rs`), never from a wall clock;
//! * **quotas** — a run-long cap on admitted requests;
//! * **backpressure** — bounded per-priority FIFO queues (`queue.rs`);
//!   when a class is full the arriving request is shed with
//!   [`ShedReason::QueueFull`], never buffered unboundedly;
//! * **priority** — interactive drains ahead of batch, with reserved
//!   batch slots as starvation protection.
//!
//! # Determinism
//!
//! The crown jewel invariant of this repo — bit-identical results at any
//! thread count — extends through the gateway:
//!
//! * admission decisions happen in [`Gateway::submit`] call order on the
//!   caller's thread; worker threads never influence them;
//! * each tick drains per-tenant batches by (priority class, admission
//!   seq) and hands shard `i` exactly its own batch; shards only touch
//!   their own state, and per-shard response fingerprints fold in spec
//!   order after the barrier;
//! * query specs dispatched into a shard get ids and arrivals derived
//!   from the admission seq and the shard's virtual clock.
//!
//! So [`FleetReport::digest`], the decision digest, and the response
//! digest are all invariant across `parallelism` — pinned by the gateway
//! determinism tests and the `gateway` bench.

mod limiter;
mod queue;
mod request;

pub use limiter::TokenBucket;
pub use request::{Admission, Priority, Request, RequestKind, ShedReason};

use crate::fleet::{build_shard, fleet_rollup, tenant_report, FleetShard, Fnv};
use crate::fleet::{FleetReport, TenantSpec};
use crate::pool::WorkerPool;
use crate::pricing::ValueBasedPricing;
use cdw_sim::SimTime;
use queue::{AdmissionQueue, Ticket};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Query ids minted by the gateway start here so they can never collide
/// with trace-generator ids (workload generators count up from 0).
const GATEWAY_QUERY_ID_BASE: u64 = 1_000_000_000;

/// Histogram buckets for admission wall latency (microseconds).
const ADMIT_US_BUCKETS: [f64; 7] = [1.0, 5.0, 10.0, 50.0, 100.0, 1_000.0, 10_000.0];

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Gateway tuning. Every knob is in virtual-tick units; nothing reads a
/// wall clock, so one config + one request sequence = one outcome.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Virtual time each control tick advances every shard.
    pub tick_ms: SimTime,
    /// Token-bucket burst size per tenant.
    pub bucket_capacity: f64,
    /// Tokens returned to each tenant's bucket per tick.
    pub refill_per_tick: f64,
    /// Run-long admitted-request cap per tenant.
    pub quota: u64,
    /// Bound on each per-priority FIFO (per tenant).
    pub queue_capacity: usize,
    /// Dispatch slots per tenant per tick.
    pub batch_per_tenant: usize,
    /// Of those, slots guaranteed to the batch class while it has work.
    pub reserved_batch_slots: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            tick_ms: 30 * cdw_sim::MINUTE_MS,
            bucket_capacity: 8.0,
            refill_per_tick: 4.0,
            quota: 10_000,
            queue_capacity: 16,
            batch_per_tenant: 4,
            reserved_batch_slots: 1,
        }
    }
}

/// Per-reason shed counts (also exported as `keebo.gateway.shed.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedCounts {
    pub unknown_tenant: u64,
    pub rate_limited: u64,
    pub quota_exhausted: u64,
    pub queue_full: u64,
}

impl ShedCounts {
    fn bump(&mut self, reason: ShedReason) {
        match reason {
            ShedReason::UnknownTenant => self.unknown_tenant += 1,
            ShedReason::RateLimited => self.rate_limited += 1,
            ShedReason::QuotaExhausted => self.quota_exhausted += 1,
            ShedReason::QueueFull => self.queue_full += 1,
        }
    }

    pub fn total(&self) -> u64 {
        self.unknown_tenant + self.rate_limited + self.quota_exhausted + self.queue_full
    }
}

/// Everything the gateway measured over one run. The digests and the
/// virtual-tick wait samples are deterministic; the wall-clock admission
/// latencies (`admit_wall_us`) are measurement-only and never fold into
/// any digest.
#[derive(Debug, Clone, Default)]
pub struct GatewayStats {
    /// Requests admitted (dense seq space: `0..admitted`).
    pub admitted: u64,
    pub shed: ShedCounts,
    /// Tickets dispatched into shards, per priority class.
    pub dispatched_interactive: u64,
    pub dispatched_batch: u64,
    /// Control ticks executed.
    pub ticks: u64,
    /// Order-sensitive fingerprint of every admission decision.
    pub decisions_digest: u64,
    /// Spec-order fold of per-shard dispatch/response fingerprints.
    pub responses_digest: u64,
    /// Queue wait in whole ticks for each dispatched ticket, per class
    /// (deterministic; the priority-inversion test bounds the
    /// interactive distribution).
    pub wait_ticks_interactive: Vec<f64>,
    /// See [`GatewayStats::wait_ticks_interactive`].
    pub wait_ticks_batch: Vec<f64>,
    /// Wall microseconds spent inside each `submit` call (bench
    /// percentiles; excluded from all digests).
    pub admit_wall_us: Vec<f64>,
}

/// The admission/dispatch front door for one simulated fleet. See the
/// module docs for the protocol and determinism contract.
pub struct Gateway {
    config: GatewayConfig,
    pricing: ValueBasedPricing,
    seed: u64,
    persistence: bool,
    tenants: Arc<Vec<TenantSpec>>,
    /// Tenant name → spec index (BTreeMap: deterministic iteration).
    index: BTreeMap<String, usize>,
    /// One shard slot per tenant, filled by [`Gateway::start`]. Shared
    /// with pool jobs, which each lock only their own index.
    shards: Arc<Vec<Mutex<Option<FleetShard>>>>,
    meters: Vec<limiter::TenantMeter>,
    queues: Vec<AdmissionQueue>,
    next_seq: u64,
    observe_until: SimTime,
    /// Virtual fleet clock: every shard has been driven to here.
    now: SimTime,
    started: bool,
    decisions: Fnv,
    responses: Fnv,
    stats: GatewayStats,
}

impl Gateway {
    /// A gateway over `tenants` with the given fleet seed. Shards are not
    /// built until [`Gateway::start`].
    pub fn new(seed: u64, config: GatewayConfig, tenants: Vec<TenantSpec>) -> Self {
        assert!(!tenants.is_empty(), "gateway needs at least one tenant");
        assert!(config.tick_ms > 0, "tick must advance virtual time");
        assert!(
            config.reserved_batch_slots <= config.batch_per_tenant,
            "cannot reserve more slots than the batch size"
        );
        let index: BTreeMap<String, usize> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), i))
            .collect();
        assert!(index.len() == tenants.len(), "tenant names must be unique");
        let meters = tenants
            .iter()
            .map(|_| {
                limiter::TenantMeter::new(
                    TokenBucket::new(config.bucket_capacity, config.refill_per_tick),
                    config.quota,
                )
            })
            .collect();
        let queues = tenants.iter().map(|_| AdmissionQueue::default()).collect();
        let shards = Arc::new(tenants.iter().map(|_| Mutex::new(None)).collect::<Vec<_>>());
        Self {
            config,
            pricing: ValueBasedPricing::default(),
            seed,
            persistence: false,
            tenants: Arc::new(tenants),
            index,
            shards,
            meters,
            queues,
            next_seq: 0,
            observe_until: 0,
            now: 0,
            started: false,
            decisions: Fnv::new(),
            responses: Fnv::new(),
            stats: GatewayStats::default(),
        }
    }

    /// Turns on per-shard durable journaling (mirrors
    /// [`crate::fleet::FleetController::with_persistence`]).
    pub fn with_persistence(mut self) -> Self {
        self.persistence = true;
        self
    }

    pub fn with_pricing(mut self, pricing: ValueBasedPricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Builds every tenant shard on the pool, observes the workload until
    /// `observe_until`, and onboards the optimizers. After this the
    /// gateway accepts requests; the fleet clock sits at `observe_until`.
    pub fn start(&mut self, pool: &WorkerPool, parallelism: usize, observe_until: SimTime) {
        assert!(!self.started, "gateway already started");
        self.started = true;
        self.observe_until = observe_until;
        self.now = observe_until;
        let tenants = Arc::clone(&self.tenants);
        let shards = Arc::clone(&self.shards);
        let seed = self.seed;
        let persistence = self.persistence;
        pool.run_indexed(self.tenants.len(), parallelism, move |i| {
            let mut shard = build_shard(seed, persistence, &tenants[i]);
            shard.kwo.observe_until(&mut shard.sim, observe_until);
            shard.kwo.onboard(&mut shard.sim);
            *lock(&shards[i]) = Some(shard);
        });
    }

    /// Admits or sheds one request, synchronously and deterministically.
    /// Decisions depend only on the request sequence and the config —
    /// never on worker threads or wall time.
    ///
    /// # Panics
    /// Panics if called before [`Gateway::start`].
    pub fn submit(&mut self, request: Request) -> Admission {
        assert!(self.started, "submit before start");
        // lint: allow(D1) — wall time only feeds the admission-latency histogram, never a decision
        let t0 = std::time::Instant::now();
        let decision = self.admit(request);
        let us = t0.elapsed().as_secs_f64() * 1e6;
        self.stats.admit_wall_us.push(us);
        let reg = keebo_obs::global();
        reg.histogram("keebo.gateway.admission_wait_us", &ADMIT_US_BUCKETS)
            .observe(us);
        match decision {
            Admission::Admitted { .. } => reg.counter("keebo.gateway.admitted").inc(),
            Admission::Shed { reason } => {
                let name = match reason {
                    ShedReason::UnknownTenant => "keebo.gateway.shed.unknown_tenant",
                    ShedReason::RateLimited => "keebo.gateway.shed.rate_limited",
                    ShedReason::QuotaExhausted => "keebo.gateway.shed.quota_exhausted",
                    ShedReason::QueueFull => "keebo.gateway.shed.queue_full",
                };
                reg.counter(name).inc();
            }
        }
        reg.gauge("keebo.gateway.queue_depth")
            .set(self.queue_depth() as f64);
        decision
    }

    fn admit(&mut self, request: Request) -> Admission {
        let shape_code = request.priority.code() << 2 | request.kind.code();
        // Backpressure first: a request the bounded queue would refuse
        // anyway must not burn a token or quota.
        let decision = match self.index.get(&request.tenant) {
            None => Err(ShedReason::UnknownTenant),
            Some(&i) => {
                if !self.queues[i].has_room(request.priority, self.config.queue_capacity) {
                    Err(ShedReason::QueueFull)
                } else {
                    self.meters[i].try_admit().map(|()| i)
                }
            }
        };
        self.decisions.eat_str(&request.tenant);
        self.decisions.eat(shape_code);
        match decision {
            Ok(i) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                let ticket = Ticket {
                    seq,
                    enq_tick: self.stats.ticks,
                    priority: request.priority,
                    kind: request.kind,
                };
                self.queues[i]
                    .push(ticket, self.config.queue_capacity)
                    // lint: allow(D5) — has_room() held the slot; nothing ran in between
                    .expect("room was checked");
                self.stats.admitted += 1;
                self.decisions.eat(0);
                self.decisions.eat(seq);
                Admission::Admitted { seq }
            }
            Err(reason) => {
                self.stats.shed.bump(reason);
                self.decisions.eat(reason.code());
                Admission::Shed { reason }
            }
        }
    }

    /// Tickets currently queued across all tenants.
    pub fn queue_depth(&self) -> usize {
        self.queues.iter().map(AdmissionQueue::depth).sum()
    }

    /// Virtual fleet time (every shard has been driven to here).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs one control tick: refills every meter, drains each tenant's
    /// deterministic dispatch batch, applies the batches shard-locally on
    /// the pool, and advances every shard `tick_ms` of virtual time.
    ///
    /// # Panics
    /// Panics if called before [`Gateway::start`], and re-raises shard
    /// panics from the pool.
    pub fn tick(&mut self, pool: &WorkerPool, parallelism: usize) {
        assert!(self.started, "tick before start");
        for m in &mut self.meters {
            m.refill();
        }
        let tick_no = self.stats.ticks;
        let mut batches: Vec<Vec<Ticket>> = Vec::with_capacity(self.queues.len());
        for q in &mut self.queues {
            let batch = q.drain(
                self.config.batch_per_tenant,
                self.config.reserved_batch_slots,
            );
            for t in &batch {
                let wait = (tick_no - t.enq_tick) as f64;
                match t.priority {
                    Priority::Interactive => {
                        self.stats.dispatched_interactive += 1;
                        self.stats.wait_ticks_interactive.push(wait);
                    }
                    Priority::Batch => {
                        self.stats.dispatched_batch += 1;
                        self.stats.wait_ticks_batch.push(wait);
                    }
                }
                let name = match t.priority {
                    Priority::Interactive => "keebo.gateway.dispatched.interactive",
                    Priority::Batch => "keebo.gateway.dispatched.batch",
                };
                keebo_obs::global().counter(name).inc();
            }
            batches.push(batch);
        }
        keebo_obs::global()
            .gauge("keebo.gateway.queue_depth")
            .set(self.queue_depth() as f64);

        let target = self.now + self.config.tick_ms;
        let shards = Arc::clone(&self.shards);
        let work: Arc<Vec<Mutex<Option<Vec<Ticket>>>>> =
            Arc::new(batches.into_iter().map(|b| Mutex::new(Some(b))).collect());
        let results: Arc<Vec<Mutex<u64>>> =
            Arc::new((0..self.tenants.len()).map(|_| Mutex::new(0u64)).collect());
        let jobs_work = Arc::clone(&work);
        let jobs_results = Arc::clone(&results);
        pool.run_indexed(self.tenants.len(), parallelism, move |i| {
            let mut slot = lock(&shards[i]);
            // lint: allow(D5) — start() filled every slot; ticks never empty them
            let shard = slot.as_mut().expect("shard built by start()");
            // lint: allow(D5) — each index's batch is taken exactly once per tick
            let batch = lock(&jobs_work[i]).take().expect("batch for this tick");
            *lock(&jobs_results[i]) = apply_batch(shard, batch, target);
        });

        // Fold per-shard fingerprints in spec order — identical at any
        // parallelism because each value depends only on its own shard.
        for r in results.iter() {
            self.responses.eat(*lock(r));
        }
        self.now = target;
        self.stats.ticks += 1;
    }

    /// Finishes the run: rolls every shard up into its tenant report (on
    /// the pool), returning the fleet report plus the gateway's stats.
    /// The savings window is `[observe_until, now)`.
    ///
    /// # Panics
    /// Panics if called before [`Gateway::start`].
    pub fn finish(mut self, pool: &WorkerPool, parallelism: usize) -> (FleetReport, GatewayStats) {
        assert!(self.started, "finish before start");
        let tenants = Arc::clone(&self.tenants);
        let shards = Arc::clone(&self.shards);
        let reports: Arc<Vec<Mutex<Option<crate::fleet::TenantReport>>>> =
            Arc::new((0..self.tenants.len()).map(|_| Mutex::new(None)).collect());
        let jobs_reports = Arc::clone(&reports);
        let pricing = self.pricing;
        let (window_start, window_end) = (self.observe_until, self.now);
        pool.run_indexed(self.tenants.len(), parallelism, move |i| {
            // lint: allow(D5) — start() filled every slot; finish() is the only taker
            let shard = lock(&shards[i]).take().expect("shard built by start()");
            *lock(&jobs_reports[i]) = Some(tenant_report(
                &shard,
                &tenants[i].name,
                &pricing,
                window_start,
                window_end,
            ));
        });
        let tenant_reports: Vec<_> = reports
            .iter()
            // lint: allow(D5) — the work queue hands every index to exactly one worker
            .map(|slot| lock(slot).take().expect("every shard reports"))
            .collect();
        self.stats.decisions_digest = self.decisions.finish();
        self.stats.responses_digest = self.responses.finish();
        (fleet_rollup(tenant_reports), self.stats)
    }
}

/// Applies one tenant's dispatch batch inside its shard, then advances the
/// shard to `target`. Returns the shard's fingerprint for this tick:
/// every applied ticket and every read response, folded in batch order.
/// Pure shard-local computation — parallelism cannot perturb it.
fn apply_batch(shard: &mut FleetShard, batch: Vec<Ticket>, target: SimTime) -> u64 {
    let mut h = Fnv::new();
    for t in batch {
        h.eat(t.seq);
        h.eat(t.kind.code());
        match t.kind {
            RequestKind::SubmitQuery {
                warehouse,
                mut spec,
            } => {
                match shard.sim.account().warehouse_id(&warehouse) {
                    Some(wh) => {
                        spec.id = GATEWAY_QUERY_ID_BASE + t.seq;
                        // Next millisecond after the shard's clock: always
                        // in the future, ordered by admission seq within
                        // the tick (the simulator breaks arrival ties by
                        // submission sequence).
                        spec.arrival = shard.sim.now() + 1;
                        shard.sim.submit_query(wh, spec);
                        h.eat(1);
                    }
                    None => h.eat(0),
                }
            }
            RequestKind::SetSlider { warehouse, slider } => {
                h.eat(slider as u64);
                shard.kwo.set_slider(&warehouse, slider);
            }
            RequestKind::EditConstraint { warehouse, rule } => {
                h.eat_str(&rule.name);
                shard.kwo.add_constraint(&warehouse, rule);
            }
            RequestKind::TraceQuery { warehouse } => {
                let events = shard
                    .kwo
                    .optimizer(&warehouse)
                    .map_or(0, |o| o.trace().len());
                h.eat(events as u64);
            }
        }
    }
    shard.kwo.run_until(&mut shard.sim, target);
    h.eat(shard.sim.now());
    h.finish()
}
