//! Bounded per-tenant admission queues with priority and anti-starvation.
//!
//! Each tenant owns one [`AdmissionQueue`] holding two bounded FIFO
//! classes, one per [`Priority`]. A full class sheds the *arriving*
//! request ([`ShedReason::QueueFull`]) — the gateway never blocks a
//! client and never buffers unboundedly.
//!
//! The per-tick drain gives interactive traffic strict preference but
//! reserves a configurable number of slots for the batch class whenever it
//! is non-empty, so a sustained interactive flood cannot starve batch/ETL
//! work forever (and vice versa: interactive never waits behind batch).
//! Draining pops in admission-sequence order within each class, which keeps
//! dispatch order a pure function of the admission sequence.

use super::request::{Priority, RequestKind, ShedReason};
use std::collections::VecDeque;

/// One admitted request waiting for dispatch.
#[derive(Debug, Clone)]
pub(crate) struct Ticket {
    /// Fleet-global admission sequence number.
    pub(crate) seq: u64,
    /// Control-tick count when the request was admitted (virtual time; the
    /// dispatch-tick delta is the deterministic queue-wait measure).
    pub(crate) enq_tick: u64,
    pub(crate) priority: Priority,
    pub(crate) kind: RequestKind,
}

/// Two bounded FIFO classes for one tenant.
#[derive(Debug, Default)]
pub(crate) struct AdmissionQueue {
    interactive: VecDeque<Ticket>,
    batch: VecDeque<Ticket>,
}

impl AdmissionQueue {
    /// True when the class has room for one more ticket. Checked *before*
    /// the rate/quota meters so a request the queue would refuse anyway
    /// never consumes a token or quota.
    pub(crate) fn has_room(&self, priority: Priority, capacity: usize) -> bool {
        let class = match priority {
            Priority::Interactive => &self.interactive,
            Priority::Batch => &self.batch,
        };
        class.len() < capacity
    }

    /// Enqueues, shedding when the ticket's class is at `capacity`.
    pub(crate) fn push(&mut self, ticket: Ticket, capacity: usize) -> Result<(), ShedReason> {
        let class = match ticket.priority {
            Priority::Interactive => &mut self.interactive,
            Priority::Batch => &mut self.batch,
        };
        if class.len() >= capacity {
            return Err(ShedReason::QueueFull);
        }
        class.push_back(ticket);
        Ok(())
    }

    /// Total queued tickets across both classes.
    pub(crate) fn depth(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    /// Drains up to `slots` tickets for one tick: interactive first, but
    /// with `reserved_batch` slots guaranteed to the batch class while it
    /// has work. Leftover reserved slots flow back to interactive (and
    /// leftover interactive slots to batch), so no slot idles while any
    /// class has work.
    pub(crate) fn drain(&mut self, slots: usize, reserved_batch: usize) -> Vec<Ticket> {
        let mut out = Vec::new();
        if slots == 0 {
            return out;
        }
        let reserved = if self.batch.is_empty() {
            0
        } else {
            reserved_batch.min(slots)
        };
        let interactive_take = self.interactive.len().min(slots - reserved);
        for _ in 0..interactive_take {
            // lint: allow(D5) — bounded by len() above
            out.push(self.interactive.pop_front().expect("len-checked"));
        }
        let batch_take = self.batch.len().min(slots - out.len());
        for _ in 0..batch_take {
            // lint: allow(D5) — bounded by len() above
            out.push(self.batch.pop_front().expect("len-checked"));
        }
        // Reserved slots the batch class didn't fill go back to interactive.
        let backfill = self.interactive.len().min(slots - out.len());
        for _ in 0..backfill {
            // lint: allow(D5) — bounded by len() above
            out.push(self.interactive.pop_front().expect("len-checked"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(seq: u64, priority: Priority) -> Ticket {
        Ticket {
            seq,
            enq_tick: 0,
            priority,
            kind: RequestKind::TraceQuery {
                warehouse: "W".to_string(),
            },
        }
    }

    #[test]
    fn full_class_sheds_arrival() {
        let mut q = AdmissionQueue::default();
        assert!(q.push(ticket(0, Priority::Batch), 1).is_ok());
        assert_eq!(
            q.push(ticket(1, Priority::Batch), 1),
            Err(ShedReason::QueueFull)
        );
        // The other class has its own bound.
        assert!(q.push(ticket(2, Priority::Interactive), 1).is_ok());
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn drain_prefers_interactive_but_reserves_batch_slots() {
        let mut q = AdmissionQueue::default();
        for s in 0..4 {
            q.push(ticket(s, Priority::Interactive), 8).unwrap();
        }
        for s in 4..8 {
            q.push(ticket(s, Priority::Batch), 8).unwrap();
        }
        let got = q.drain(4, 1);
        let seqs: Vec<u64> = got.iter().map(|t| t.seq).collect();
        // 3 interactive (seq order), then the reserved batch slot.
        assert_eq!(seqs, vec![0, 1, 2, 4]);
    }

    #[test]
    fn reserved_slots_backfill_interactive_when_batch_is_empty() {
        let mut q = AdmissionQueue::default();
        for s in 0..4 {
            q.push(ticket(s, Priority::Interactive), 8).unwrap();
        }
        let seqs: Vec<u64> = q.drain(4, 2).iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn interactive_slots_flow_to_batch_when_interactive_is_empty() {
        let mut q = AdmissionQueue::default();
        for s in 0..3 {
            q.push(ticket(s, Priority::Batch), 8).unwrap();
        }
        let seqs: Vec<u64> = q.drain(4, 1).iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
