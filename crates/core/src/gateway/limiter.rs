//! Per-tenant rate limiting and quotas.
//!
//! Both mechanisms are *virtual-time* deterministic: the token bucket
//! refills once per control tick (never from a wall clock), and the quota
//! counts admitted requests over the run. The same request sequence against
//! the same configuration therefore sheds the exact same requests on every
//! machine and at every thread count — rate limiting is part of the
//! deterministic admission decision, not a timing accident.

use super::request::ShedReason;

/// A deterministic token bucket: `capacity` tokens, `refill_per_tick`
/// added at every control tick, one token consumed per admitted request.
/// Starts full so a tenant's first burst up to `capacity` is admitted.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_tick: f64,
    tokens: f64,
}

impl TokenBucket {
    pub fn new(capacity: f64, refill_per_tick: f64) -> Self {
        assert!(capacity >= 1.0, "bucket must hold at least one token");
        assert!(refill_per_tick >= 0.0, "refill cannot be negative");
        Self {
            capacity,
            refill_per_tick,
            tokens: capacity,
        }
    }

    /// Adds one tick's worth of tokens, saturating at capacity.
    pub fn refill(&mut self) {
        self.tokens = (self.tokens + self.refill_per_tick).min(self.capacity);
    }

    /// Takes one token if available.
    pub fn try_take(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostics).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// One tenant's admission meter: short-term rate (token bucket) plus a
/// run-long admitted-request quota.
#[derive(Debug, Clone)]
pub(crate) struct TenantMeter {
    bucket: TokenBucket,
    quota_remaining: u64,
}

impl TenantMeter {
    pub(crate) fn new(bucket: TokenBucket, quota: u64) -> Self {
        Self {
            bucket,
            quota_remaining: quota,
        }
    }

    pub(crate) fn refill(&mut self) {
        self.bucket.refill();
    }

    /// Charges one request against the meter. Quota is checked first so an
    /// exhausted tenant sheds with the durable reason, not the transient
    /// one; the bucket token is only consumed when both checks pass.
    pub(crate) fn try_admit(&mut self) -> Result<(), ShedReason> {
        if self.quota_remaining == 0 {
            return Err(ShedReason::QuotaExhausted);
        }
        if !self.bucket.try_take() {
            return Err(ShedReason::RateLimited);
        }
        self.quota_remaining -= 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bursts_then_throttles_then_refills() {
        let mut b = TokenBucket::new(2.0, 1.0);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take(), "empty bucket must refuse");
        b.refill();
        assert!(b.try_take());
        assert!(!b.try_take());
    }

    #[test]
    fn refill_saturates_at_capacity() {
        let mut b = TokenBucket::new(3.0, 10.0);
        b.refill();
        b.refill();
        assert!((b.available() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn meter_prefers_quota_reason_and_spends_tokens_only_on_admit() {
        let mut m = TenantMeter::new(TokenBucket::new(5.0, 0.0), 2);
        assert!(m.try_admit().is_ok());
        assert!(m.try_admit().is_ok());
        // Quota gone, tokens remain: the durable reason wins and the bucket
        // is not drained further.
        assert_eq!(m.try_admit(), Err(ShedReason::QuotaExhausted));
        assert!((m.bucket.available() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn meter_rate_limits_when_bucket_empty() {
        let mut m = TenantMeter::new(TokenBucket::new(1.0, 0.0), 100);
        assert!(m.try_admit().is_ok());
        assert_eq!(m.try_admit(), Err(ShedReason::RateLimited));
    }
}
