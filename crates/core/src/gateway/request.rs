//! Request and admission-decision types for the serving gateway.
//!
//! One [`Request`] models one client call against the managed service
//! surface the paper describes: query submissions into a managed warehouse,
//! slider moves and constraint edits from the admin portal (§4.1), and
//! decision-trace lookups from the "why did it do that" dashboard. The
//! gateway classifies every request into a [`Priority`] class and answers
//! synchronously with an [`Admission`] — either a sequence number (the
//! request will execute on a control tick) or an explicit [`ShedReason`].
//! Backpressure is always a typed answer, never an unbounded queue.

use agent::{Rule, SliderPosition};
use cdw_sim::QuerySpec;

/// Admission priority class. Interactive traffic (dashboard queries, admin
/// actions) is drained ahead of batch/ETL traffic; a reserved-slot policy
/// keeps batch from starving outright (see `queue.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    Interactive,
    Batch,
}

impl Priority {
    /// Stable code folded into the gateway's decision digest.
    pub(crate) fn code(self) -> u64 {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }

    /// Metric-label suffix (`keebo.gateway.dispatched.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// What the client is asking for.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// Run a query on one of the tenant's warehouses. The gateway rewrites
    /// the spec's id (to a gateway-unique one) and arrival time (to the
    /// dispatching tick) at execution; everything else is client-supplied.
    SubmitQuery { warehouse: String, spec: QuerySpec },
    /// Move the cost/performance slider (§4.1 "Optimization aggressiveness").
    SetSlider {
        warehouse: String,
        slider: SliderPosition,
    },
    /// Add a constraint rule (§4.1 "Constraints").
    EditConstraint { warehouse: String, rule: Rule },
    /// Read the decision trace ("why did WH_A downsize at hour 412?").
    TraceQuery { warehouse: String },
}

impl RequestKind {
    /// Stable code folded into the gateway's decision digest.
    pub(crate) fn code(&self) -> u64 {
        match self {
            RequestKind::SubmitQuery { .. } => 0,
            RequestKind::SetSlider { .. } => 1,
            RequestKind::EditConstraint { .. } => 2,
            RequestKind::TraceQuery { .. } => 3,
        }
    }
}

/// One client request: who is asking, how urgent it is, and what for.
#[derive(Debug, Clone)]
pub struct Request {
    pub tenant: String,
    pub priority: Priority,
    pub kind: RequestKind,
}

/// Why an arriving request was refused at the door. Shedding is the
/// gateway's only overload response: queues are bounded, so every refusal
/// is explicit and attributable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant is not part of this fleet.
    UnknownTenant,
    /// The tenant's token bucket is empty (short-term rate limit).
    RateLimited,
    /// The tenant's admitted-request quota for the run is spent.
    QuotaExhausted,
    /// The tenant's bounded admission queue is full (backpressure).
    QueueFull,
}

impl ShedReason {
    /// Stable code folded into the gateway's decision digest (0 is
    /// reserved for "admitted").
    pub(crate) fn code(self) -> u64 {
        match self {
            ShedReason::UnknownTenant => 1,
            ShedReason::RateLimited => 2,
            ShedReason::QuotaExhausted => 3,
            ShedReason::QueueFull => 4,
        }
    }

    /// Metric-label suffix (`keebo.gateway.shed.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::UnknownTenant => "unknown_tenant",
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QuotaExhausted => "quota_exhausted",
            ShedReason::QueueFull => "queue_full",
        }
    }
}

/// The gateway's synchronous answer to [`crate::gateway::Gateway::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued for the next control tick; `seq` is the fleet-global
    /// admission sequence number (dense over admitted requests).
    Admitted { seq: u64 },
    /// Refused, with the reason. The request had no effect.
    Shed { reason: ShedReason },
}

impl Admission {
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted { .. })
    }
}
